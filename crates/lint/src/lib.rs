//! `pcqe-lint` — the in-repo static invariant analyzer.
//!
//! PR 1 made the engine deterministic-by-construction (bit-identical
//! results at any worker count) and hermetic (no registry dependencies).
//! Those properties were guarded only at the edges: a determinism test
//! and a dependency grep. This crate moves the invariants into a static
//! analysis pass that fails CI the moment a violating pattern is
//! *written*, instead of hoping a test notices the symptom later.
//!
//! The analyzer is std-only — no `syn`, no registry crates — and works
//! in four layers:
//!
//! 1. **Token layer.** Every Rust source is tokenized by a hand-rolled
//!    lexer ([`lexer`]) and matched against small token-window patterns
//!    ([`rules`]). Concurrency tokens are checked against per-crate
//!    **capability manifests** ([`capability`]): a checked-in
//!    `lint-capabilities.toml` grants `threads`/`locks`/`atomics`/
//!    `channels` with a reason; without one, a built-in legacy table
//!    reproduces the old crate-name containment (PCQE-C001).
//! 2. **Graph layer.** The same token streams feed a lightweight item
//!    parser ([`item`]: fns, impls, `use` trees, visibility, per-fn call
//!    and panic sites), whose output links into a workspace-wide
//!    resolved call graph ([`graph`]) powering *reachability* rules —
//!    properties that hold along every path, not just at the call sites
//!    a token window happens to see.
//! 3. **Concurrency layer.** The graph, enriched with lock-acquisition
//!    sites, weakly-ordered atomic loads, and interior-mutable
//!    statics/returns, feeds the concurrency-soundness analyses
//!    ([`concurrency`]): lock-order cycles, locks held across
//!    result-affecting boundaries, shared-state escape, and relaxed
//!    reads on the release path.
//! 4. **Dataflow layer.** Per-function def-use chains (`let` bindings,
//!    format captures, return-value identifiers) plus per-argument call
//!    windows feed a name-based taint analysis ([`flow`]): sources and
//!    sanctioned disclosure channels are declared in `lint-flows.toml`
//!    ([`flowspec`]), and suppressed-tuple data, β/θ thresholds and
//!    pre-gate confidence values are proven not to reach error-message,
//!    trace/metrics or shell sinks outside the declared channels.
//!
//! | rule | layer | protects | statement |
//! |------|-------|----------|-----------|
//! | `PCQE-D001` | token | determinism | no `HashMap`/`HashSet` in result-affecting crates |
//! | `PCQE-D002` | token | determinism | no RNG construction outside `pcqe-lineage::rng` |
//! | `PCQE-D003` | token | determinism | no `std::thread` without the `threads` capability |
//! | `PCQE-D004` | token | determinism | float compare/order through `pcqe_core::ord` only |
//! | `PCQE-C001` | token | determinism | legacy containment: concurrency tokens outside the built-in crate list (no manifest) |
//! | `PCQE-C002` | token | determinism | concurrency tokens need a covering capability grant (manifest mode) |
//! | `PCQE-C003` | concurrency | determinism | the workspace lock-order graph stays acyclic |
//! | `PCQE-C004` | concurrency | determinism | no lock held across a call into a result-affecting crate |
//! | `PCQE-C005` | concurrency | determinism | interior-mutable shared state must not escape a granted crate into the result-affecting set |
//! | `PCQE-C006` | concurrency | determinism | no `Relaxed`/`Acquire` load feeding `ReleasedTuple` on a query path |
//! | `PCQE-G001` | graph | compliance | query entry points release rows only below the policy gate |
//! | `PCQE-H001` | manifest | hermeticity | only path deps in default-workspace manifests |
//! | `PCQE-P001` | token | panic-safety | no `unwrap`/`expect`/`panic!` in guarded library code |
//! | `PCQE-P002` | graph | panic-safety | no panic construct *reachable* from guarded public API |
//! | `PCQE-T001` | token | determinism | wall clock only in `crates/bench` + `core::clock` |
//! | `PCQE-F001` | dataflow | confidentiality | suppressed-tuple data never reaches an error/panic sink |
//! | `PCQE-F002` | dataflow | confidentiality | β/θ thresholds flow only to sanctioned audit/Decision channels |
//! | `PCQE-F003` | dataflow | confidentiality | pre-gate confidence stays out of trace/metrics exports |
//! | `PCQE-F004` | hygiene | hygiene | sanctioned sinks must be exercised (no stale sanctions) |
//! | `PCQE-F005` | hygiene | hygiene | flow-manifest entries carry reasons citing live rule ids |
//! | `PCQE-A001` | hygiene | hygiene | allowlist entries must suppress something |
//! | `PCQE-A002` | hygiene | hygiene | allowlist entries must carry a reason naming the rule they suppress |
//! | `PCQE-A003` | hygiene | hygiene | granted capabilities must be exercised (no stale grants) |
//!
//! Justified exceptions live in `lint-allow.toml` ([`allowlist`]) with a
//! required reason; stale entries are themselves errors. Reports come in
//! human, JSON and SARIF form ([`report`], [`sarif`]). Run it as
//! `cargo run -p pcqe-lint`, via `ci.sh`, or through the tier-1 tests
//! `tests/lint_guard.rs`, `tests/concurrency_lint_guard.rs` and
//! `tests/flow_lint_guard.rs`.

pub mod allowlist;
pub mod capability;
pub mod concurrency;
pub mod flow;
pub mod flowspec;
pub mod graph;
pub mod item;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod walk;

use allowlist::AllowEntry;
use capability::{Cap, Capabilities};
use rules::{Finding, Rule};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// The outcome of scanning a tree.
#[derive(Debug)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (path, line, rule code). Includes
    /// `PCQE-A001` findings for stale allowlist entries.
    pub findings: Vec<Finding>,
    /// Findings silenced by an allowlist entry or a flow sanction, with
    /// the entry's reason.
    pub suppressed: Vec<(Finding, String)>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Manifests checked by H001.
    pub manifests_scanned: usize,
    /// Taint-flow witness paths for the dataflow findings, keyed by
    /// (path, line, rule code). A side table: the JSON report ignores
    /// it, the SARIF export renders it as code flows.
    pub witnesses: flow::Witnesses,
}

impl Analysis {
    /// Does the analysis gate (any error-severity finding)?
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Narrow the report to one rule — a *display* filter for
    /// `--rule` / `.lint … RULE-ID`. Exit-code semantics are the
    /// caller's job: compute them from the full analysis first.
    pub fn filtered(mut self, rule: Rule) -> Analysis {
        self.findings.retain(|f| f.rule == rule);
        self.suppressed.retain(|(f, _)| f.rule == rule);
        self
    }
}

/// Failures of the analyzer itself (not rule findings).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problems reading the tree.
    Io(String),
    /// The allowlist file failed to parse or was explicitly requested but
    /// missing.
    Allowlist(String),
    /// The capability manifest failed to parse.
    Capabilities(String),
    /// The flow manifest failed to parse.
    Flows(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Allowlist(m) => write!(f, "allowlist error: {m}"),
            LintError::Capabilities(m) => write!(f, "capability manifest error: {m}"),
            LintError::Flows(m) => write!(f, "flow manifest error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Name of the allowlist file looked up at the scan root by default.
pub const DEFAULT_ALLOWLIST: &str = "lint-allow.toml";

/// Analyze the tree at `root`.
///
/// `allowlist_path`: `None` uses `<root>/lint-allow.toml` when present
/// (absence means an empty allowlist); `Some(path)` must exist.
pub fn analyze(root: &Path, allowlist_path: Option<&Path>) -> Result<Analysis, LintError> {
    let io = |e: std::io::Error, what: &str| LintError::Io(format!("{what}: {e}"));

    // --- Allowlist -----------------------------------------------------
    let entries: Vec<AllowEntry> = match allowlist_path {
        Some(p) => {
            let text = fs::read_to_string(p)
                .map_err(|e| LintError::Allowlist(format!("{}: {e}", p.display())))?;
            allowlist::parse(&text, &p.display().to_string()).map_err(LintError::Allowlist)?
        }
        None => {
            let p = root.join(DEFAULT_ALLOWLIST);
            if p.is_file() {
                let text = fs::read_to_string(&p).map_err(|e| io(e, DEFAULT_ALLOWLIST))?;
                allowlist::parse(&text, DEFAULT_ALLOWLIST).map_err(LintError::Allowlist)?
            } else {
                Vec::new()
            }
        }
    };

    // --- Capability manifest -------------------------------------------
    // Present: manifest mode — uncovered concurrency tokens are C002,
    // stale grants A003. Absent: the built-in legacy table reproduces
    // the historical C001 containment.
    let caps_path = root.join(capability::DEFAULT_CAPABILITIES);
    let caps = if caps_path.is_file() {
        let text =
            fs::read_to_string(&caps_path).map_err(|e| io(e, capability::DEFAULT_CAPABILITIES))?;
        let grants = capability::parse(&text, capability::DEFAULT_CAPABILITIES)
            .map_err(LintError::Capabilities)?;
        Capabilities::from_grants(grants)
    } else {
        Capabilities::legacy()
    };
    let mut cap_used: Vec<BTreeSet<Cap>> = vec![BTreeSet::new(); caps.grants.len()];

    // --- Flow manifest -------------------------------------------------
    // Present: the dataflow layer (F001–F005) runs with the declared
    // sources/sinks/sanctions. Absent: nothing is declared secret and
    // the layer is inert (fixture trees predating it are unaffected).
    let flows_path = root.join(flowspec::DEFAULT_FLOWS);
    let flows = if flows_path.is_file() {
        let text = fs::read_to_string(&flows_path).map_err(|e| io(e, flowspec::DEFAULT_FLOWS))?;
        flowspec::parse(&text, flowspec::DEFAULT_FLOWS).map_err(LintError::Flows)?
    } else {
        flowspec::FlowSpec::default()
    };

    // --- Scan ----------------------------------------------------------
    // Each file is lexed once; the token stream feeds both the token
    // rules and the item parser, whose output links into the workspace
    // call graph for the reachability rules (P002, G001) and the
    // concurrency layer (C003–C006).
    let mut raw: Vec<Finding> = Vec::new();
    let mut items: Vec<item::FileItems> = Vec::new();
    let sources = walk::rust_sources(root).map_err(|e| io(e, "walking sources"))?;
    for rel in &sources {
        if rules::FileClass::classify(rel).is_test_code {
            continue;
        }
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        let toks = lexer::lex(&text);
        let mask = rules::test_region_mask(&toks);
        rules::check_tokens(rel, &toks, &mask, &caps, &mut cap_used, &mut raw);
        // The analyzer itself and the detached bench workspace stay out
        // of the call graph: no guarded product crate can depend on the
        // dev tooling (H001 enforces path-only deps), so a name-collision
        // edge into them is spurious by construction.
        if !rel.starts_with("crates/lint/") && !rel.starts_with("crates/bench/") {
            items.push(item::collect(rel, &toks, &mask));
        }
    }
    let call_graph = graph::CallGraph::build(&items);
    graph::panic_reachability(&call_graph, &mut raw);
    graph::policy_gating(&call_graph, &mut raw);
    concurrency::lock_order(&call_graph, &mut raw);
    concurrency::escapes(&call_graph, &caps, &mut raw);
    concurrency::relaxed_reads(&call_graph, &mut raw);
    // Layer 4: sanctioned flows land directly in the suppressed list
    // with the sanction's reason; unsanctioned ones are findings like
    // any other (and may still be allowlisted individually below).
    let mut suppressed: Vec<(Finding, String)> = Vec::new();
    let mut witnesses = flow::Witnesses::new();
    flow::dataflow(
        &call_graph,
        &flows,
        &mut raw,
        &mut suppressed,
        &mut witnesses,
    );
    let manifests = walk::workspace_manifests(root).map_err(|e| io(e, "walking manifests"))?;
    for rel in &manifests {
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        manifest::check_manifest(rel, &text, &mut raw);
    }

    // --- Capability hygiene (A003 stale grants, manifest mode only) ----
    if caps.from_manifest {
        for (idx, grant) in caps.grants.iter().enumerate() {
            for &cap in &grant.caps {
                if !cap_used[idx].contains(&cap) {
                    raw.push(Finding {
                        rule: Rule::A003,
                        path: capability::DEFAULT_CAPABILITIES.to_owned(),
                        line: grant.declared_at,
                        message: format!(
                            "stale capability: `{}` grants `{}`{} but no such token is \
                             used there — drop it from the grant (reason was: {})",
                            grant.crate_name,
                            cap.label(),
                            grant
                                .scope
                                .as_deref()
                                .map(|s| format!(" (scope `{s}`)"))
                                .unwrap_or_default(),
                            grant.reason
                        ),
                    });
                }
            }
        }
    }

    // --- Suppress ------------------------------------------------------
    let mut used = vec![0usize; entries.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule && e.path == f.path && e.line.is_none_or(|l| l == f.line)
        });
        match hit {
            Some(idx) => {
                used[idx] += 1;
                suppressed.push((f, entries[idx].reason.clone()));
            }
            None => findings.push(f),
        }
    }

    // --- Allowlist hygiene (A001 stale, A002 unreasoned) ---------------
    let allow_name = allowlist_path
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| DEFAULT_ALLOWLIST.to_owned());
    for entry in &entries {
        if entry.reason.trim().is_empty() {
            findings.push(Finding {
                rule: Rule::A002,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "allowlist entry for {} at `{}`{} has no `reason`; every \
                     exception must say why it is sound",
                    entry.rule.code(),
                    entry.path,
                    entry.line.map(|l| format!(" line {l}")).unwrap_or_default(),
                ),
            });
            continue;
        }
        // File-wide suppressions are the blunt instrument: their reason
        // must name the rule they blanket (`P002: …`), so a reader —
        // and this check — can tell a deliberate waiver from a typo.
        let short = entry.rule.code().trim_start_matches("PCQE-");
        if entry.line.is_none() && !entry.reason.contains(short) {
            findings.push(Finding {
                rule: Rule::A002,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "file-wide allowlist entry at `{}` suppresses {} but its reason \
                     never states that rule id; prefix the reason with `{short}: `",
                    entry.path,
                    entry.rule.code(),
                ),
            });
        }
        // A rule id cited in a reason must exist: a stale id means the
        // justification no longer matches what is being waived.
        for token in entry
            .reason
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
        {
            if token.starts_with("PCQE-") && Rule::parse(token).is_none() {
                findings.push(Finding {
                    rule: Rule::A002,
                    path: allow_name.clone(),
                    line: entry.declared_at,
                    message: format!(
                        "allowlist reason at `{}` cites unknown rule id `{token}`: \
                         fix the id or drop the citation",
                        entry.path,
                    ),
                });
            }
        }
    }
    for (idx, entry) in entries.iter().enumerate() {
        if used[idx] == 0 {
            findings.push(Finding {
                rule: Rule::A001,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "stale allowlist entry: no {} finding at `{}`{} — delete the \
                     entry (reason was: {})",
                    entry.rule.code(),
                    entry.path,
                    entry.line.map(|l| format!(" line {l}")).unwrap_or_default(),
                    entry.reason
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.code().cmp(b.rule.code()))
    });

    Ok(Analysis {
        findings,
        suppressed,
        files_scanned: sources.len(),
        manifests_scanned: manifests.len(),
        witnesses,
    })
}
