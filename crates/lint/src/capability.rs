//! `lint-capabilities.toml`: per-crate concurrency capability grants.
//!
//! PR 2's rule PCQE-C001 banned concurrency tokens by *crate name* — a
//! grandfather list (`pcqe-par`, `pcqe-obs`, `core::clock`) that cannot
//! grow without editing the analyzer. This module replaces the hardcoded
//! list with a checked-in manifest: each crate *declares* which
//! capability classes it needs, with a reason, and layer 3 of the
//! analyzer holds it to exactly that declaration —
//!
//! * a concurrency token with no covering grant is **PCQE-C002** (or
//!   PCQE-D003 for `std::thread`, which keeps its historical id);
//! * a granted capability that no token exercises is **PCQE-A003**
//!   (stale grant — the manifest must never outlive the code it covers).
//!
//! Format — a sequence of `[[grant]]` tables:
//!
//! ```toml
//! [[grant]]
//! crate = "pcqe-par"
//! # scope = "crates/core/src/clock.rs"   # optional: one file/prefix
//! capabilities = ["threads", "locks", "atomics"]
//! reason = "the deterministic scheduler owns all workspace threading"
//! ```
//!
//! Unlike the allowlist, a missing or blank `reason` here is a hard
//! *parse* error: grants are architecture statements, not exception
//! hygiene, so an unreasoned one never enters the analysis at all.
//!
//! When no manifest exists at the scan root the analyzer falls back to
//! [`Capabilities::legacy`] — a built-in grant table reproducing the old
//! C001/D003 crate lists, reported under the original C001 id. C001 is
//! thereby a thin wrapper over the same capability check; fixture trees
//! without a manifest still exercise it.

use std::collections::BTreeSet;

/// The capability classes a grant can confer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cap {
    /// `std::thread` paths.
    Threads,
    /// `Mutex` / `RwLock` / `Condvar`.
    Locks,
    /// `Atomic*` types.
    Atomics,
    /// `mpsc` channels.
    Channels,
}

impl Cap {
    /// The manifest spelling.
    pub fn label(self) -> &'static str {
        match self {
            Cap::Threads => "threads",
            Cap::Locks => "locks",
            Cap::Atomics => "atomics",
            Cap::Channels => "channels",
        }
    }

    /// Parse a manifest spelling.
    pub fn parse(s: &str) -> Option<Cap> {
        match s {
            "threads" => Some(Cap::Threads),
            "locks" => Some(Cap::Locks),
            "atomics" => Some(Cap::Atomics),
            "channels" => Some(Cap::Channels),
            _ => None,
        }
    }

    /// All capability classes, in manifest/report order.
    pub fn all() -> [Cap; 4] {
        [Cap::Threads, Cap::Locks, Cap::Atomics, Cap::Channels]
    }

    /// Which capability class a concurrency *type/module token* needs, if
    /// any. `thread` path segments are matched separately (rule D003
    /// keeps its id for those). The `Atomic*` arm requires an uppercase
    /// continuation — `AtomicU64`, `AtomicBool` — so prose-ish idents
    /// like `Atomics` stay out.
    pub fn of_token(name: &str) -> Option<Cap> {
        match name {
            "Mutex" | "RwLock" | "Condvar" => Some(Cap::Locks),
            "mpsc" => Some(Cap::Channels),
            _ if name.strip_prefix("Atomic").is_some_and(|rest| {
                rest.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            }) =>
            {
                Some(Cap::Atomics)
            }
            _ => None,
        }
    }
}

/// One parsed `[[grant]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// Crate the grant covers, as the manifest names it (`pcqe-par`).
    pub crate_name: String,
    /// Optional path prefix narrowing the grant to one file or module
    /// subtree (e.g. `crates/core/src/clock.rs`).
    pub scope: Option<String>,
    /// The capability classes conferred.
    pub caps: BTreeSet<Cap>,
    /// Why the crate needs them. Required and non-empty at parse time.
    pub reason: String,
    /// Line of the `[[grant]]` header in the manifest itself.
    pub declared_at: u32,
}

impl Grant {
    /// Does this grant cover capability `cap` for the file at `path`
    /// (workspace-relative, `/`-separated)?
    fn covers(&self, path: &str, cap: Cap) -> bool {
        if !self.caps.contains(&cap) {
            return false;
        }
        let dir = format!("crates/{}/", self.crate_name.trim_start_matches("pcqe-"));
        if !path.starts_with(&dir) {
            return false;
        }
        match &self.scope {
            Some(s) => path == s || path.starts_with(&format!("{s}/")),
            None => true,
        }
    }
}

/// The capability table in force for one analysis run.
#[derive(Debug, Clone)]
pub struct Capabilities {
    /// Grants in manifest order (or the built-in legacy table).
    pub grants: Vec<Grant>,
    /// `true` when loaded from a `lint-capabilities.toml`; uncovered
    /// tokens then report PCQE-C002 and stale grants PCQE-A003. `false`
    /// is legacy mode: the built-in table, reported under PCQE-C001.
    pub from_manifest: bool,
}

/// Name of the capability manifest looked up at the scan root.
pub const DEFAULT_CAPABILITIES: &str = "lint-capabilities.toml";

impl Capabilities {
    /// The built-in grant table reproducing the pre-manifest C001/D003
    /// crate lists exactly: `pcqe-par` may thread/lock/share, `pcqe-obs`
    /// may lock/share, and `core::clock` advances its `ManualClock`
    /// atomically. Used when the scanned root has no manifest.
    pub fn legacy() -> Capabilities {
        let grant = |crate_name: &str, scope: Option<&str>, caps: &[Cap]| Grant {
            crate_name: crate_name.to_owned(),
            scope: scope.map(str::to_owned),
            caps: caps.iter().copied().collect(),
            reason: "built-in legacy containment (pre-manifest PCQE-C001)".to_owned(),
            declared_at: 0,
        };
        Capabilities {
            grants: vec![
                grant(
                    "pcqe-par",
                    None,
                    &[Cap::Threads, Cap::Locks, Cap::Atomics, Cap::Channels],
                ),
                grant("pcqe-obs", None, &[Cap::Locks, Cap::Atomics, Cap::Channels]),
                grant(
                    "pcqe-core",
                    Some("crates/core/src/clock.rs"),
                    &[Cap::Locks, Cap::Atomics, Cap::Channels],
                ),
            ],
            from_manifest: false,
        }
    }

    /// Wrap manifest-parsed grants.
    pub fn from_grants(grants: Vec<Grant>) -> Capabilities {
        Capabilities {
            grants,
            from_manifest: true,
        }
    }

    /// Index of the first grant covering `cap` at `path`, if any.
    pub fn grant_for(&self, path: &str, cap: Cap) -> Option<usize> {
        self.grants.iter().position(|g| g.covers(path, cap))
    }
}

/// Parse a capability manifest. `source_name` labels error messages.
pub fn parse(text: &str, source_name: &str) -> Result<Vec<Grant>, String> {
    let mut grants: Vec<Grant> = Vec::new();
    let mut current: Option<PartialGrant> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[grant]]" {
            if let Some(p) = current.take() {
                grants.push(p.finish(source_name)?);
            }
            current = Some(PartialGrant::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{source_name}:{lineno}: unexpected table `{line}`; only `[[grant]]` is supported"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{source_name}:{lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let Some(grant) = current.as_mut() else {
            return Err(format!(
                "{source_name}:{lineno}: `{}` outside a `[[grant]]` table",
                key.trim()
            ));
        };
        match key.trim() {
            "crate" => {
                let name = parse_string(value, source_name, lineno)?;
                if !name.starts_with("pcqe-") {
                    return Err(format!(
                        "{source_name}:{lineno}: `crate` must be a workspace crate \
                         (`pcqe-…`), got `{name}`"
                    ));
                }
                grant.crate_name = Some(name);
            }
            "scope" => {
                let s = parse_string(value, source_name, lineno)?;
                grant.scope = Some(s.replace('\\', "/"));
            }
            "capabilities" => {
                let mut caps = BTreeSet::new();
                for item in parse_string_array(value, source_name, lineno)? {
                    let cap = Cap::parse(&item).ok_or_else(|| {
                        format!(
                            "{source_name}:{lineno}: unknown capability `{item}` \
                             (expected threads/locks/atomics/channels)"
                        )
                    })?;
                    if !caps.insert(cap) {
                        return Err(format!(
                            "{source_name}:{lineno}: capability `{item}` listed twice"
                        ));
                    }
                }
                if caps.is_empty() {
                    return Err(format!(
                        "{source_name}:{lineno}: `capabilities` must name at least one class"
                    ));
                }
                grant.caps = Some(caps);
            }
            "reason" => {
                grant.reason = Some(parse_string(value, source_name, lineno)?);
            }
            other => {
                return Err(format!(
                    "{source_name}:{lineno}: unknown key `{other}` \
                     (expected crate/scope/capabilities/reason)"
                ));
            }
        }
    }
    if let Some(p) = current.take() {
        grants.push(p.finish(source_name)?);
    }
    Ok(grants)
}

struct PartialGrant {
    declared_at: u32,
    crate_name: Option<String>,
    scope: Option<String>,
    caps: Option<BTreeSet<Cap>>,
    reason: Option<String>,
}

impl PartialGrant {
    fn new(declared_at: u32) -> PartialGrant {
        PartialGrant {
            declared_at,
            crate_name: None,
            scope: None,
            caps: None,
            reason: None,
        }
    }

    fn finish(self, source_name: &str) -> Result<Grant, String> {
        let at = self.declared_at;
        let missing = |k: &str| format!("{source_name}:{at}: `[[grant]]` entry is missing `{k}`");
        // Unlike allowlist reasons (A002's job), an unreasoned grant is a
        // hard error: a capability is an architecture statement, and it
        // must carry its justification from the first commit.
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "{source_name}:{at}: `[[grant]]` entry has a blank `reason`; every \
                 capability grant must say why the crate needs it"
            ));
        }
        Ok(Grant {
            crate_name: self.crate_name.ok_or_else(|| missing("crate"))?,
            scope: self.scope,
            caps: self.caps.ok_or_else(|| missing("capabilities"))?,
            reason,
            declared_at: at,
        })
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string value.
fn parse_string(value: &str, source_name: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| {
            format!("{source_name}:{lineno}: expected a double-quoted string, got `{v}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "{source_name}:{lineno}: embedded quotes are not supported"
        ));
    }
    Ok(inner.to_owned())
}

/// Parse a `["a", "b"]` array of double-quoted strings.
fn parse_string_array(value: &str, source_name: &str, lineno: u32) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or_else(|| {
            format!("{source_name}:{lineno}: expected a `[\"…\", …]` array, got `{v}`")
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // tolerate a trailing comma
        }
        out.push(parse_string(item, source_name, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_grants_with_scopes_and_arrays() {
        let text = "# capability manifest\n\
                    [[grant]]\n\
                    crate = \"pcqe-par\"\n\
                    capabilities = [\"threads\", \"locks\", \"atomics\"]\n\
                    reason = \"scheduler owns threading\"\n\
                    \n\
                    [[grant]]\n\
                    crate = \"pcqe-core\"\n\
                    scope = \"crates/core/src/clock.rs\"\n\
                    capabilities = [\"atomics\"]\n\
                    reason = \"ManualClock advances an AtomicU64\"\n";
        let grants = parse(text, "lint-capabilities.toml").unwrap();
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].crate_name, "pcqe-par");
        assert_eq!(
            grants[0].caps,
            [Cap::Threads, Cap::Locks, Cap::Atomics]
                .into_iter()
                .collect()
        );
        assert_eq!(grants[0].declared_at, 2);
        assert_eq!(grants[1].scope.as_deref(), Some("crates/core/src/clock.rs"));
    }

    #[test]
    fn grant_coverage_respects_crate_and_scope() {
        let caps = Capabilities::from_grants(
            parse(
                "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = [\"locks\"]\nreason = \"r\"\n\
                 [[grant]]\ncrate = \"pcqe-core\"\nscope = \"crates/core/src/clock.rs\"\n\
                 capabilities = [\"atomics\"]\nreason = \"r\"\n",
                "f",
            )
            .unwrap(),
        );
        assert_eq!(caps.grant_for("crates/par/src/lib.rs", Cap::Locks), Some(0));
        assert_eq!(caps.grant_for("crates/par/src/lib.rs", Cap::Atomics), None);
        assert_eq!(caps.grant_for("crates/engine/src/db.rs", Cap::Locks), None);
        assert_eq!(
            caps.grant_for("crates/core/src/clock.rs", Cap::Atomics),
            Some(1)
        );
        assert_eq!(
            caps.grant_for("crates/core/src/greedy.rs", Cap::Atomics),
            None
        );
    }

    #[test]
    fn legacy_table_reproduces_the_c001_crate_list() {
        let caps = Capabilities::legacy();
        assert!(!caps.from_manifest);
        assert!(caps
            .grant_for("crates/par/src/lib.rs", Cap::Threads)
            .is_some());
        assert!(caps
            .grant_for("crates/obs/src/recorder.rs", Cap::Locks)
            .is_some());
        // `pcqe-obs` was never thread-exempt under D003.
        assert!(caps
            .grant_for("crates/obs/src/recorder.rs", Cap::Threads)
            .is_none());
        assert!(caps
            .grant_for("crates/core/src/clock.rs", Cap::Atomics)
            .is_some());
        assert!(caps
            .grant_for("crates/core/src/greedy.rs", Cap::Atomics)
            .is_none());
        assert!(caps
            .grant_for("crates/engine/src/database.rs", Cap::Locks)
            .is_none());
    }

    #[test]
    fn token_to_capability_mapping() {
        assert_eq!(Cap::of_token("Mutex"), Some(Cap::Locks));
        assert_eq!(Cap::of_token("RwLock"), Some(Cap::Locks));
        assert_eq!(Cap::of_token("Condvar"), Some(Cap::Locks));
        assert_eq!(Cap::of_token("mpsc"), Some(Cap::Channels));
        assert_eq!(Cap::of_token("AtomicU64"), Some(Cap::Atomics));
        // `Atomic` alone (e.g. a local type named exactly that) is not a
        // std primitive; `Ordering` is a mode selector, not shared state;
        // a lowercase continuation (`Atomics`) is prose, not a type.
        assert_eq!(Cap::of_token("Atomic"), None);
        assert_eq!(Cap::of_token("Atomics"), None);
        assert_eq!(Cap::of_token("Ordering"), None);
    }

    #[test]
    fn rejects_malformed_manifests() {
        // Missing reason is a *parse* error here (unlike the allowlist).
        assert!(parse(
            "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = [\"locks\"]\n",
            "f"
        )
        .is_err());
        // Blank reason too.
        assert!(parse(
            "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = [\"locks\"]\nreason = \"\"\n",
            "f"
        )
        .is_err());
        // Unknown capability, empty array, duplicate, non-workspace crate.
        assert!(parse(
            "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = [\"fibers\"]\nreason = \"r\"\n",
            "f"
        )
        .is_err());
        assert!(parse(
            "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = []\nreason = \"r\"\n",
            "f"
        )
        .is_err());
        assert!(parse(
            "[[grant]]\ncrate = \"pcqe-par\"\n\
             capabilities = [\"locks\", \"locks\"]\nreason = \"r\"\n",
            "f"
        )
        .is_err());
        assert!(parse(
            "[[grant]]\ncrate = \"serde\"\ncapabilities = [\"locks\"]\nreason = \"r\"\n",
            "f"
        )
        .is_err());
        // Unknown key, key outside a table, wrong table name.
        assert!(parse("[[grant]]\nbogus = \"x\"\n", "f").is_err());
        assert!(parse("crate = \"pcqe-par\"\n", "f").is_err());
        assert!(parse("[grant]\n", "f").is_err());
    }
}
