//! Human and machine-readable finding reports.
//!
//! JSON is emitted by hand (same idiom as the bench harness's report
//! writer): the workspace is registry-free, so no serde. Output is fully
//! deterministic — findings arrive pre-sorted and maps are avoided.

use crate::rules::{Rule, Severity};
use crate::Analysis;

/// Render the human report: one `path:line: CODE [severity] message` per
/// finding plus a summary line.
pub fn human(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n",
            f.path,
            f.line,
            f.rule.code(),
            f.rule.severity().label(),
            f.message
        ));
    }
    let errors = analysis.error_count();
    let warnings = analysis.warning_count();
    out.push_str(&format!(
        "pcqe-lint: {} file(s), {} manifest(s) scanned; {} error(s), {} warning(s), {} suppressed\n",
        analysis.files_scanned,
        analysis.manifests_scanned,
        errors,
        warnings,
        analysis.suppressed.len()
    ));
    out
}

/// Render the JSON report.
///
/// Format version 2 added the `rules` section: one entry per rule id in
/// [`Rule::all`] order with that rule's unsuppressed-error and
/// suppressed counts. CI gates on it (`pcqe-obs-validate --schema lint
/// --gate`): per-rule ceilings make a regression in *any* rule visible
/// even while the totals stay flat. Format version 3 widens the section
/// to the dataflow rules (PCQE-F001–F005); the shape is unchanged.
pub fn json(analysis: &Analysis) -> String {
    let mut out =
        String::from("{\n  \"tool\": \"pcqe-lint\",\n  \"format_version\": 3,\n  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", f.rule.code()));
        out.push_str(&format!(
            "\"severity\": \"{}\", ",
            f.rule.severity().label()
        ));
        out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": \"{}\"", escape(&f.message)));
        out.push('}');
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"rules\": {");
    for (i, rule) in Rule::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let errors = analysis.findings.iter().filter(|f| f.rule == rule).count();
        let suppressed = analysis
            .suppressed
            .iter()
            .filter(|(f, _)| f.rule == rule)
            .count();
        out.push_str(&format!(
            "\n    \"{}\": {{\"errors\": {errors}, \"suppressed\": {suppressed}}}",
            rule.code()
        ));
    }
    out.push_str("\n  },\n  \"summary\": {");
    out.push_str(&format!("\"files\": {}, ", analysis.files_scanned));
    out.push_str(&format!("\"manifests\": {}, ", analysis.manifests_scanned));
    out.push_str(&format!("\"errors\": {}, ", analysis.error_count()));
    out.push_str(&format!("\"warnings\": {}, ", analysis.warning_count()));
    out.push_str(&format!("\"suppressed\": {}", analysis.suppressed.len()));
    out.push_str("}\n}\n");
    out
}

impl Analysis {
    /// Unsuppressed findings with `Error` severity.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == Severity::Error)
            .count()
    }

    /// Unsuppressed findings with `Warning` severity.
    pub fn warning_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == Severity::Warning)
            .count()
    }
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: Rule::D001,
                path: "crates/core/src/x.rs".into(),
                line: 3,
                message: "a \"quoted\" construct".into(),
            }],
            suppressed: Vec::new(),
            files_scanned: 2,
            manifests_scanned: 1,
            witnesses: crate::flow::Witnesses::new(),
        }
    }

    #[test]
    fn human_report_names_rule_and_span() {
        let text = human(&sample());
        assert!(text.contains("crates/core/src/x.rs:3: PCQE-D001 [error]"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let text = json(&sample());
        assert!(text.contains("\"format_version\": 3"));
        assert!(text.contains("\"rule\": \"PCQE-D001\""));
        assert!(text.contains("a \\\"quoted\\\" construct"));
        assert!(text.contains("\"errors\": 1"));
        // The per-rule section counts the D001 error and zeroes the rest.
        assert!(text.contains("\"PCQE-D001\": {\"errors\": 1, \"suppressed\": 0}"));
        assert!(text.contains("\"PCQE-C003\": {\"errors\": 0, \"suppressed\": 0}"));
        // Empty analysis yields an empty findings array, still valid.
        let empty = Analysis {
            findings: Vec::new(),
            suppressed: Vec::new(),
            files_scanned: 0,
            manifests_scanned: 0,
            witnesses: crate::flow::Witnesses::new(),
        };
        assert!(json(&empty).contains("\"findings\": [],"));
    }

    #[test]
    fn json_rules_section_lists_every_rule_once_in_order() {
        let text = json(&sample());
        let codes: Vec<usize> = Rule::all()
            .into_iter()
            .map(|r| text.find(&format!("\"{}\": {{", r.code())).unwrap())
            .collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "rules section must follow Rule::all order");
        assert_eq!(codes.len(), 23);
    }
}
