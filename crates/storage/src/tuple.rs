//! Tuples and globally unique tuple identifiers.

use crate::value::Value;
use std::fmt;

/// Globally unique identifier of a *base* tuple.
///
/// Tuple ids double as lineage variables: the confidence of a derived result
/// is a function of the confidences of the base tuples whose ids appear in
/// its lineage (the paper's `λ0` variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A row of values, ordered according to some [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Wrap a vector of values as a tuple.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The tuple's values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column index `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Build a new tuple keeping only the columns at `indexes` (in order).
    pub fn project(&self, indexes: &[usize]) -> Tuple {
        Tuple {
            values: indexes
                .iter()
                .filter_map(|&i| self.values.get(i).cloned())
                .collect(),
        }
    }

    /// Concatenate two tuples (used by join/product).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let t = Tuple::new(vec![Value::Int(1), Value::text("a"), Value::Real(2.5)]);
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Real(2.5), Value::Int(1)]);
        let c = p.concat(&Tuple::new(vec![Value::Bool(true)]));
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), Some(&Value::Bool(true)));
    }

    #[test]
    fn project_ignores_out_of_range() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert_eq!(t.project(&[0, 9]).arity(), 1);
    }

    #[test]
    fn display_formats_rows() {
        let t = Tuple::new(vec![Value::Int(1), Value::text("x")]);
        assert_eq!(t.to_string(), "(1, x)");
        assert_eq!(TupleId(38).to_string(), "t38");
    }

    #[test]
    fn tuples_hash_and_compare() {
        use std::collections::HashSet;
        let a = Tuple::new(vec![Value::text("same")]);
        let b = Tuple::new(vec![Value::text("same")]);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
