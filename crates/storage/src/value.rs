//! Typed scalar values and their data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The scalar data types supported by the storage layer.
///
/// These mirror the types used by the paper's running example
/// (`Proposal(Company:string, Proposal:string, Funding:real)`), plus the
/// integer and boolean types any practical predicate language needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean truth value.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point ("real" in the paper's schemas).
    Real,
    /// UTF-8 string ("string" in the paper's schemas).
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Value` implements `Eq`, `Ord` and `Hash` with a *total* order so that
/// result tuples can be deduplicated by the set-semantic projection operator
/// (the operation that produces OR-lineage in the paper's example). Reals are
/// ordered with [`f64::total_cmp`]; `NULL` sorts before everything else, and
/// values of different types order by type tag.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / absent value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Real(f64),
    /// String value.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Real(_) => Some(DataType::Real),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`.
    ///
    /// NULL is storable anywhere; an `Int` is accepted by a `Real` column
    /// (widening), everything else must match exactly.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Real) => true,
            (v, t) => v.data_type() == Some(t),
        }
    }

    /// Numeric view of the value (ints widen to f64), `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view of the value, `None` otherwise.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view of the value, `None` otherwise.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, `None` otherwise.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL or
    /// the types are incomparable, otherwise the ordering under numeric
    /// coercion (ints compare with reals).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Rank used to order values of different types in the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Real(r) => r.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_types_of_values() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Real(1.5).data_type(), Some(DataType::Real));
        assert_eq!(Value::text("x").data_type(), Some(DataType::Text));
    }

    #[test]
    fn conformance_allows_null_and_int_widening() {
        assert!(Value::Null.conforms_to(DataType::Text));
        assert!(Value::Int(3).conforms_to(DataType::Real));
        assert!(!Value::Real(3.0).conforms_to(DataType::Int));
        assert!(!Value::text("x").conforms_to(DataType::Int));
    }

    #[test]
    fn sql_cmp_is_null_aware_and_coercing() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Real(1.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_handles_mixed_types_and_nan() {
        let mut vs = [
            Value::text("b"),
            Value::Real(f64::NAN),
            Value::Int(0),
            Value::Null,
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert!(matches!(vs[1], Value::Bool(false)));
        // NaN equals itself under the total order, so sorting is stable.
        assert_eq!(Value::Real(f64::NAN), Value::Real(f64::NAN));
    }

    #[test]
    fn eq_and_hash_agree() {
        let a = Value::Real(0.5);
        let b = Value::Real(0.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // Int(2) and Real(2.0) are distinct in the total order (dedup keeps
        // them apart), even though sql_cmp coerces them equal.
        assert_ne!(Value::Int(2), Value::Real(2.0));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }
}
