//! CSV import/export for confidence-carrying tables.
//!
//! The format is RFC-4180-flavoured: comma-separated, `"` quoting with
//! `""` escapes, one header row. The last column may be named
//! `confidence` (case-insensitive); when present it supplies each row's
//! confidence, otherwise rows load with confidence `1.0`. Empty unquoted
//! fields load as NULL.

use crate::catalog::Catalog;
use crate::error::StorageError;
use crate::table::Table;
use crate::tuple::TupleId;
use crate::value::{DataType, Value};
use crate::Result;
use std::io::{BufRead, Write};

/// Export a table (with a trailing `confidence` column) as CSV.
pub fn write_table<W: Write>(table: &Table, out: &mut W) -> std::io::Result<()> {
    let mut header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote(&c.name))
        .collect();
    header.push("confidence".to_owned());
    writeln!(out, "{}", header.join(","))?;
    for row in table.rows() {
        let mut cells: Vec<String> = row
            .tuple
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Text(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        cells.push(format!("{}", row.confidence));
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Load CSV rows into an existing catalog table, returning the new tuple
/// ids. The header must name the table's columns in order (matched
/// case-insensitively), optionally followed by `confidence`.
pub fn load_into<R: BufRead>(
    catalog: &mut Catalog,
    table: &str,
    reader: R,
) -> Result<Vec<TupleId>> {
    let mut records = parse(reader)?;
    if records.is_empty() {
        return Err(csv_err(0, "missing header row"));
    }
    let header = records.remove(0);
    let schema = catalog.table(table)?.schema().clone();
    let with_confidence = header
        .last()
        .is_some_and(|h| h.eq_ignore_ascii_case("confidence"));
    let expected = schema.arity() + usize::from(with_confidence);
    if header.len() != expected {
        return Err(csv_err(
            1,
            format!(
                "header has {} columns, table `{table}` needs {}{}",
                header.len(),
                schema.arity(),
                if with_confidence { " + confidence" } else { "" }
            ),
        ));
    }
    for (h, c) in header.iter().zip(schema.columns()) {
        if !h.eq_ignore_ascii_case(&c.name) {
            return Err(csv_err(
                1,
                format!(
                    "header column `{h}` does not match schema column `{}`",
                    c.name
                ),
            ));
        }
    }
    let mut ids = Vec::with_capacity(records.len());
    for (i, record) in records.into_iter().enumerate() {
        let line = i + 2;
        if record.len() != expected {
            return Err(csv_err(
                line,
                format!("expected {expected} fields, found {}", record.len()),
            ));
        }
        let confidence = if with_confidence {
            let raw = record
                .last()
                .ok_or_else(|| csv_err(line, "empty record".to_owned()))?;
            raw.parse::<f64>()
                .map_err(|_| csv_err(line, format!("bad confidence `{raw}`")))?
        } else {
            1.0
        };
        let mut values = Vec::with_capacity(schema.arity());
        for (raw, col) in record.iter().zip(schema.columns()) {
            values.push(parse_value(raw, col.data_type, line)?);
        }
        ids.push(catalog.insert(table, values, confidence)?);
    }
    Ok(ids)
}

fn parse_value(raw: &str, ty: DataType, line: usize) -> Result<Value> {
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| csv_err(line, format!("bad integer `{raw}`"))),
        DataType::Real => raw
            .parse::<f64>()
            .map(Value::Real)
            .map_err(|_| csv_err(line, format!("bad real `{raw}`"))),
        DataType::Bool => match raw.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(csv_err(line, format!("bad boolean `{raw}`"))),
        },
        DataType::Text => Ok(Value::Text(raw.to_owned())),
    }
}

fn csv_err(line: usize, message: impl Into<String>) -> StorageError {
    StorageError::Csv {
        line,
        message: message.into(),
    }
}

/// Quote a field if it contains a comma, a quote, or a newline.
fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Export a table as CSV with a leading `__id` column (for persistence,
/// where tuple ids must survive a round trip).
pub fn write_table_with_ids<W: Write>(table: &Table, out: &mut W) -> std::io::Result<()> {
    let mut header = vec!["__id".to_owned()];
    header.extend(table.schema().columns().iter().map(|c| quote(&c.name)));
    header.push("confidence".to_owned());
    writeln!(out, "{}", header.join(","))?;
    for row in table.rows() {
        let mut cells = vec![row.id.0.to_string()];
        cells.extend(row.tuple.values().iter().map(|v| match v {
            Value::Null => String::new(),
            Value::Text(s) => quote(s),
            other => other.to_string(),
        }));
        cells.push(format!("{}", row.confidence));
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Load CSV rows written by [`write_table_with_ids`], restoring tuple ids.
pub fn load_into_with_ids<R: BufRead>(
    catalog: &mut Catalog,
    table: &str,
    reader: R,
) -> Result<Vec<TupleId>> {
    let mut records = parse(reader)?;
    if records.is_empty() {
        return Err(csv_err(0, "missing header row"));
    }
    let header = records.remove(0);
    let schema = catalog.table(table)?.schema().clone();
    let expected = schema.arity() + 2;
    if header.len() != expected || header.first().map(String::as_str) != Some("__id") {
        return Err(csv_err(
            1,
            format!(
                "expected `__id`, {} schema columns, `confidence`",
                schema.arity()
            ),
        ));
    }
    let mut ids = Vec::with_capacity(records.len());
    for (i, record) in records.into_iter().enumerate() {
        let line = i + 2;
        if record.len() != expected {
            return Err(csv_err(
                line,
                format!("expected {expected} fields, found {}", record.len()),
            ));
        }
        let raw_id = record
            .first()
            .ok_or_else(|| csv_err(line, "empty record".to_owned()))?;
        let id = raw_id
            .parse::<u64>()
            .map_err(|_| csv_err(line, format!("bad tuple id `{raw_id}`")))?;
        let raw_conf = record
            .last()
            .ok_or_else(|| csv_err(line, "empty record".to_owned()))?;
        let confidence = raw_conf
            .parse::<f64>()
            .map_err(|_| csv_err(line, format!("bad confidence `{raw_conf}`")))?;
        let mut values = Vec::with_capacity(schema.arity());
        // Fields 1..expected-1 are the schema columns (the arity check
        // above pinned the record length); skip/take avoids slicing.
        for (raw, col) in record
            .iter()
            .skip(1)
            .take(expected - 2)
            .zip(schema.columns())
        {
            values.push(parse_value(raw, col.data_type, line)?);
        }
        ids.push(catalog.insert_with_id(table, TupleId(id), values, confidence)?);
    }
    Ok(ids)
}

/// Parse a whole CSV document into records of fields.
fn parse<R: BufRead>(mut reader: R) -> Result<Vec<Vec<String>>> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| csv_err(0, format!("read failed: {e}")))?;
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                    any = true;
                } else {
                    return Err(csv_err(line, "quote inside unquoted field"));
                }
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    continue; // handled by the \n branch
                }
            }
            '\n' => {
                line += 1;
                if any || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    any = false;
                }
            }
            _ => {
                field.push(c);
                any = true;
            }
        }
    }
    if in_quotes {
        return Err(csv_err(line, "unterminated quoted field"));
    }
    if any || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use std::io::Cursor;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "people",
            Schema::new(vec![
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
                Column::new("score", DataType::Real),
                Column::new("active", DataType::Bool),
            ])
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn load_with_confidence_column() {
        let mut c = catalog();
        let csv = "name,age,score,active,confidence\n\
                   alice,30,1.5,true,0.9\n\
                   bob,25,2.5,false,0.4\n";
        let ids = load_into(&mut c, "people", Cursor::new(csv)).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(c.confidence(ids[1]), Some(0.4));
        let t = c.table("people").unwrap();
        assert_eq!(t.rows()[0].tuple.get(0), Some(&Value::text("alice")));
        assert_eq!(t.rows()[1].tuple.get(3), Some(&Value::Bool(false)));
    }

    #[test]
    fn load_without_confidence_defaults_to_one() {
        let mut c = catalog();
        let csv = "name,age,score,active\ncarol,40,3.5,1\n";
        let ids = load_into(&mut c, "people", Cursor::new(csv)).unwrap();
        assert_eq!(c.confidence(ids[0]), Some(1.0));
    }

    #[test]
    fn quoting_and_nulls_round_trip() {
        let mut c = catalog();
        let csv = "name,age,score,active,confidence\n\
                   \"comma, quote \"\" and\nnewline\",,2.0,true,0.5\n";
        let ids = load_into(&mut c, "people", Cursor::new(csv)).unwrap();
        let t = c.table("people").unwrap();
        let row = t.row(ids[0]).unwrap();
        assert_eq!(
            row.tuple.get(0),
            Some(&Value::text("comma, quote \" and\nnewline"))
        );
        assert_eq!(row.tuple.get(1), Some(&Value::Null));
        // Write back out and re-load into a fresh catalog.
        let mut out = Vec::new();
        write_table(t, &mut out).unwrap();
        let mut c2 = catalog();
        let ids2 = load_into(&mut c2, "people", Cursor::new(out)).unwrap();
        let row2 = c2.table("people").unwrap().row(ids2[0]).unwrap();
        assert_eq!(row2.tuple, row.tuple);
        assert_eq!(row2.confidence, 0.5);
    }

    #[test]
    fn header_and_field_errors() {
        let mut c = catalog();
        assert!(matches!(
            load_into(&mut c, "people", Cursor::new("")),
            Err(StorageError::Csv { .. })
        ));
        assert!(load_into(&mut c, "people", Cursor::new("wrong,cols\n")).is_err());
        assert!(load_into(
            &mut c,
            "people",
            Cursor::new("name,age,score,active\nal,not_an_int,1.0,true\n")
        )
        .is_err());
        assert!(load_into(
            &mut c,
            "people",
            Cursor::new("name,age,score,active,confidence\nal,1,1.0,true,high\n")
        )
        .is_err());
        assert!(load_into(
            &mut c,
            "people",
            Cursor::new("name,age,score,active\n\"open quote,1,1.0,true\n")
        )
        .is_err());
        // Short row.
        assert!(load_into(
            &mut c,
            "people",
            Cursor::new("name,age,score,active\nal,1\n")
        )
        .is_err());
    }

    #[test]
    fn id_preserving_round_trip() {
        let mut c = catalog();
        let a = c
            .insert(
                "people",
                vec![
                    Value::text("alice"),
                    Value::Int(30),
                    Value::Real(1.5),
                    Value::Bool(true),
                ],
                0.9,
            )
            .unwrap();
        let mut out = Vec::new();
        write_table_with_ids(c.table("people").unwrap(), &mut out).unwrap();
        let mut c2 = catalog();
        // Pre-existing rows elsewhere shift the fresh-id counter; explicit
        // ids must still restore exactly.
        let ids = load_into_with_ids(&mut c2, "people", Cursor::new(out)).unwrap();
        assert_eq!(ids, vec![a]);
        assert_eq!(c2.confidence(a), Some(0.9));
        // New inserts continue past the restored ids.
        let next = c2
            .insert(
                "people",
                vec![Value::text("bob"), Value::Null, Value::Null, Value::Null],
                0.5,
            )
            .unwrap();
        assert!(next.0 > a.0);
        // Restoring the same ids twice collides.
        let mut out2 = Vec::new();
        write_table_with_ids(c2.table("people").unwrap(), &mut out2).unwrap();
        assert!(matches!(
            load_into_with_ids(&mut c2, "people", Cursor::new(out2)),
            Err(StorageError::DuplicateTupleId(_))
        ));
    }

    #[test]
    fn crlf_line_endings() {
        let mut c = catalog();
        let csv = "name,age,score,active\r\ndan,1,1.0,true\r\n";
        let ids = load_into(&mut c, "people", Cursor::new(csv)).unwrap();
        assert_eq!(ids.len(), 1);
    }
}
