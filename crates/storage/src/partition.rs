//! Deterministic hash partitioning for vectorized execution.
//!
//! The vectorized executor splits work two ways, both decided here from
//! the live [`crate::TableStats`]:
//!
//! * **Morsels** — contiguous runs of rows handed to `pcqe-par` workers.
//!   [`morsel_rows`] picks the run length: large enough to amortise
//!   dispatch, small enough that every worker lane stays busy.
//! * **Hash partitions** — a join build side is split into `P`
//!   independent ordered maps by a deterministic hash of the key values;
//!   [`partition_count`] picks `P` from the build side's cardinality and
//!   the key column's distinct-value count (no point cutting finer than
//!   the NDV supports).
//!
//! The hash is a fixed FNV-1a over each value's canonical byte form —
//! never a `RandomState`, never float equality — so a partition
//! assignment is a pure function of the value. Partitioning therefore
//! never changes results: every key lands in exactly one partition, and
//! within a partition rows keep their input order.

use crate::value::Value;

/// Default rows per morsel: the contiguous unit of work one `pcqe-par`
/// lane claims at a time during a vectorized scan.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Maximum hash partitions for a join build side.
pub const MAX_PARTITIONS: usize = 64;

/// Rows a partition should hold before another partition pays off.
const ROWS_PER_PARTITION: usize = 4096;

/// Morsel length for a table of `row_count` rows: the default, shrunk so
/// that even small-but-parallel tables split into a handful of morsels.
pub fn morsel_rows(row_count: usize) -> usize {
    if row_count == 0 {
        return DEFAULT_MORSEL_ROWS;
    }
    // At least 8 morsels for any table that can fill them, without ever
    // dropping below 64 rows (dispatch overhead would dominate).
    DEFAULT_MORSEL_ROWS.min(row_count.div_ceil(8)).max(64)
}

/// Number of morsels a table of `row_count` rows splits into.
pub fn morsel_count(row_count: usize, rows_per_morsel: usize) -> usize {
    row_count.div_ceil(rows_per_morsel.max(1))
}

/// Hash partitions for a join build side of `row_count` rows whose key
/// column has `distinct_keys` distinct values (`None` when unknown).
///
/// Always ≥ 1 and a power of two (so `hash & (p - 1)` selects the
/// partition), capped by [`MAX_PARTITIONS`] and by the NDV: with `d`
/// distinct keys, more than `d` partitions cannot spread the load.
pub fn partition_count(row_count: usize, distinct_keys: Option<usize>) -> usize {
    if row_count == 0 {
        return 1;
    }
    let by_rows = row_count.div_ceil(ROWS_PER_PARTITION);
    let by_ndv = distinct_keys.unwrap_or(usize::MAX).max(1);
    let target = by_rows.min(by_ndv).clamp(1, MAX_PARTITIONS);
    target.next_power_of_two().min(MAX_PARTITIONS)
}

/// A deterministic 64-bit FNV-1a hasher (no per-process seed).
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }
}

/// Feed one value's canonical byte form into the hasher. Reals hash by
/// their IEEE-754 bits — two values that compare equal under the storage
/// layer's total order hash identically, which is all partitioning
/// needs (equal keys must land in the same partition).
fn hash_value(h: &mut Fnv1a, v: &Value) {
    match v {
        Value::Null => h.write_u8(0),
        Value::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        Value::Int(i) => {
            h.write_u8(2);
            h.write(&i.to_le_bytes());
        }
        Value::Real(r) => {
            h.write_u8(3);
            h.write(&r.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            h.write_u8(4);
            h.write(s.as_bytes());
            // Terminator so ("ab","c") and ("a","bc") differ as keys.
            h.write_u8(0xff);
        }
    }
}

/// Deterministic hash of a composite key: the same value sequence always
/// hashes the same, across runs, threads and platforms.
pub fn stable_hash(values: &[Value]) -> u64 {
    let mut h = Fnv1a::new();
    for v in values {
        hash_value(&mut h, v);
    }
    h.0
}

/// Partition index for a composite key under `partitions` partitions
/// (which must be a power of two, as [`partition_count`] returns).
pub fn partition_of(values: &[Value], partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    (stable_hash(values) as usize) & (partitions - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_rows_scales_down_for_small_tables() {
        assert_eq!(morsel_rows(0), DEFAULT_MORSEL_ROWS);
        assert_eq!(morsel_rows(100_000), DEFAULT_MORSEL_ROWS);
        assert_eq!(morsel_rows(2048), 256);
        assert_eq!(morsel_rows(10), 64, "floor keeps morsels worthwhile");
        assert_eq!(morsel_count(2048, 256), 8);
        assert_eq!(morsel_count(0, 256), 0);
        assert_eq!(morsel_count(1, 0), 1, "zero morsel size is clamped");
    }

    #[test]
    fn partition_count_respects_rows_ndv_and_cap() {
        assert_eq!(partition_count(0, None), 1);
        assert_eq!(partition_count(100, None), 1, "small build: one map");
        assert_eq!(partition_count(40_000, None), 16);
        assert_eq!(partition_count(40_000, Some(3)), 4, "NDV caps partitions");
        assert_eq!(partition_count(10_000_000, None), MAX_PARTITIONS);
        for rows in [1usize, 10, 5000, 100_000] {
            let p = partition_count(rows, Some(7));
            assert!(p.is_power_of_two(), "{p} must be a power of two");
        }
    }

    #[test]
    fn stable_hash_is_a_pure_function_of_the_values() {
        let key = vec![Value::Int(42), Value::text("abc")];
        assert_eq!(stable_hash(&key), stable_hash(&key.clone()));
        // Concatenation boundaries matter.
        assert_ne!(
            stable_hash(&[Value::text("ab"), Value::text("c")]),
            stable_hash(&[Value::text("a"), Value::text("bc")])
        );
        // Type tags matter.
        assert_ne!(
            stable_hash(&[Value::Int(1)]),
            stable_hash(&[Value::Bool(true)])
        );
    }

    #[test]
    fn equal_keys_share_a_partition_at_any_count() {
        let a = vec![Value::text("SkyCam"), Value::Int(7)];
        let b = a.clone();
        for p in [1usize, 2, 8, 64] {
            assert_eq!(partition_of(&a, p), partition_of(&b, p));
            assert!(partition_of(&a, p) < p.max(1));
        }
        assert_eq!(partition_of(&a, 0), 0);
        assert_eq!(partition_of(&a, 1), 0);
    }

    #[test]
    fn partitions_spread_distinct_keys() {
        // 1000 distinct int keys over 16 partitions: no partition may
        // swallow everything (a degenerate hash would).
        let mut counts = [0usize; 16];
        for i in 0..1000i64 {
            counts[partition_of(&[Value::Int(i)], 16)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(counts.iter().all(|&c| c < 500), "{counts:?}");
    }
}
