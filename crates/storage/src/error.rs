//! Error type for the storage layer.

use crate::value::{DataType, Value};
use std::fmt;

/// Errors raised by schema validation, catalog operations and table access.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Two columns in a schema share the same qualified name.
    DuplicateColumn(String),
    /// A column reference did not resolve.
    UnknownColumn(String),
    /// A column reference resolved to more than one column.
    AmbiguousColumn(String),
    /// A positional column index was out of range.
    ColumnIndexOutOfRange(usize),
    /// A row had the wrong number of values.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value was incompatible with its column type.
    TypeMismatch {
        /// Offending column's display name.
        column: String,
        /// Declared column type.
        expected: DataType,
        /// Value that failed to conform.
        got: Value,
    },
    /// A table name did not resolve.
    UnknownTable(String),
    /// A table with that name already exists.
    TableExists(String),
    /// A tuple id did not resolve within a table.
    UnknownTuple(u64),
    /// A confidence value was outside `[0, 1]` or not finite.
    InvalidConfidence(f64),
    /// Direct insert into a table whose ids are allocated by the catalog.
    CatalogManagedTable(String),
    /// An explicit tuple id collided with an existing tuple.
    DuplicateTupleId(u64),
    /// An equality index was requested on a column type that cannot carry
    /// one (only `INT`, `TEXT` and `BOOL` columns are indexable).
    NotIndexable {
        /// Offending column's display name.
        column: String,
        /// The column's declared type.
        data_type: DataType,
    },
    /// A CSV document failed to parse or did not match the table schema.
    Csv {
        /// 1-based line number (0 when the document could not be read).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            StorageError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            StorageError::ColumnIndexOutOfRange(i) => {
                write!(f, "column index {i} out of range")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "column `{column}` expects {expected}, got incompatible value {got}"
            ),
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StorageError::UnknownTuple(id) => write!(f, "unknown tuple id {id}"),
            // The payload stays available to code; the rendered message
            // does not echo the confidence value (PCQE-F003).
            StorageError::InvalidConfidence(_) => {
                write!(f, "confidence outside [0, 1]")
            }
            StorageError::CatalogManagedTable(t) => write!(
                f,
                "table `{t}` is catalog-managed; insert through the catalog"
            ),
            StorageError::DuplicateTupleId(id) => {
                write!(f, "tuple id {id} already exists")
            }
            StorageError::NotIndexable { column, data_type } => {
                write!(
                    f,
                    "column `{column}` of type {data_type} cannot carry an equality index"
                )
            }
            StorageError::Csv { line, message } => {
                write!(f, "csv error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::TypeMismatch {
            column: "income".into(),
            expected: DataType::Real,
            got: Value::text("oops"),
        };
        let msg = e.to_string();
        assert!(msg.contains("income"));
        assert!(msg.contains("REAL"));
        assert!(msg.contains("oops"));
    }

    #[test]
    fn errors_are_std_errors() {
        let e: Box<dyn std::error::Error> = Box::new(StorageError::UnknownTable("t".into()));
        assert!(e.to_string().contains('t'));
    }
}
