//! The catalog: a named collection of tables with a global tuple-id space.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{check_confidence, StoredTuple, Table};
use crate::tuple::TupleId;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeMap;

/// A database catalog. Tables created through the catalog draw tuple ids
/// from a single global counter, so a [`TupleId`] unambiguously identifies
/// one base tuple across the whole database — exactly what lineage needs.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    next_id: u64,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a table. Fails if the name is taken (case-insensitive).
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.lookup_key(&name).is_some() {
            return Err(StorageError::TableExists(name));
        }
        // Tables created via the catalog don't use their own id sequence;
        // ids are handed out by `Catalog::insert`.
        let table = Table::catalog_managed(name.clone(), schema);
        self.tables.insert(name, table);
        Ok(())
    }

    fn lookup_key(&self, name: &str) -> Option<String> {
        self.tables
            .keys()
            .find(|k| k.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// Borrow a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<&Table> {
        let key = self
            .lookup_key(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))?;
        // Same discipline as `table_mut`: the key just came from
        // `lookup_key`, but the impossible miss is a typed error, not a
        // panic (PCQE-P002).
        self.tables
            .get(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Mutably borrow a table by name (case-insensitive).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let key = self
            .lookup_key(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))?;
        // The key was just produced by `lookup_key`, so the second lookup
        // cannot miss; report the impossible case as a typed error rather
        // than panicking (PCQE-P001).
        self.tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Insert a row into `table`, allocating a globally unique tuple id.
    pub fn insert(&mut self, table: &str, values: Vec<Value>, confidence: f64) -> Result<TupleId> {
        check_confidence(confidence)?;
        let id = TupleId(self.next_id);
        let t = self.table_mut(table)?;
        t.insert_with_id(id, values, confidence)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Insert a row with an explicit tuple id (used when restoring a
    /// persisted database, where lineage and cost functions reference the
    /// original ids). Fails if the id is already taken anywhere in the
    /// catalog; advances the id counter past `id`.
    pub fn insert_with_id(
        &mut self,
        table: &str,
        id: TupleId,
        values: Vec<Value>,
        confidence: f64,
    ) -> Result<TupleId> {
        if self.find_tuple(id).is_some() {
            return Err(StorageError::DuplicateTupleId(id.0));
        }
        check_confidence(confidence)?;
        let t = self.table_mut(table)?;
        t.insert_with_id(id, values, confidence)?;
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(id)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Create an equality index on `table.column`, backfilling from existing
    /// rows. Returns the column's position. Idempotent per column.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<usize> {
        let t = self.table_mut(table)?;
        let pos = t.schema().resolve(None, column)?;
        t.create_index(pos)?;
        Ok(pos)
    }

    /// Find the base tuple with the given id, searching all tables.
    pub fn find_tuple(&self, id: TupleId) -> Option<(&str, &StoredTuple)> {
        self.tables
            .values()
            .find_map(|t| t.row(id).map(|r| (t.name(), r)))
    }

    /// Current confidence of a base tuple, searching all tables.
    pub fn confidence(&self, id: TupleId) -> Option<f64> {
        self.find_tuple(id).map(|(_, r)| r.confidence)
    }

    /// Raise the confidence of a base tuple wherever it lives.
    pub fn raise_confidence(&mut self, id: TupleId, confidence: f64) -> Result<f64> {
        for t in self.tables.values_mut() {
            if t.row(id).is_some() {
                return t.raise_confidence(id, confidence);
            }
        }
        Err(StorageError::UnknownTuple(id.0))
    }

    /// Total number of base tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

impl Table {
    /// Insert a row with an externally allocated id (catalog use).
    pub(crate) fn insert_with_id(
        &mut self,
        id: TupleId,
        values: Vec<Value>,
        confidence: f64,
    ) -> Result<TupleId> {
        self.schema().check_row(&values)?;
        check_confidence(confidence)?;
        self.push_row(StoredTuple {
            id,
            tuple: values.into(),
            confidence,
        });
        Ok(id)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn ids_are_global_across_tables() {
        let mut c = catalog();
        let a = c
            .insert("Proposal", vec![Value::text("A"), Value::Real(1.0)], 0.3)
            .unwrap();
        let b = c
            .insert("CompanyInfo", vec![Value::text("A"), Value::Real(2.0)], 0.4)
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(c.confidence(a), Some(0.3));
        assert_eq!(c.confidence(b), Some(0.4));
        assert_eq!(c.total_rows(), 2);
    }

    #[test]
    fn duplicate_table_rejected_case_insensitively() {
        let mut c = catalog();
        assert!(matches!(
            c.create_table(
                "proposal",
                Schema::new(vec![Column::new("x", DataType::Int)]).unwrap()
            ),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn find_tuple_reports_owning_table() {
        let mut c = catalog();
        let id = c
            .insert("CompanyInfo", vec![Value::text("Z"), Value::Real(5.0)], 0.9)
            .unwrap();
        let (tname, row) = c.find_tuple(id).unwrap();
        assert_eq!(tname, "CompanyInfo");
        assert_eq!(row.confidence, 0.9);
        assert!(c.find_tuple(TupleId(999)).is_none());
    }

    #[test]
    fn raise_confidence_routes_to_owner() {
        let mut c = catalog();
        let id = c
            .insert("Proposal", vec![Value::text("A"), Value::Real(1.0)], 0.3)
            .unwrap();
        assert_eq!(c.raise_confidence(id, 0.5).unwrap(), 0.5);
        assert_eq!(c.raise_confidence(id, 0.1).unwrap(), 0.5);
        assert!(c.raise_confidence(TupleId(42), 0.5).is_err());
    }

    #[test]
    fn create_index_resolves_names_and_survives_csv_import() {
        let mut c = catalog();
        // Case-insensitive table and column resolution.
        let pos = c.create_index("proposal", "COMPANY").unwrap();
        assert_eq!(pos, 0);
        c.insert("Proposal", vec![Value::text("A"), Value::Real(1.0)], 0.3)
            .unwrap();
        // CSV import funnels through Catalog::insert, so the index sees it.
        let csv = "company,funding,confidence\nB,2.0,0.4\nA,3.0,0.5\n";
        crate::csv::load_into(&mut c, "Proposal", csv.as_bytes()).unwrap();
        let ix = c.table("Proposal").unwrap().index_on(0).unwrap();
        assert_eq!(ix.lookup(&Value::text("A")), &[0, 2]);
        assert_eq!(ix.lookup(&Value::text("B")), &[1]);
        // REAL columns are refused.
        assert!(matches!(
            c.create_index("Proposal", "funding"),
            Err(StorageError::NotIndexable { .. })
        ));
    }

    #[test]
    fn unknown_table_errors() {
        let mut c = catalog();
        assert!(c.table("nope").is_err());
        assert!(c.insert("nope", vec![], 0.5).is_err());
    }
}
