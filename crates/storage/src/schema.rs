//! Relation schemas: named, typed, optionally qualified columns.

use crate::error::StorageError;
use crate::value::{DataType, Value};
use crate::Result;

/// A single column: a name, an optional table qualifier, and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Qualifier (usually the table name or alias), if any.
    pub qualifier: Option<String>,
    /// Column name (case-preserving, matched case-insensitively).
    pub name: String,
    /// Data type of values stored in the column.
    pub data_type: DataType,
}

impl Column {
    /// Create an unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
            data_type,
        }
    }

    /// Create a qualified column (`qualifier.name`).
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            data_type,
        }
    }

    /// Render the column as `qualifier.name` or bare `name`.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether this column matches a (possibly qualified) reference.
    ///
    /// Matching is case-insensitive. An unqualified reference matches any
    /// qualifier; a qualified reference must match the column's qualifier.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered list of columns describing one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Create a schema, rejecting duplicate `qualifier.name` pairs.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, a) in columns.iter().enumerate() {
            for b in columns.iter().take(i) {
                let same_name = a.name.eq_ignore_ascii_case(&b.name);
                let same_qual = match (&a.qualifier, &b.qualifier) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    (None, None) => true,
                    _ => false,
                };
                if same_name && same_qual {
                    return Err(StorageError::DuplicateColumn(a.display_name()));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a (possibly qualified) column reference to its index.
    ///
    /// Returns [`StorageError::UnknownColumn`] if nothing matches and
    /// [`StorageError::AmbiguousColumn`] if more than one column matches.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if found.is_some() {
                    return Err(StorageError::AmbiguousColumn(name.to_owned()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| match qualifier {
            Some(q) => StorageError::UnknownColumn(format!("{q}.{name}")),
            None => StorageError::UnknownColumn(name.to_owned()),
        })
    }

    /// Stamp every column with `qualifier` (used when scanning a table under
    /// an alias), replacing any existing qualifier.
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    qualifier: Some(qualifier.to_owned()),
                    name: c.name.clone(),
                    data_type: c.data_type,
                })
                .collect(),
        }
    }

    /// Concatenate two schemas (used by joins/products). Duplicate qualified
    /// names are allowed here; resolution will report ambiguity on use.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Build a sub-schema from a list of column indexes.
    pub fn project(&self, indexes: &[usize]) -> Result<Schema> {
        let mut columns = Vec::with_capacity(indexes.len());
        for &i in indexes {
            let c = self
                .columns
                .get(i)
                .ok_or(StorageError::ColumnIndexOutOfRange(i))?;
            columns.push(c.clone());
        }
        Ok(Schema { columns })
    }

    /// Validate that a row of values conforms to this schema.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (v, c) in values.iter().zip(&self.columns) {
            if !v.conforms_to(c.data_type) {
                return Err(StorageError::TypeMismatch {
                    column: c.display_name(),
                    expected: c.data_type,
                    got: v.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col() -> Schema {
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Text),
        ])
        .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn same_name_different_qualifier_allowed() {
        let s = Schema::new(vec![
            Column::qualified("t1", "id", DataType::Int),
            Column::qualified("t2", "id", DataType::Int),
        ])
        .unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.resolve(Some("t2"), "id").unwrap(), 1);
        assert!(matches!(
            s.resolve(None, "id"),
            Err(StorageError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = two_col();
        assert_eq!(s.resolve(None, "COMPANY").unwrap(), 0);
        assert!(matches!(
            s.resolve(None, "missing"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn qualify_then_resolve() {
        let s = two_col().with_qualifier("p");
        assert_eq!(s.resolve(Some("p"), "income").unwrap(), 1);
        assert!(s.resolve(Some("q"), "income").is_err());
    }

    #[test]
    fn join_concatenates() {
        let s = two_col()
            .with_qualifier("a")
            .join(&two_col().with_qualifier("b"));
        assert_eq!(s.arity(), 4);
        assert_eq!(s.resolve(Some("b"), "company").unwrap(), 2);
    }

    #[test]
    fn project_picks_columns() {
        let s = two_col();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.columns()[0].name, "income");
        assert!(s.project(&[5]).is_err());
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = two_col();
        assert!(s.check_row(&[Value::text("x"), Value::Real(1.0)]).is_ok());
        // Int widens into a Real column.
        assert!(s.check_row(&[Value::text("x"), Value::Int(1)]).is_ok());
        assert!(matches!(
            s.check_row(&[Value::text("x")]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::Real(1.0)]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }
}
