//! Confidence-carrying tables.

use crate::batch::Batch;
use crate::error::StorageError;
use crate::index::{check_indexable, EqualityIndex};
use crate::schema::Schema;
use crate::stats::{ColumnStats, TableStats};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// A stored base tuple: id, values and its current confidence value.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTuple {
    /// Globally unique id, assigned at insert time.
    pub id: TupleId,
    /// The tuple's values.
    pub tuple: Tuple,
    /// Confidence in `[0, 1]` (the paper's `p` value for a base tuple).
    pub confidence: f64,
}

/// An in-memory table whose rows each carry a confidence value.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<StoredTuple>,
    by_id: HashMap<TupleId, usize>,
    /// Equality indexes, in creation order. Maintained incrementally by
    /// [`Table::push_row`], which every insert path funnels through
    /// (catalog insert, restore-with-id, standalone insert, CSV import).
    indexes: Vec<EqualityIndex>,
    /// Id allocator for standalone tables; `None` when the owning
    /// [`crate::Catalog`] allocates ids.
    ids: Option<IdSeq>,
}

#[derive(Debug, Clone)]
struct IdSeq {
    base: u64,
    stride: u64,
    next: u64,
}

/// Validate a confidence value: finite and within `[0, 1]`.
pub(crate) fn check_confidence(c: f64) -> Result<()> {
    if !c.is_finite() || !(0.0..=1.0).contains(&c) {
        return Err(StorageError::InvalidConfidence(c));
    }
    Ok(())
}

impl Table {
    /// Create an empty table. `ids` controls whether the table allocates its
    /// own tuple ids (`Some`) or leaves allocation to a [`crate::Catalog`]
    /// (`None`).
    fn with_ids(name: String, schema: Schema, ids: Option<IdSeq>) -> Self {
        Table {
            name,
            schema,
            rows: Vec::new(),
            by_id: HashMap::new(),
            indexes: Vec::new(),
            ids,
        }
    }

    /// Create a catalog-managed table (ids supplied externally).
    pub(crate) fn catalog_managed(name: String, schema: Schema) -> Self {
        Table::with_ids(name, schema, None)
    }

    /// Create a standalone table (ids count up from zero). Prefer creating
    /// tables through a [`crate::Catalog`] so ids stay globally unique.
    pub fn standalone(name: impl Into<String>, schema: Schema) -> Self {
        Table::with_ids(
            name.into(),
            schema,
            Some(IdSeq {
                base: 0,
                stride: 1,
                next: 0,
            }),
        )
    }

    /// Create a standalone table whose ids follow `base + i * stride`,
    /// letting multiple standalone tables keep disjoint id spaces.
    pub fn standalone_strided(
        name: impl Into<String>,
        schema: Schema,
        base: u64,
        stride: u64,
    ) -> Self {
        Table::with_ids(
            name.into(),
            schema,
            Some(IdSeq {
                base,
                stride: stride.max(1),
                next: 0,
            }),
        )
    }

    /// Append a validated row, maintaining the id index and every equality
    /// index. This is the single funnel for all insert paths, so indexes can
    /// never go stale.
    pub(crate) fn push_row(&mut self, row: StoredTuple) {
        debug_assert!(
            !self.by_id.contains_key(&row.id),
            "duplicate tuple id {}",
            row.id
        );
        let pos = self.rows.len();
        for ix in &mut self.indexes {
            if let Some(v) = row.tuple.get(ix.column()) {
                ix.add(pos, v);
            }
        }
        self.by_id.insert(row.id, pos);
        self.rows.push(row);
    }

    /// Create an equality index on the column at position `column`,
    /// backfilling it from all existing rows. Idempotent: re-creating an
    /// existing index is a no-op. Only `INT`, `TEXT` and `BOOL` columns are
    /// indexable (see [`crate::index`] for why `REAL` is refused).
    pub fn create_index(&mut self, column: usize) -> Result<()> {
        let col = self
            .schema
            .columns()
            .get(column)
            .ok_or(StorageError::ColumnIndexOutOfRange(column))?;
        check_indexable(&col.display_name(), col.data_type)?;
        if self.index_on(column).is_some() {
            return Ok(());
        }
        let mut ix = EqualityIndex::new(column);
        for (pos, row) in self.rows.iter().enumerate() {
            if let Some(v) = row.tuple.get(column) {
                ix.add(pos, v);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// The equality index on `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&EqualityIndex> {
        self.indexes.iter().find(|ix| ix.column() == column)
    }

    /// All equality indexes, in creation order.
    pub fn indexes(&self) -> &[EqualityIndex] {
        &self.indexes
    }

    /// Current statistics: cardinality plus NDV for each indexed column.
    pub fn stats(&self) -> TableStats {
        TableStats {
            row_count: self.rows.len(),
            columns: self
                .indexes
                .iter()
                .map(|ix| ColumnStats {
                    column: ix.column(),
                    distinct_keys: ix.distinct_keys(),
                })
                .collect(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row with the given confidence, returning its new id.
    ///
    /// Only standalone tables may allocate their own ids; rows of
    /// catalog-managed tables must be inserted through
    /// [`crate::Catalog::insert`] so ids stay globally unique.
    pub fn insert(&mut self, values: Vec<Value>, confidence: f64) -> Result<TupleId> {
        self.schema.check_row(&values)?;
        check_confidence(confidence)?;
        let seq = self
            .ids
            .as_mut()
            .ok_or_else(|| StorageError::CatalogManagedTable(self.name.clone()))?;
        let id = TupleId(seq.base + seq.next * seq.stride);
        seq.next += 1;
        self.push_row(StoredTuple {
            id,
            tuple: Tuple::new(values),
            confidence,
        });
        Ok(id)
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[StoredTuple] {
        &self.rows
    }

    /// The table as columnar [`Batch`]es of at most `rows_per_morsel`
    /// rows each, in insertion order (the vectorized scan's morsels).
    /// Pass `0` to let [`crate::partition::morsel_rows`] pick a size.
    pub fn batches(&self, rows_per_morsel: usize) -> Result<Vec<Batch>> {
        let step = if rows_per_morsel == 0 {
            crate::partition::morsel_rows(self.rows.len())
        } else {
            rows_per_morsel
        };
        self.rows
            .chunks(step.max(1))
            .map(|chunk| Batch::from_rows(self.schema.arity(), chunk))
            .collect()
    }

    /// Look up a row by id.
    pub fn row(&self, id: TupleId) -> Option<&StoredTuple> {
        self.by_id.get(&id).and_then(|&i| self.rows.get(i))
    }

    /// Current confidence of a tuple, if it exists.
    pub fn confidence(&self, id: TupleId) -> Option<f64> {
        self.row(id).map(|r| r.confidence)
    }

    /// Set a tuple's confidence (the "data quality improvement" action).
    pub fn set_confidence(&mut self, id: TupleId, confidence: f64) -> Result<()> {
        check_confidence(confidence)?;
        let idx = *self
            .by_id
            .get(&id)
            .ok_or(StorageError::UnknownTuple(id.0))?;
        let row = self
            .rows
            .get_mut(idx)
            .ok_or(StorageError::UnknownTuple(id.0))?;
        row.confidence = confidence;
        Ok(())
    }

    /// Raise a tuple's confidence to `confidence` if that is higher than the
    /// current value; never lowers it. Returns the resulting confidence.
    pub fn raise_confidence(&mut self, id: TupleId, confidence: f64) -> Result<f64> {
        check_confidence(confidence)?;
        let idx = *self
            .by_id
            .get(&id)
            .ok_or(StorageError::UnknownTuple(id.0))?;
        let row = self
            .rows
            .get_mut(idx)
            .ok_or(StorageError::UnknownTuple(id.0))?;
        if confidence > row.confidence {
            row.confidence = confidence;
        }
        Ok(row.confidence)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap();
        Table::standalone("Proposal", schema)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut t = table();
        let a = t
            .insert(vec![Value::text("A"), Value::Real(1.0)], 0.5)
            .unwrap();
        let b = t
            .insert(vec![Value::text("B"), Value::Real(2.0)], 0.6)
            .unwrap();
        assert_eq!(a, TupleId(0));
        assert_eq!(b, TupleId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(b).unwrap().tuple.get(0), Some(&Value::text("B")));
    }

    #[test]
    fn insert_validates_schema_and_confidence() {
        let mut t = table();
        assert!(t
            .insert(vec![Value::Int(1), Value::Real(1.0)], 0.5)
            .is_err());
        assert!(matches!(
            t.insert(vec![Value::text("A"), Value::Real(1.0)], 1.5),
            Err(StorageError::InvalidConfidence(_))
        ));
        assert!(matches!(
            t.insert(vec![Value::text("A"), Value::Real(1.0)], f64::NAN),
            Err(StorageError::InvalidConfidence(_))
        ));
        assert!(t.is_empty());
    }

    #[test]
    fn confidence_updates() {
        let mut t = table();
        let id = t
            .insert(vec![Value::text("A"), Value::Real(1.0)], 0.3)
            .unwrap();
        t.set_confidence(id, 0.4).unwrap();
        assert_eq!(t.confidence(id), Some(0.4));
        // raise_confidence never lowers
        assert_eq!(t.raise_confidence(id, 0.2).unwrap(), 0.4);
        assert_eq!(t.raise_confidence(id, 0.9).unwrap(), 0.9);
        assert!(matches!(
            t.set_confidence(TupleId(99), 0.5),
            Err(StorageError::UnknownTuple(99))
        ));
    }

    #[test]
    fn strided_id_spaces_do_not_collide() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let mut a = Table::standalone_strided("a", schema.clone(), 0, 2);
        let mut b = Table::standalone_strided("b", schema, 1, 2);
        let ia = a.insert(vec![Value::Int(1)], 0.1).unwrap();
        let ib = b.insert(vec![Value::Int(1)], 0.1).unwrap();
        assert_ne!(ia, ib);
        let ia2 = a.insert(vec![Value::Int(2)], 0.1).unwrap();
        assert_eq!(ia2, TupleId(2));
    }

    #[test]
    fn indexes_are_maintained_across_insert_paths() {
        let schema = Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap();
        let mut t = Table::standalone("Proposal", schema);
        t.insert(vec![Value::text("A"), Value::Real(1.0)], 0.5)
            .unwrap();
        // Index created after the fact backfills existing rows...
        t.create_index(0).unwrap();
        // ...and subsequent inserts maintain it incrementally.
        t.insert(vec![Value::text("B"), Value::Real(2.0)], 0.6)
            .unwrap();
        t.insert(vec![Value::text("A"), Value::Real(3.0)], 0.7)
            .unwrap();
        t.insert(vec![Value::Null, Value::Real(4.0)], 0.8).unwrap();
        let ix = t.index_on(0).unwrap();
        assert_eq!(ix.lookup(&Value::text("A")), &[0, 2]);
        assert_eq!(ix.lookup(&Value::text("B")), &[1]);
        assert_eq!(ix.lookup(&Value::Null), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 2);
        // Re-creating is a no-op, not an error.
        t.create_index(0).unwrap();
        assert_eq!(t.indexes().len(), 1);
        // Stats reflect the live table.
        let stats = t.stats();
        assert_eq!(stats.row_count, 4);
        assert_eq!(stats.distinct_keys(0), Some(2));
    }

    #[test]
    fn real_columns_refuse_indexes() {
        let mut t = table();
        assert!(matches!(
            t.create_index(1),
            Err(StorageError::NotIndexable { .. })
        ));
        assert!(matches!(
            t.create_index(9),
            Err(StorageError::ColumnIndexOutOfRange(9))
        ));
    }

    #[test]
    fn catalog_managed_tables_reject_direct_insert() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let mut t = Table::catalog_managed("c".into(), schema);
        assert!(matches!(
            t.insert(vec![Value::Int(1)], 0.1),
            Err(StorageError::CatalogManagedTable(_))
        ));
    }
}
