//! In-memory relational storage substrate for PCQE.
//!
//! The paper assumes a relational DBMS in which every base tuple carries a
//! confidence value in `[0, 1]` (Section 3.2, "confidence assignment").
//! This crate provides that substrate: typed [`Value`]s, [`Schema`]s,
//! confidence-carrying [`Table`]s, and a [`Catalog`] that hands out globally
//! unique [`TupleId`]s used as lineage variables by the query evaluator.
//!
//! # Example
//!
//! ```
//! use pcqe_storage::{Catalog, Column, DataType, Schema, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![
//!     Column::new("company", DataType::Text),
//!     Column::new("income", DataType::Real),
//! ]).unwrap();
//! catalog.create_table("CompanyInfo", schema).unwrap();
//! let id = catalog
//!     .insert(
//!         "CompanyInfo",
//!         vec![Value::text("SkyHigh"), Value::Real(800_000.0)],
//!         0.7,
//!     )
//!     .unwrap();
//! assert_eq!(catalog.confidence(id), Some(0.7));
//! ```

pub mod batch;
pub mod catalog;
pub mod csv;
pub mod error;
pub mod index;
pub mod partition;
pub mod schema;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use batch::Batch;
pub use catalog::Catalog;
pub use error::StorageError;
pub use index::EqualityIndex;
pub use partition::{morsel_count, morsel_rows, partition_count, partition_of, stable_hash};
pub use schema::{Column, Schema};
pub use stats::{ColumnStats, TableStats};
pub use table::{StoredTuple, Table};
pub use tuple::{Tuple, TupleId};
pub use value::{DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
