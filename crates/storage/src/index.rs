//! Deterministic equality indexes over table columns.
//!
//! An [`EqualityIndex`] maps a column value to the *positions* (in insertion
//! order) of the rows that carry it. Two properties make it safe for the
//! physical planner to substitute an index scan for a full table scan:
//!
//! 1. **Determinism** — the index is a `BTreeMap` keyed by [`Value`]'s total
//!    order and each posting list is appended in insertion order, so a lookup
//!    yields row positions in exactly the order a sequential scan would visit
//!    them. Index scans therefore produce bit-identical output order.
//! 2. **Exactness** — only [`DataType::Int`], [`DataType::Text`] and
//!    [`DataType::Bool`] columns are indexable. For those types `Value`'s
//!    `Ord` agrees with SQL equality (`sql_cmp`); `REAL` columns are refused
//!    because SQL coerces `INT = REAL` and treats `0.0 = -0.0` while the map
//!    key order distinguishes bit patterns. `NULL` values are never entered
//!    into the index: SQL equality on `NULL` is never true, so a `NULL` key
//!    can never match an equality predicate.

use crate::error::StorageError;
use crate::value::{DataType, Value};
use crate::Result;
use std::collections::BTreeMap;

/// True if a column of type `ty` may carry an equality index.
///
/// See the module docs for why `REAL` (and therefore `NULL`-only) columns
/// are excluded.
pub fn indexable(ty: DataType) -> bool {
    matches!(ty, DataType::Int | DataType::Text | DataType::Bool)
}

/// A deterministic equality index over one column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualityIndex {
    column: usize,
    map: BTreeMap<Value, Vec<usize>>,
    /// Number of rows covered, including `NULL` rows that carry no posting.
    covered_rows: usize,
}

impl EqualityIndex {
    /// Create an empty index over column `column`.
    pub(crate) fn new(column: usize) -> Self {
        EqualityIndex {
            column,
            map: BTreeMap::new(),
            covered_rows: 0,
        }
    }

    /// The indexed column's position in the table schema.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Record that the row at position `pos` carries `value` in the indexed
    /// column. `NULL` values are counted but not entered (they can never
    /// satisfy an equality predicate).
    pub(crate) fn add(&mut self, pos: usize, value: &Value) {
        self.covered_rows += 1;
        if value.is_null() {
            return;
        }
        self.map.entry(value.clone()).or_default().push(pos);
    }

    /// Row positions whose indexed column equals `key`, in insertion order.
    ///
    /// A `NULL` key matches nothing, mirroring SQL equality.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct non-`NULL` keys (the planner's NDV statistic).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of rows the index covers (including `NULL`-keyed rows).
    pub fn covered_rows(&self) -> usize {
        self.covered_rows
    }
}

/// Validate that `column` (named `name`, typed `ty`) may be indexed.
pub(crate) fn check_indexable(name: &str, ty: DataType) -> Result<()> {
    if !indexable(ty) {
        return Err(StorageError::NotIndexable {
            column: name.to_owned(),
            data_type: ty,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexable_types_exclude_real() {
        assert!(indexable(DataType::Int));
        assert!(indexable(DataType::Text));
        assert!(indexable(DataType::Bool));
        assert!(!indexable(DataType::Real));
    }

    #[test]
    fn postings_preserve_insertion_order() {
        let mut ix = EqualityIndex::new(0);
        ix.add(0, &Value::Int(7));
        ix.add(1, &Value::Int(3));
        ix.add(2, &Value::Int(7));
        ix.add(3, &Value::Null);
        ix.add(4, &Value::Int(7));
        assert_eq!(ix.lookup(&Value::Int(7)), &[0, 2, 4]);
        assert_eq!(ix.lookup(&Value::Int(3)), &[1]);
        assert_eq!(ix.lookup(&Value::Int(9)), &[] as &[usize]);
        assert_eq!(ix.lookup(&Value::Null), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 2);
        assert_eq!(ix.covered_rows(), 5);
    }
}
