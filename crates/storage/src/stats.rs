//! Table statistics consumed by the cost-based physical planner.
//!
//! Statistics are derived on demand from the table itself (row count) and
//! its equality indexes (distinct-key counts), so they are always current:
//! there is no refresh step to forget and no stale-estimate failure mode.
//! Everything here is deterministic — counts over `Vec`s and `BTreeMap`s.

/// Distinct-value statistics for one indexed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    /// Column position in the table schema.
    pub column: usize,
    /// Number of distinct non-`NULL` keys observed in the column.
    pub distinct_keys: usize,
}

/// Per-table statistics: cardinality plus NDV for every indexed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Total number of rows in the table.
    pub row_count: usize,
    /// One entry per equality index, in index-creation order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Distinct-key count for `column`, if that column is indexed.
    pub fn distinct_keys(&self, column: usize) -> Option<usize> {
        self.columns
            .iter()
            .find(|c| c.column == column)
            .map(|c| c.distinct_keys)
    }

    /// Estimated number of rows matching an equality predicate on `column`.
    ///
    /// With an index this is `ceil(row_count / distinct_keys)`; without one
    /// the planner falls back to the classic 1/10 selectivity guess. The
    /// estimate is only ever used to *choose* between physically equivalent
    /// plans, never to decide results, so a bad guess costs time, not
    /// correctness.
    pub fn eq_selectivity_rows(&self, column: usize) -> usize {
        match self.distinct_keys(column) {
            Some(ndv) if ndv > 0 => self.row_count.div_ceil(ndv),
            _ => self.row_count.div_ceil(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_uses_ndv_when_indexed() {
        let s = TableStats {
            row_count: 100,
            columns: vec![ColumnStats {
                column: 1,
                distinct_keys: 25,
            }],
        };
        assert_eq!(s.distinct_keys(1), Some(25));
        assert_eq!(s.eq_selectivity_rows(1), 4);
        // Unindexed column: 1/10 guess.
        assert_eq!(s.eq_selectivity_rows(0), 10);
    }

    #[test]
    fn eq_selectivity_handles_small_and_empty_tables() {
        let empty = TableStats {
            row_count: 0,
            columns: vec![],
        };
        assert_eq!(empty.eq_selectivity_rows(0), 0);
        let tiny = TableStats {
            row_count: 3,
            columns: vec![],
        };
        assert_eq!(tiny.eq_selectivity_rows(0), 1);
    }
}
