//! Columnar batches: the unit of vectorized execution.
//!
//! A [`Batch`] is a hand-rolled, `std`-only columnar representation of a
//! run of rows (Arrow-style in spirit): one [`Value`] vector per schema
//! column, plus the two sideband columns the paper's model attaches to
//! every base tuple — its **confidence** and its **lineage id** (the
//! [`crate::TupleId`] that doubles as the tuple's lineage variable). An
//! optional **selection vector** narrows the batch to a subset of its
//! physical rows without copying; [`Batch::compact`] materialises the
//! selection when a dense batch is needed downstream.
//!
//! Batches are produced by [`crate::Table::batches`] (one batch per
//! morsel of rows) and consumed by the vectorized physical executor in
//! `pcqe-algebra`, which carries full symbolic lineage alongside — the
//! lineage-id column here seeds those `λ0` variables at the scan.
//!
//! Everything is deterministic and index-safe: row access is bounds
//! checked, iteration order is storage order, and nothing here consults
//! a clock, a hash map, or float equality.

use crate::error::StorageError;
use crate::table::StoredTuple;
use crate::value::Value;
use crate::Result;

/// A columnar run of rows with confidence and lineage-id sidebands.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// One vector per schema column; all the same length.
    columns: Vec<Vec<Value>>,
    /// Physical rows in the batch (the length of every column).
    rows: usize,
    /// Optional selection: logical row `i` is physical row
    /// `selection[i]`. `None` = all physical rows, in order.
    selection: Option<Vec<u32>>,
    /// Per-physical-row confidence of the originating base tuple.
    confidence: Vec<f64>,
    /// Per-physical-row lineage variable (the base tuple's id).
    lineage_id: Vec<u64>,
}

impl Batch {
    /// An empty batch over `arity` columns.
    pub fn empty(arity: usize) -> Batch {
        Batch {
            columns: (0..arity).map(|_| Vec::new()).collect(),
            rows: 0,
            selection: None,
            confidence: Vec::new(),
            lineage_id: Vec::new(),
        }
    }

    /// Build a batch from stored tuples, cloning each value into its
    /// column. The confidence and lineage-id sidebands come from the
    /// tuples themselves. Fails if the rows disagree on arity.
    pub fn from_rows(arity: usize, rows: &[StoredTuple]) -> Result<Batch> {
        let mut batch = Batch::empty(arity);
        batch.reserve(rows.len());
        for r in rows {
            batch.push_stored(r)?;
        }
        Ok(batch)
    }

    /// Reserve capacity for `extra` more rows in every column.
    pub fn reserve(&mut self, extra: usize) {
        for col in &mut self.columns {
            col.reserve(extra);
        }
        self.confidence.reserve(extra);
        self.lineage_id.reserve(extra);
    }

    /// Append one stored tuple (values cloned column-wise).
    pub fn push_stored(&mut self, row: &StoredTuple) -> Result<()> {
        let values = row.tuple.values();
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v.clone());
        }
        self.confidence.push(row.confidence);
        self.lineage_id.push(row.id.0);
        self.rows += 1;
        Ok(())
    }

    /// Number of schema columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of *logical* rows: the selection's length when one is set,
    /// the physical row count otherwise.
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    /// True when the batch has no logical rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column vectors (physical rows; apply the selection yourself
    /// or [`Batch::compact`] first).
    pub fn columns(&self) -> &[Vec<Value>] {
        &self.columns
    }

    /// The confidence sideband, aligned with physical rows.
    pub fn confidences(&self) -> &[f64] {
        &self.confidence
    }

    /// The lineage-id sideband, aligned with physical rows.
    pub fn lineage_ids(&self) -> &[u64] {
        &self.lineage_id
    }

    /// The selection vector, if one is set.
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Physical row index of logical row `i`, if in range.
    fn physical(&self, i: usize) -> Option<usize> {
        match &self.selection {
            Some(sel) => sel.get(i).map(|&p| p as usize),
            None => (i < self.rows).then_some(i),
        }
    }

    /// Value at logical row `i`, column `col`, if in range.
    pub fn value(&self, i: usize, col: usize) -> Option<&Value> {
        let p = self.physical(i)?;
        self.columns.get(col)?.get(p)
    }

    /// Confidence of logical row `i`, if in range.
    pub fn row_confidence(&self, i: usize) -> Option<f64> {
        let p = self.physical(i)?;
        self.confidence.get(p).copied()
    }

    /// Lineage variable of logical row `i`, if in range.
    pub fn row_lineage_id(&self, i: usize) -> Option<u64> {
        let p = self.physical(i)?;
        self.lineage_id.get(p).copied()
    }

    /// Clone logical row `i`'s values into `out` (cleared first).
    /// Returns `false` when `i` is out of range.
    pub fn read_row(&self, i: usize, out: &mut Vec<Value>) -> bool {
        let Some(p) = self.physical(i) else {
            return false;
        };
        out.clear();
        for col in &self.columns {
            match col.get(p) {
                Some(v) => out.push(v.clone()),
                None => return false,
            }
        }
        true
    }

    /// Restrict the batch to the physical rows in `keep` (ascending or
    /// not — order is preserved as given). Replaces any prior selection:
    /// indices in `keep` refer to *logical* rows of the current view.
    pub fn select(&mut self, keep: &[u32]) {
        let resolved: Vec<u32> = match &self.selection {
            Some(sel) => keep
                .iter()
                .filter_map(|&i| sel.get(i as usize).copied())
                .collect(),
            None => keep
                .iter()
                .copied()
                .filter(|&i| (i as usize) < self.rows)
                .collect(),
        };
        self.selection = Some(resolved);
    }

    /// Materialise the selection: afterwards the batch is dense (no
    /// selection vector) and holds exactly its logical rows. A no-op
    /// when no selection is set.
    pub fn compact(&mut self) -> &mut Batch {
        let Some(sel) = self.selection.take() else {
            return self;
        };
        let pick = |src: &mut Vec<Value>| -> Vec<Value> {
            let taken = std::mem::take(src);
            sel.iter()
                .filter_map(|&p| taken.get(p as usize).cloned())
                .collect()
        };
        for col in &mut self.columns {
            *col = pick(col);
        }
        self.confidence = sel
            .iter()
            .filter_map(|&p| self.confidence.get(p as usize).copied())
            .collect();
        self.lineage_id = sel
            .iter()
            .filter_map(|&p| self.lineage_id.get(p as usize).copied())
            .collect();
        self.rows = sel.len();
        self
    }

    /// Consume the batch, yielding `(columns, confidences, lineage_ids)`
    /// with any selection materialised first.
    pub fn into_parts(mut self) -> (Vec<Vec<Value>>, Vec<f64>, Vec<u64>) {
        self.compact();
        (self.columns, self.confidence, self.lineage_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::table::Table;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("name", DataType::Text),
        ])
        .expect("schema");
        let mut t = Table::standalone("t", schema);
        for i in 0..5i64 {
            t.insert(
                vec![Value::Int(i), Value::text(format!("row{i}"))],
                0.1 + 0.1 * i as f64,
            )
            .expect("insert");
        }
        t
    }

    #[test]
    fn from_rows_carries_values_confidence_and_lineage() {
        let t = sample();
        let b = Batch::from_rows(2, t.rows()).expect("batch");
        assert_eq!(b.arity(), 2);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.value(3, 0), Some(&Value::Int(3)));
        assert_eq!(b.value(3, 1), Some(&Value::text("row3")));
        assert_eq!(b.row_lineage_id(3), Some(t.rows()[3].id.0));
        assert_eq!(
            b.row_confidence(3).map(f64::to_bits),
            Some(t.rows()[3].confidence.to_bits())
        );
        assert_eq!(b.value(5, 0), None, "out of range");
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let t = sample();
        let err = Batch::from_rows(3, t.rows()).expect_err("wrong arity");
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn selection_narrows_then_compact_materialises() {
        let t = sample();
        let mut b = Batch::from_rows(2, t.rows()).expect("batch");
        b.select(&[4, 1]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(0, 0), Some(&Value::Int(4)), "selection order");
        assert_eq!(b.value(1, 0), Some(&Value::Int(1)));
        // Re-selecting composes over the *current* view.
        b.select(&[1]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.value(0, 0), Some(&Value::Int(1)));
        b.compact();
        assert!(b.selection().is_none());
        assert_eq!(b.len(), 1);
        assert_eq!(b.value(0, 0), Some(&Value::Int(1)));
        assert_eq!(b.row_lineage_id(0), Some(t.rows()[1].id.0));
    }

    #[test]
    fn read_row_clones_in_column_order() {
        let t = sample();
        let b = Batch::from_rows(2, t.rows()).expect("batch");
        let mut row = Vec::new();
        assert!(b.read_row(2, &mut row));
        assert_eq!(row, vec![Value::Int(2), Value::text("row2")]);
        assert!(!b.read_row(9, &mut row));
    }

    #[test]
    fn into_parts_applies_selection() {
        let t = sample();
        let mut b = Batch::from_rows(2, t.rows()).expect("batch");
        b.select(&[0, 2]);
        let (cols, conf, ids) = b.into_parts();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], vec![Value::Int(0), Value::Int(2)]);
        assert_eq!(conf.len(), 2);
        assert_eq!(ids, vec![t.rows()[0].id.0, t.rows()[2].id.0]);
    }

    #[test]
    fn empty_batch_behaves() {
        let b = Batch::empty(3);
        assert_eq!(b.arity(), 3);
        assert!(b.is_empty());
        assert_eq!(b.value(0, 0), None);
    }
}
