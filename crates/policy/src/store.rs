//! The policy store with most-specific-match selection.

use crate::error::PolicyError;
use crate::policy::{ConfidencePolicy, PurposeSpec, SubjectSpec};
use crate::role::{Purpose, PurposeHierarchy, Role, RoleHierarchy};
use crate::Result;

/// A collection of confidence policies plus the role hierarchy used to
/// match them.
///
/// Selection follows "the confidence policy associated with the role of
/// user U, his query purpose and the data U wants to access" (Section 3.2):
/// among applicable policies the most specific wins, where specificity
/// orders by (purpose match, role closeness); ties resolve to the highest
/// threshold (most restrictive).
#[derive(Debug, Clone, Default)]
pub struct PolicyStore {
    policies: Vec<ConfidencePolicy>,
    hierarchy: RoleHierarchy,
    purposes: PurposeHierarchy,
}

impl PolicyStore {
    /// An empty store with a flat hierarchy.
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// A store with a caller-supplied role hierarchy.
    pub fn with_hierarchy(hierarchy: RoleHierarchy) -> Self {
        PolicyStore {
            policies: Vec::new(),
            hierarchy,
            purposes: PurposeHierarchy::new(),
        }
    }

    /// Add a policy.
    pub fn add(&mut self, policy: ConfidencePolicy) {
        self.policies.push(policy);
    }

    /// Borrow the role hierarchy mutably (to add inheritance edges).
    pub fn hierarchy_mut(&mut self) -> &mut RoleHierarchy {
        &mut self.hierarchy
    }

    /// Borrow the role hierarchy (used by persistence).
    pub fn hierarchy(&self) -> &RoleHierarchy {
        &self.hierarchy
    }

    /// Borrow the purpose hierarchy mutably (to declare specialisations).
    pub fn purposes_mut(&mut self) -> &mut PurposeHierarchy {
        &mut self.purposes
    }

    /// Borrow the purpose hierarchy.
    pub fn purposes(&self) -> &PurposeHierarchy {
        &self.purposes
    }

    /// All stored policies.
    pub fn policies(&self) -> &[ConfidencePolicy] {
        &self.policies
    }

    /// The policy that governs `role` querying for `purpose`.
    pub fn select(&self, role: &Role, purpose: &Purpose) -> Result<&ConfidencePolicy> {
        // Specificity: the closest purpose match (exact = distance 0,
        // then generalisations via the purpose hierarchy) beats
        // purpose-any; then the closest role match (exact, then the
        // hierarchy) beats role-any. Ties pick the highest threshold.
        let mut best: Option<(&ConfidencePolicy, (i64, i64))> = None;
        for p in &self.policies {
            let purpose_score: i64 = match &p.purpose {
                PurposeSpec::Purpose(pp) => match self.purposes.distance(purpose, pp) {
                    Some(d) => i64::MAX - d as i64,
                    None => continue,
                },
                PurposeSpec::Any => 0,
            };
            let role_score: i64 = match &p.subject {
                SubjectSpec::Role(pr) => match self.hierarchy.distance(role, pr) {
                    // Closer is better: score decreases with distance but
                    // always beats the Any case.
                    Some(d) => i64::MAX - d as i64,
                    None => continue,
                },
                SubjectSpec::Any => 0,
            };
            let score = (purpose_score, role_score);
            let better = match &best {
                None => true,
                Some((cur, cur_score)) => {
                    score > *cur_score || (score == *cur_score && p.threshold > cur.threshold)
                }
            };
            if better {
                best = Some((p, score));
            }
        }
        best.map(|(p, _)| p)
            .ok_or_else(|| PolicyError::NoApplicablePolicy {
                role: role.name().to_owned(),
                purpose: purpose.name().to_owned(),
            })
    }

    /// Shortcut: just the threshold that governs (role, purpose).
    pub fn threshold_for(&self, role: &Role, purpose: &Purpose) -> Result<f64> {
        Ok(self.select(role, purpose)?.threshold)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    fn paper_store() -> PolicyStore {
        let mut s = PolicyStore::new();
        s.add(ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap());
        s.add(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
        s
    }

    #[test]
    fn exact_match_selects_paper_policies() {
        let s = paper_store();
        assert_eq!(
            s.threshold_for(&"Secretary".into(), &"analysis".into())
                .unwrap(),
            0.05
        );
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"investment".into())
                .unwrap(),
            0.06
        );
    }

    #[test]
    fn missing_policy_is_an_error() {
        let s = paper_store();
        assert!(matches!(
            s.threshold_for(&"Intern".into(), &"analysis".into()),
            Err(PolicyError::NoApplicablePolicy { .. })
        ));
    }

    #[test]
    fn wildcard_fallbacks_apply_in_specificity_order() {
        let mut s = paper_store();
        s.add(ConfidencePolicy::default_floor(0.01).unwrap());
        s.add(ConfidencePolicy::for_role("Manager", 0.03).unwrap());
        s.add(ConfidencePolicy::for_purpose("audit", 0.5).unwrap());
        // Exact beats role-wildcard beats floor.
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"investment".into())
                .unwrap(),
            0.06
        );
        // Manager with unlisted purpose → role-any policy.
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"reporting".into())
                .unwrap(),
            0.03
        );
        // Purpose-specific wildcard beats role-any for that purpose.
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"audit".into()).unwrap(),
            0.5
        );
        // Unknown role and purpose → floor.
        assert_eq!(
            s.threshold_for(&"Intern".into(), &"reporting".into())
                .unwrap(),
            0.01
        );
    }

    #[test]
    fn hierarchy_inherits_policies_from_juniors() {
        let mut s = paper_store();
        s.hierarchy_mut()
            .add_inheritance(&"Director".into(), &"Manager".into())
            .unwrap();
        // Director inherits the Manager investment policy.
        assert_eq!(
            s.threshold_for(&"Director".into(), &"investment".into())
                .unwrap(),
            0.06
        );
        // But an exact Director policy wins over the inherited one.
        s.add(ConfidencePolicy::new("Director", "investment", 0.08).unwrap());
        assert_eq!(
            s.threshold_for(&"Director".into(), &"investment".into())
                .unwrap(),
            0.08
        );
    }

    #[test]
    fn purpose_hierarchy_generalises_policies() {
        let mut s = paper_store();
        s.purposes_mut()
            .add_specialisation(&"due-diligence".into(), &"investment".into())
            .unwrap();
        // A due-diligence query falls under the investment policy.
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"due-diligence".into())
                .unwrap(),
            0.06
        );
        // An exact due-diligence policy wins over the generalisation.
        s.add(ConfidencePolicy::new("Manager", "due-diligence", 0.09).unwrap());
        assert_eq!(
            s.threshold_for(&"Manager".into(), &"due-diligence".into())
                .unwrap(),
            0.09
        );
        // The closest generalisation wins over a farther one.
        let mut s = PolicyStore::new();
        s.purposes_mut()
            .add_specialisation(&"b".into(), &"a".into())
            .unwrap();
        s.purposes_mut()
            .add_specialisation(&"c".into(), &"b".into())
            .unwrap();
        s.add(ConfidencePolicy::new("r", "a", 0.2).unwrap());
        s.add(ConfidencePolicy::new("r", "b", 0.3).unwrap());
        assert_eq!(s.threshold_for(&"r".into(), &"c".into()).unwrap(), 0.3);
    }

    #[test]
    fn ties_resolve_to_most_restrictive() {
        let mut s = PolicyStore::new();
        s.add(ConfidencePolicy::new("R", "p", 0.2).unwrap());
        s.add(ConfidencePolicy::new("R", "p", 0.4).unwrap());
        assert_eq!(s.threshold_for(&"R".into(), &"p".into()).unwrap(), 0.4);
    }
}
