//! Confidence policies — the paper's third key element.
//!
//! A confidence policy is a triple ⟨r, pu, β⟩ (Definition 1): "when a user
//! under a role `r` issues a database query `q` for purpose `pu`, the user
//! is allowed to access the results of `q` only if these results have
//! confidence value higher than `β`". Policies complement conventional
//! RBAC: they apply to *query results*, after evaluation, not to base
//! tuples before it.
//!
//! This crate provides roles (with an RBAC-style seniority hierarchy),
//! purposes, the policy store with most-specific-match selection, and the
//! policy-evaluation step that splits scored results into released and
//! withheld sets.
//!
//! ```
//! use pcqe_policy::{ConfidencePolicy, PolicyStore, Role, Purpose};
//!
//! let mut store = PolicyStore::new();
//! store.add(ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap());
//! store.add(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
//!
//! let beta = store
//!     .threshold_for(&Role::new("Manager"), &Purpose::new("investment"))
//!     .unwrap();
//! assert_eq!(beta, 0.06);
//! ```

pub mod decision;
pub mod error;
pub mod policy;
pub mod role;
pub mod store;

pub use decision::{evaluate_results, PolicyDecision};
pub use error::PolicyError;
pub use policy::{ConfidencePolicy, PurposeSpec, SubjectSpec};
pub use role::{Purpose, PurposeHierarchy, Role, RoleHierarchy};
pub use store::PolicyStore;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PolicyError>;
