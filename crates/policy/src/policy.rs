//! The confidence-policy type (the paper's Definition 1, plus wildcards).

use crate::error::PolicyError;
use crate::role::{Purpose, Role};
use crate::Result;
use std::fmt;

/// The subject a policy applies to: a specific role, or any role.
#[derive(Debug, Clone, PartialEq)]
pub enum SubjectSpec {
    /// Applies to one role (and, through the hierarchy, its seniors).
    Role(Role),
    /// Applies to every role (an organisation-wide floor).
    Any,
}

/// The purpose a policy covers: a specific purpose, or any purpose.
#[derive(Debug, Clone, PartialEq)]
pub enum PurposeSpec {
    /// Applies to one declared purpose.
    Purpose(Purpose),
    /// Applies to every purpose.
    Any,
}

/// A confidence policy ⟨r, pu, β⟩ (Definition 1): results may be released
/// to role `r` querying for purpose `pu` only when their confidence is
/// strictly higher than `β`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidencePolicy {
    /// Who the policy applies to.
    pub subject: SubjectSpec,
    /// Which data-use purpose it covers.
    pub purpose: PurposeSpec,
    /// Minimum confidence (exclusive bound) in `[0, 1]`.
    pub threshold: f64,
}

impl ConfidencePolicy {
    /// Policy for a specific role and purpose, e.g. the paper's
    /// `P2 = ⟨Manager, investment, 0.06⟩`.
    pub fn new(
        role: impl Into<Role>,
        purpose: impl Into<Purpose>,
        threshold: f64,
    ) -> Result<ConfidencePolicy> {
        check_threshold(threshold)?;
        Ok(ConfidencePolicy {
            subject: SubjectSpec::Role(role.into()),
            purpose: PurposeSpec::Purpose(purpose.into()),
            threshold,
        })
    }

    /// Policy for a role, all purposes.
    pub fn for_role(role: impl Into<Role>, threshold: f64) -> Result<ConfidencePolicy> {
        check_threshold(threshold)?;
        Ok(ConfidencePolicy {
            subject: SubjectSpec::Role(role.into()),
            purpose: PurposeSpec::Any,
            threshold,
        })
    }

    /// Policy for a purpose, all roles.
    pub fn for_purpose(purpose: impl Into<Purpose>, threshold: f64) -> Result<ConfidencePolicy> {
        check_threshold(threshold)?;
        Ok(ConfidencePolicy {
            subject: SubjectSpec::Any,
            purpose: PurposeSpec::Purpose(purpose.into()),
            threshold,
        })
    }

    /// Catch-all policy (all roles, all purposes).
    pub fn default_floor(threshold: f64) -> Result<ConfidencePolicy> {
        check_threshold(threshold)?;
        Ok(ConfidencePolicy {
            subject: SubjectSpec::Any,
            purpose: PurposeSpec::Any,
            threshold,
        })
    }

    /// Does a result with this confidence satisfy the policy?
    /// Definition 1 requires confidence strictly *higher than* β.
    pub fn admits(&self, confidence: f64) -> bool {
        confidence > self.threshold
    }
}

fn check_threshold(beta: f64) -> Result<()> {
    if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
        return Err(PolicyError::InvalidThreshold);
    }
    Ok(())
}

impl fmt::Display for ConfidencePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let subject = match &self.subject {
            SubjectSpec::Role(r) => r.name(),
            SubjectSpec::Any => "*",
        };
        let purpose = match &self.purpose {
            PurposeSpec::Purpose(p) => p.name(),
            PurposeSpec::Any => "*",
        };
        write!(f, "⟨{subject}, {purpose}, {}⟩", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policies_construct() {
        let p1 = ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap();
        let p2 = ConfidencePolicy::new("Manager", "investment", 0.06).unwrap();
        assert_eq!(p1.to_string(), "⟨Secretary, analysis, 0.05⟩");
        assert!(p2.threshold > p1.threshold);
    }

    #[test]
    fn admits_is_strict() {
        let p = ConfidencePolicy::new("Manager", "investment", 0.06).unwrap();
        assert!(!p.admits(0.058), "paper: 0.058 is rejected at β=0.06");
        assert!(!p.admits(0.06), "equality does not admit");
        assert!(p.admits(0.065));
    }

    #[test]
    fn thresholds_validated() {
        assert!(ConfidencePolicy::new("r", "p", -0.1).is_err());
        assert!(ConfidencePolicy::new("r", "p", 1.1).is_err());
        assert!(ConfidencePolicy::new("r", "p", f64::NAN).is_err());
        assert!(ConfidencePolicy::default_floor(0.0).is_ok());
    }
}
