//! Roles, purposes, and the RBAC-style role hierarchy.

use crate::error::PolicyError;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A role: "a job function or job title within the organization"
/// (Section 3.2). Matched case-insensitively.
#[derive(Debug, Clone, Eq)]
pub struct Role(String);

impl Role {
    /// Create a role from its name.
    pub fn new(name: impl Into<String>) -> Role {
        Role(name.into())
    }

    /// The role's name as written.
    pub fn name(&self) -> &str {
        &self.0
    }

    fn key(&self) -> String {
        self.0.to_ascii_lowercase()
    }
}

impl PartialEq for Role {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl std::hash::Hash for Role {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Role {
    fn from(s: &str) -> Role {
        Role::new(s)
    }
}

/// A data-usage purpose (`pu` in the paper): why the data is accessed.
/// Matched case-insensitively.
#[derive(Debug, Clone, Eq)]
pub struct Purpose(String);

impl Purpose {
    /// Create a purpose from its name.
    pub fn new(name: impl Into<String>) -> Purpose {
        Purpose(name.into())
    }

    /// The purpose's name as written.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Purpose {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl std::hash::Hash for Purpose {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_ascii_lowercase().hash(state);
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Purpose {
    fn from(s: &str) -> Purpose {
        Purpose::new(s)
    }
}

/// An RBAC-style seniority hierarchy: `junior → senior` edges.
///
/// A policy written for a role also applies to any role that *inherits*
/// it (i.e., any junior of the policy's role takes its own policies; a
/// senior role inherits the policies of its juniors when it has none of
/// its own). The store uses [`RoleHierarchy::distance`] to prefer the
/// closest match.
#[derive(Debug, Clone, Default)]
pub struct RoleHierarchy {
    /// Maps a role key to the keys of the roles it directly inherits from.
    parents: BTreeMap<String, BTreeSet<String>>,
}

impl RoleHierarchy {
    /// An empty hierarchy (every role stands alone).
    pub fn new() -> Self {
        RoleHierarchy::default()
    }

    /// Declare that `senior` inherits from `junior` (e.g. `Manager`
    /// inherits from `Employee`). Rejects edges that would create a cycle.
    pub fn add_inheritance(&mut self, senior: &Role, junior: &Role) -> Result<()> {
        if senior == junior || self.inherits(junior, senior) {
            return Err(PolicyError::HierarchyCycle(senior.name().to_owned()));
        }
        self.parents
            .entry(senior.key())
            .or_default()
            .insert(junior.key());
        Ok(())
    }

    /// Does `role` (transitively) inherit from `ancestor`?
    pub fn inherits(&self, role: &Role, ancestor: &Role) -> bool {
        self.distance_keys(&role.key(), &ancestor.key()).is_some()
    }

    /// Number of inheritance hops from `role` up to `ancestor` (0 when the
    /// two are the same role), or `None` when unrelated.
    pub fn distance(&self, role: &Role, ancestor: &Role) -> Option<usize> {
        self.distance_keys(&role.key(), &ancestor.key())
    }

    /// Every direct inheritance edge as `(senior, junior)` key pairs,
    /// sorted for deterministic output (used by persistence).
    pub fn edges(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .parents
            .iter()
            .flat_map(|(senior, juniors)| juniors.iter().map(move |j| (senior.clone(), j.clone())))
            .collect();
        out.sort();
        out
    }

    fn distance_keys(&self, from: &str, to: &str) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        // BFS over parent edges.
        let mut frontier: Vec<&str> = vec![from];
        let mut seen: BTreeSet<&str> = frontier.iter().copied().collect();
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for node in frontier {
                if let Some(ps) = self.parents.get(node) {
                    for p in ps {
                        if p == to {
                            return Some(depth);
                        }
                        if seen.insert(p) {
                            next.push(p.as_str());
                        }
                    }
                }
            }
            frontier = next;
        }
        None
    }
}

/// A purpose specialisation tree: `specialised → general` edges.
///
/// Privacy-policy practice arranges purposes in trees ("investment"
/// specialises "business-use"); a confidence policy written for a general
/// purpose then also covers queries issued for its specialisations, unless
/// a more specific policy exists. Mirrors [`RoleHierarchy`].
#[derive(Debug, Clone, Default)]
pub struct PurposeHierarchy {
    /// Maps a purpose key to the keys of the purposes it specialises.
    parents: BTreeMap<String, BTreeSet<String>>,
}

impl PurposeHierarchy {
    /// An empty hierarchy (every purpose stands alone).
    pub fn new() -> Self {
        PurposeHierarchy::default()
    }

    /// Declare that `specialised` is a special case of `general`
    /// (e.g. `investment` specialises `business-use`). Rejects cycles.
    pub fn add_specialisation(&mut self, specialised: &Purpose, general: &Purpose) -> Result<()> {
        if specialised == general || self.specialises(general, specialised) {
            return Err(PolicyError::HierarchyCycle(specialised.name().to_owned()));
        }
        self.parents
            .entry(specialised.name().to_ascii_lowercase())
            .or_default()
            .insert(general.name().to_ascii_lowercase());
        Ok(())
    }

    /// Does `purpose` (transitively) specialise `general`?
    pub fn specialises(&self, purpose: &Purpose, general: &Purpose) -> bool {
        self.distance(purpose, general).is_some()
    }

    /// Hops from `purpose` up to `general` (0 when identical), `None` when
    /// unrelated.
    pub fn distance(&self, purpose: &Purpose, general: &Purpose) -> Option<usize> {
        let from = purpose.name().to_ascii_lowercase();
        let to = general.name().to_ascii_lowercase();
        if from == to {
            return Some(0);
        }
        let mut frontier = vec![from];
        let mut seen: BTreeSet<String> = frontier.iter().cloned().collect();
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for node in frontier {
                if let Some(ps) = self.parents.get(&node) {
                    for p in ps {
                        if *p == to {
                            return Some(depth);
                        }
                        if seen.insert(p.clone()) {
                            next.push(p.clone());
                        }
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// Every direct specialisation edge as `(specialised, general)` pairs,
    /// sorted (used by persistence and debugging).
    pub fn edges(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .parents
            .iter()
            .flat_map(|(s, gs)| gs.iter().map(move |g| (s.clone(), g.clone())))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_match_case_insensitively() {
        assert_eq!(Role::new("Manager"), Role::new("manager"));
        assert_eq!(Purpose::new("ANALYSIS"), Purpose::new("analysis"));
    }

    #[test]
    fn hierarchy_distances() {
        let mut h = RoleHierarchy::new();
        h.add_inheritance(&"Manager".into(), &"Employee".into())
            .unwrap();
        h.add_inheritance(&"Director".into(), &"Manager".into())
            .unwrap();
        assert_eq!(h.distance(&"Manager".into(), &"Manager".into()), Some(0));
        assert_eq!(h.distance(&"Manager".into(), &"Employee".into()), Some(1));
        assert_eq!(h.distance(&"Director".into(), &"Employee".into()), Some(2));
        assert_eq!(h.distance(&"Employee".into(), &"Manager".into()), None);
    }

    #[test]
    fn cycles_rejected() {
        let mut h = RoleHierarchy::new();
        h.add_inheritance(&"B".into(), &"A".into()).unwrap();
        assert!(matches!(
            h.add_inheritance(&"A".into(), &"B".into()),
            Err(PolicyError::HierarchyCycle(_))
        ));
        assert!(h.add_inheritance(&"A".into(), &"A".into()).is_err());
    }

    #[test]
    fn purpose_specialisation_distances() {
        let mut h = PurposeHierarchy::new();
        h.add_specialisation(&"investment".into(), &"business-use".into())
            .unwrap();
        h.add_specialisation(&"due-diligence".into(), &"investment".into())
            .unwrap();
        assert_eq!(
            h.distance(&"investment".into(), &"business-use".into()),
            Some(1)
        );
        assert_eq!(
            h.distance(&"due-diligence".into(), &"business-use".into()),
            Some(2)
        );
        assert_eq!(
            h.distance(&"business-use".into(), &"investment".into()),
            None
        );
        assert!(h
            .add_specialisation(&"business-use".into(), &"due-diligence".into())
            .is_err());
        assert_eq!(h.edges().len(), 2);
    }

    #[test]
    fn diamond_inheritance_takes_shortest_path() {
        let mut h = RoleHierarchy::new();
        h.add_inheritance(&"Top".into(), &"L".into()).unwrap();
        h.add_inheritance(&"Top".into(), &"R".into()).unwrap();
        h.add_inheritance(&"L".into(), &"Base".into()).unwrap();
        h.add_inheritance(&"R".into(), &"Mid".into()).unwrap();
        h.add_inheritance(&"Mid".into(), &"Base".into()).unwrap();
        assert_eq!(h.distance(&"Top".into(), &"Base".into()), Some(2));
    }
}
