//! Policy evaluation over scored results.

use crate::policy::ConfidencePolicy;

/// The outcome of checking scored results against one policy: which result
/// indexes pass (are released) and which are withheld.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// The governing threshold β.
    pub threshold: f64,
    /// Indexes of results whose confidence is strictly above β.
    pub released: Vec<usize>,
    /// Indexes of results filtered out by the policy.
    pub withheld: Vec<usize>,
}

impl PolicyDecision {
    /// Fraction of results released (the paper's θ′). Zero when there are
    /// no results at all.
    pub fn released_fraction(&self) -> f64 {
        let n = self.released.len() + self.withheld.len();
        if n == 0 {
            0.0
        } else {
            self.released.len() as f64 / n as f64
        }
    }

    /// True when at least `fraction` (the user's `perc`/θ) of the results
    /// were released.
    pub fn satisfies_fraction(&self, fraction: f64) -> bool {
        self.released_fraction() >= fraction
    }
}

/// Split a slice of result confidences into released/withheld index sets
/// according to `policy` — the policy-evaluation component of Figure 1.
pub fn evaluate_results(policy: &ConfidencePolicy, confidences: &[f64]) -> PolicyDecision {
    let mut released = Vec::new();
    let mut withheld = Vec::new();
    for (i, &c) in confidences.iter().enumerate() {
        if policy.admits(c) {
            released.push(i);
        } else {
            withheld.push(i);
        }
    }
    PolicyDecision {
        threshold: policy.threshold,
        released,
        withheld,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn paper_manager_sees_nothing() {
        let p2 = ConfidencePolicy::new("Manager", "investment", 0.06).unwrap();
        let d = evaluate_results(&p2, &[0.058]);
        assert!(d.released.is_empty());
        assert_eq!(d.withheld, vec![0]);
        assert_eq!(d.released_fraction(), 0.0);
    }

    #[test]
    fn paper_secretary_sees_the_result() {
        let p1 = ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap();
        let d = evaluate_results(&p1, &[0.058]);
        assert_eq!(d.released, vec![0]);
        assert!(d.satisfies_fraction(1.0));
    }

    #[test]
    fn fractions_and_mixed_results() {
        let p = ConfidencePolicy::default_floor(0.5).unwrap();
        let d = evaluate_results(&p, &[0.2, 0.6, 0.7, 0.5]);
        assert_eq!(d.released, vec![1, 2]);
        assert_eq!(d.withheld, vec![0, 3]);
        assert!((d.released_fraction() - 0.5).abs() < 1e-12);
        assert!(d.satisfies_fraction(0.5));
        assert!(!d.satisfies_fraction(0.75));
    }

    #[test]
    fn empty_results() {
        let p = ConfidencePolicy::default_floor(0.5).unwrap();
        let d = evaluate_results(&p, &[]);
        assert_eq!(d.released_fraction(), 0.0);
        assert!(d.satisfies_fraction(0.0));
    }
}
