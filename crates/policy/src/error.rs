//! Error type for policy definition and evaluation.

use std::fmt;

/// Errors raised by policy construction and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A threshold was outside `[0, 1]` or not finite. The offending
    /// value is deliberately not carried: β is policy-internal, and a
    /// typed error's `Display` output travels to clients (PCQE-F002).
    InvalidThreshold,
    /// No policy (and no default) applies to a (role, purpose) pair.
    NoApplicablePolicy {
        /// The requesting role.
        role: String,
        /// The stated purpose.
        purpose: String,
    },
    /// A role hierarchy edge would create a cycle.
    HierarchyCycle(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::InvalidThreshold => {
                write!(f, "confidence threshold outside [0, 1] or not finite")
            }
            PolicyError::NoApplicablePolicy { role, purpose } => {
                write!(
                    f,
                    "no confidence policy applies to role `{role}` with purpose `{purpose}`"
                )
            }
            PolicyError::HierarchyCycle(r) => {
                write!(f, "adding role `{r}` would create a hierarchy cycle")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PolicyError::NoApplicablePolicy {
            role: "Manager".into(),
            purpose: "investment".into(),
        };
        assert!(e.to_string().contains("Manager"));
        assert!(e.to_string().contains("investment"));
    }
}
