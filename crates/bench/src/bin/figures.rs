//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! figures [fig11a] [fig11b] [fig11c] [all] [--full] [--seed N] [--json PATH] [--check-params]
//! ```
//!
//! * `fig11a` — Figure 11(a) and 11(d): heuristic pruning configurations,
//!   with and without the greedy upper bound.
//! * `fig11b` — Figure 11(b) and 11(e): one- vs two-phase greedy.
//! * `fig11c` — Figure 11(c) and 11(f): scalability of all three solvers.
//! * `all` (default) — everything above.
//! * `--full` — extend the sweeps to the paper's largest sizes (50K/100K);
//!   expect several minutes for the faithful O(k·l1) greedy.
//! * `--json PATH` — also dump all series as JSON. The document embeds a
//!   `metrics` block: the run's `pcqe-obs` snapshot (per-figure node and
//!   timing tallies).
//! * `--check-params` — print the Table 4 parameter grid as encoded.

use pcqe_bench::report::{render_fig11a, render_fig11be, render_fig11cf, FigureReport};
use pcqe_bench::{run_fig11a, run_fig11be, run_fig11cf};
use pcqe_workload::WorkloadParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut full = false;
    let mut json_path: Option<String> = None;
    let mut which: Vec<&str> = Vec::new();
    let mut check_params = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => return usage("--seed needs an integer"),
                };
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(p.clone()),
                    None => return usage("--json needs a path"),
                }
            }
            "--full" => full = true,
            "--check-params" => check_params = true,
            "fig11a" | "fig11d" => which.push("fig11a"),
            "fig11b" | "fig11e" => which.push("fig11b"),
            "fig11c" | "fig11f" => which.push("fig11c"),
            "all" => which.extend(["fig11a", "fig11b", "fig11c"]),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if which.is_empty() && !check_params {
        which.extend(["fig11a", "fig11b", "fig11c"]);
    }

    if check_params {
        print_table4();
    }

    let mut report = FigureReport::default();
    // Observability: tally what each sweep did so the JSON report embeds
    // a `metrics` block alongside the figure series.
    let recorder = pcqe_obs::Recorder::new();

    if which.contains(&"fig11a") {
        println!("== Figure 11(a): heuristics, no greedy bound (10 base tuples) ==");
        report.fig11a = run_fig11a(false, seed);
        print!("{}", render_fig11a(&report.fig11a, "Figure 11(a)"));
        println!();
        println!("== Figure 11(d): heuristics, greedy bound ==");
        report.fig11d = run_fig11a(true, seed);
        print!("{}", render_fig11a(&report.fig11d, "Figure 11(d)"));
        println!();
        for (name, rows) in [("fig11a", &report.fig11a), ("fig11d", &report.fig11d)] {
            for r in rows {
                recorder.counter_add(&format!("bench.{name}.nodes"), r.nodes);
                recorder.histogram_record(&format!("bench.{name}.seconds"), r.seconds);
            }
            recorder.counter_add(&format!("bench.{name}.configs"), rows.len() as u64);
        }
    }

    if which.contains(&"fig11b") {
        let sizes: &[usize] = if full {
            &[1_000, 3_000, 5_000, 7_000, 9_000]
        } else {
            &[1_000, 3_000, 5_000]
        };
        println!("== Figure 11(b)+(e): greedy phases, sizes {sizes:?} ==");
        report.fig11be = run_fig11be(sizes, seed);
        print!("{}", render_fig11be(&report.fig11be));
        println!();
        for r in &report.fig11be {
            recorder.counter_add("bench.fig11be.rows", 1);
            recorder.histogram_record("bench.fig11be.one_phase_seconds", r.one_phase_seconds);
            recorder.histogram_record("bench.fig11be.two_phase_seconds", r.two_phase_seconds);
        }
    }

    if which.contains(&"fig11c") {
        let sizes: Vec<usize> = if full {
            vec![10, 1_000, 5_000, 10_000, 50_000, 100_000]
        } else {
            vec![10, 1_000, 5_000, 10_000]
        };
        println!("== Figure 11(c)+(f): scalability, sizes {sizes:?} ==");
        report.fig11cf = run_fig11cf(&sizes, 100, seed);
        print!("{}", render_fig11cf(&report.fig11cf));
        println!();
        for r in &report.fig11cf {
            match r.seconds {
                Some(sec) => recorder.histogram_record("bench.fig11cf.seconds", sec),
                None => recorder.counter_add("bench.fig11cf.skipped", 1),
            }
        }
    }

    report.metrics = Some(recorder.snapshot());

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn print_table4() {
    println!("== Table 4: parameters and their settings (defaults in bold) ==");
    let d = WorkloadParams::default();
    println!(
        "data size:                10, 1K, 10K, ..., 100K   (default {})",
        d.data_size
    );
    println!(
        "base tuples per result:   5, 10, 25, 50, 100        (default {})",
        d.bases_per_result
    );
    println!("confidence increment δ:   {}", d.delta);
    println!("required results θ:       {}%", d.theta * 100.0);
    println!("confidence level β:       {}", d.beta);
    println!();
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: figures [fig11a] [fig11b] [fig11c] [all] [--full] [--seed N] [--json PATH] [--check-params]"
    );
    ExitCode::FAILURE
}
