//! Text and JSON rendering of figure data.
//!
//! JSON is emitted by a small hand-rolled writer (no serde: the crate
//! builds offline with zero external dependencies). The document shape is
//! stable: one key per figure, each an array of row objects.

use crate::experiments::{Fig11aRow, Fig11beRow, Fig11cfRow};
use std::fmt::Write as _;

/// Everything the `figures` binary produced, serialisable as one JSON
/// document.
#[derive(Debug, Default)]
pub struct FigureReport {
    /// Figure 11(a) rows (no greedy bound), if run.
    pub fig11a: Vec<Fig11aRow>,
    /// Figure 11(d) rows (greedy bound), if run.
    pub fig11d: Vec<Fig11aRow>,
    /// Figure 11(b)/(e) rows, if run.
    pub fig11be: Vec<Fig11beRow>,
    /// Figure 11(c)/(f) rows, if run.
    pub fig11cf: Vec<Fig11cfRow>,
    /// Observability snapshot of the run (row/timing tallies recorded by
    /// the `figures` binary), if metrics were captured.
    pub metrics: Option<pcqe_obs::MetricsSnapshot>,
}

/// Escape a string for inclusion in a JSON document.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite float (JSON has no NaN/Inf; those become `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_owned(), json_f64)
}

impl Fig11aRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"config\":{},\"greedy_bound\":{},\"seconds\":{},\"cost\":{},\"nodes\":{}}}",
            json_string(&self.config),
            self.greedy_bound,
            json_f64(self.seconds),
            json_f64(self.cost),
            self.nodes
        )
    }
}

impl Fig11beRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"data_size\":{},\"one_phase_seconds\":{},\"one_phase_cost\":{},\
             \"two_phase_seconds\":{},\"two_phase_cost\":{}}}",
            self.data_size,
            json_f64(self.one_phase_seconds),
            json_f64(self.one_phase_cost),
            json_f64(self.two_phase_seconds),
            json_f64(self.two_phase_cost)
        )
    }
}

impl Fig11cfRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"data_size\":{},\"algorithm\":{},\"seconds\":{},\"cost\":{}}}",
            self.data_size,
            json_string(&self.algorithm),
            json_opt_f64(self.seconds),
            json_opt_f64(self.cost)
        )
    }
}

fn json_array(rows: &[String]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n    ");
        }
        s.push_str(r);
    }
    s.push(']');
    s
}

/// Embed a pre-rendered multi-line JSON document at one indent level:
/// every line after the first is shifted right by two spaces so the
/// nested object lines up with the surrounding pretty-printing.
fn indent_embedded(doc: &str) -> String {
    let trimmed = doc.trim_end();
    let mut out = String::with_capacity(trimmed.len());
    for (i, line) in trimmed.lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out
}

impl FigureReport {
    /// Serialise the whole report as pretty-printed JSON.
    ///
    /// The `"metrics"` member embeds the `pcqe-obs` JSON export of the
    /// run's [`pcqe_obs::MetricsSnapshot`] (an empty snapshot when none
    /// was captured), so the document shape is stable either way.
    pub fn to_json(&self) -> String {
        let section = |rows: &[String]| json_array(rows);
        let snapshot = self.metrics.clone().unwrap_or_default();
        format!(
            "{{\n  \"fig11a\": {},\n  \"fig11d\": {},\n  \"fig11be\": {},\n  \"fig11cf\": {},\n  \"metrics\": {}\n}}\n",
            section(
                &self
                    .fig11a
                    .iter()
                    .map(Fig11aRow::to_json)
                    .collect::<Vec<_>>()
            ),
            section(
                &self
                    .fig11d
                    .iter()
                    .map(Fig11aRow::to_json)
                    .collect::<Vec<_>>()
            ),
            section(
                &self
                    .fig11be
                    .iter()
                    .map(Fig11beRow::to_json)
                    .collect::<Vec<_>>()
            ),
            section(
                &self
                    .fig11cf
                    .iter()
                    .map(Fig11cfRow::to_json)
                    .collect::<Vec<_>>()
            ),
            indent_embedded(&pcqe_obs::export::to_json(&snapshot)),
        )
    }
}

/// Render Figure 11(a)/(d) as an aligned text table.
pub fn render_fig11a(rows: &[Fig11aRow], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<8} {:>12} {:>14} {:>12}",
        "config", "seconds", "nodes", "cost"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>12.6} {:>14} {:>12.2}",
            r.config, r.seconds, r.nodes, r.cost
        );
    }
    if let (Some(naive), Some(all)) = (
        rows.iter().find(|r| r.config == "Naive"),
        rows.iter().find(|r| r.config == "All"),
    ) {
        if all.seconds > 0.0 {
            let _ = writeln!(
                s,
                "speedup All vs Naive: {:.1}x (nodes {:.1}x)",
                naive.seconds / all.seconds,
                naive.nodes as f64 / all.nodes.max(1) as f64
            );
        }
    }
    s
}

/// Render Figure 11(b)+(e) as an aligned text table.
pub fn render_fig11be(rows: &[Fig11beRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 11(b)+(e): one-phase vs two-phase greedy");
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "size", "1ph sec", "2ph sec", "1ph cost", "2ph cost", "saved"
    );
    for r in rows {
        let saved = if r.one_phase_cost > 0.0 {
            100.0 * (1.0 - r.two_phase_cost / r.one_phase_cost)
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "{:>8} {:>12.4} {:>12.4} {:>14.1} {:>14.1} {:>9.1}%",
            r.data_size,
            r.one_phase_seconds,
            r.two_phase_seconds,
            r.one_phase_cost,
            r.two_phase_cost,
            saved
        );
    }
    s
}

/// Render Figure 11(c)+(f) as an aligned text table.
pub fn render_fig11cf(rows: &[Fig11cfRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 11(c)+(f): scalability of the three algorithms");
    let _ = writeln!(
        s,
        "{:>8} {:<20} {:>12} {:>14}",
        "size", "algorithm", "seconds", "cost"
    );
    for r in rows {
        match (r.seconds, r.cost) {
            (Some(sec), Some(cost)) => {
                let _ = writeln!(
                    s,
                    "{:>8} {:<20} {:>12.4} {:>14.1}",
                    r.data_size, r.algorithm, sec, cost
                );
            }
            _ => {
                let _ = writeln!(
                    s,
                    "{:>8} {:<20} {:>12} {:>14}",
                    r.data_size, r.algorithm, "-", "-"
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        let rows = vec![
            Fig11aRow {
                config: "Naive".into(),
                greedy_bound: false,
                seconds: 1.0,
                cost: 10.0,
                nodes: 100,
            },
            Fig11aRow {
                config: "All".into(),
                greedy_bound: false,
                seconds: 0.1,
                cost: 10.0,
                nodes: 10,
            },
        ];
        let text = render_fig11a(&rows, "Figure 11(a)");
        assert!(text.contains("speedup All vs Naive: 10.0x"));

        let be = vec![Fig11beRow {
            data_size: 1000,
            one_phase_seconds: 0.5,
            one_phase_cost: 100.0,
            two_phase_seconds: 0.6,
            two_phase_cost: 70.0,
        }];
        let text = render_fig11be(&be);
        assert!(text.contains("30.0%"));

        let cf = vec![Fig11cfRow {
            data_size: 10,
            algorithm: "Greedy".into(),
            seconds: Some(0.01),
            cost: Some(5.0),
        }];
        assert!(render_fig11cf(&cf).contains("Greedy"));
    }

    #[test]
    fn report_serialises_to_json() {
        let mut report = FigureReport::default();
        report.fig11cf.push(Fig11cfRow {
            data_size: 10,
            algorithm: "Gre\"edy".into(),
            seconds: Some(0.25),
            cost: None,
        });
        let json = report.to_json();
        assert!(json.contains("\"fig11cf\""));
        assert!(json.contains("\"Gre\\\"edy\""));
        assert!(json.contains("\"seconds\":0.25"));
        assert!(json.contains("\"cost\":null"));
        // Even without captured metrics the document embeds an (empty)
        // metrics block, so the shape is stable.
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"counters\""));
    }

    #[test]
    fn captured_metrics_are_embedded_in_the_report() {
        let recorder = pcqe_obs::Recorder::new();
        recorder.counter_add("bench.fig11a.nodes", 110);
        recorder.histogram_record("bench.fig11a.seconds", 1.1);
        let report = FigureReport {
            metrics: Some(recorder.snapshot()),
            ..FigureReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"bench.fig11a.nodes\": 110"), "{json}");
        assert!(json.contains("\"bench.fig11a.seconds\""), "{json}");
        // The embedded document is re-indented, not left at column zero.
        assert!(json.contains("\n    \"counters\""), "{json}");
    }

    #[test]
    fn json_floats_round_trip_and_specials_are_null() {
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\nb\\\"c"), "\"a\\nb\\\\\\\"c\"");
    }
}
