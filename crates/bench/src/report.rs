//! Text and JSON rendering of figure data.

use crate::experiments::{Fig11aRow, Fig11beRow, Fig11cfRow};
use serde::Serialize;
use std::fmt::Write as _;

/// Everything the `figures` binary produced, serialisable as one JSON
/// document.
#[derive(Debug, Default, Serialize)]
pub struct FigureReport {
    /// Figure 11(a) rows (no greedy bound), if run.
    pub fig11a: Vec<Fig11aRow>,
    /// Figure 11(d) rows (greedy bound), if run.
    pub fig11d: Vec<Fig11aRow>,
    /// Figure 11(b)/(e) rows, if run.
    pub fig11be: Vec<Fig11beRow>,
    /// Figure 11(c)/(f) rows, if run.
    pub fig11cf: Vec<Fig11cfRow>,
}

/// Render Figure 11(a)/(d) as an aligned text table.
pub fn render_fig11a(rows: &[Fig11aRow], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{:<8} {:>12} {:>14} {:>12}", "config", "seconds", "nodes", "cost");
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>12.6} {:>14} {:>12.2}",
            r.config, r.seconds, r.nodes, r.cost
        );
    }
    if let (Some(naive), Some(all)) = (
        rows.iter().find(|r| r.config == "Naive"),
        rows.iter().find(|r| r.config == "All"),
    ) {
        if all.seconds > 0.0 {
            let _ = writeln!(
                s,
                "speedup All vs Naive: {:.1}x (nodes {:.1}x)",
                naive.seconds / all.seconds,
                naive.nodes as f64 / all.nodes.max(1) as f64
            );
        }
    }
    s
}

/// Render Figure 11(b)+(e) as an aligned text table.
pub fn render_fig11be(rows: &[Fig11beRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 11(b)+(e): one-phase vs two-phase greedy");
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "size", "1ph sec", "2ph sec", "1ph cost", "2ph cost", "saved"
    );
    for r in rows {
        let saved = if r.one_phase_cost > 0.0 {
            100.0 * (1.0 - r.two_phase_cost / r.one_phase_cost)
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "{:>8} {:>12.4} {:>12.4} {:>14.1} {:>14.1} {:>9.1}%",
            r.data_size,
            r.one_phase_seconds,
            r.two_phase_seconds,
            r.one_phase_cost,
            r.two_phase_cost,
            saved
        );
    }
    s
}

/// Render Figure 11(c)+(f) as an aligned text table.
pub fn render_fig11cf(rows: &[Fig11cfRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 11(c)+(f): scalability of the three algorithms");
    let _ = writeln!(
        s,
        "{:>8} {:<20} {:>12} {:>14}",
        "size", "algorithm", "seconds", "cost"
    );
    for r in rows {
        match (r.seconds, r.cost) {
            (Some(sec), Some(cost)) => {
                let _ = writeln!(
                    s,
                    "{:>8} {:<20} {:>12.4} {:>14.1}",
                    r.data_size, r.algorithm, sec, cost
                );
            }
            _ => {
                let _ = writeln!(
                    s,
                    "{:>8} {:<20} {:>12} {:>14}",
                    r.data_size, r.algorithm, "-", "-"
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        let rows = vec![
            Fig11aRow {
                config: "Naive".into(),
                greedy_bound: false,
                seconds: 1.0,
                cost: 10.0,
                nodes: 100,
            },
            Fig11aRow {
                config: "All".into(),
                greedy_bound: false,
                seconds: 0.1,
                cost: 10.0,
                nodes: 10,
            },
        ];
        let text = render_fig11a(&rows, "Figure 11(a)");
        assert!(text.contains("speedup All vs Naive: 10.0x"));

        let be = vec![Fig11beRow {
            data_size: 1000,
            one_phase_seconds: 0.5,
            one_phase_cost: 100.0,
            two_phase_seconds: 0.6,
            two_phase_cost: 70.0,
        }];
        let text = render_fig11be(&be);
        assert!(text.contains("30.0%"));

        let cf = vec![Fig11cfRow {
            data_size: 10,
            algorithm: "Greedy".into(),
            seconds: Some(0.01),
            cost: Some(5.0),
        }];
        assert!(render_fig11cf(&cf).contains("Greedy"));
    }

    #[test]
    fn report_serialises_to_json() {
        let report = FigureReport::default();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("fig11cf"));
    }
}
