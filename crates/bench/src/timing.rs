//! A minimal std-only timing harness (the crate's former Criterion
//! dependency is gone so the whole repository builds offline).
//!
//! Each benchmark runs a warm-up iteration, then `samples` timed
//! iterations, and reports best/median/mean wall-clock seconds. `best` is
//! the least-noisy statistic on a shared machine and is what the sweep
//! comparisons use; median and mean are printed for context.

use std::hint::black_box;
use std::time::Instant;

/// The timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label (`group/name`).
    pub label: String,
    /// Fastest observed iteration, in seconds.
    pub best: f64,
    /// Median iteration, in seconds.
    pub median: f64,
    /// Mean iteration, in seconds.
    pub mean: f64,
    /// Number of timed iterations.
    pub samples: u32,
}

impl Sample {
    /// Render as one aligned report row.
    pub fn row(&self) -> String {
        format!(
            "{:<44} best {:>11.6}s  median {:>11.6}s  mean {:>11.6}s  (n={})",
            self.label, self.best, self.median, self.mean, self.samples
        )
    }
}

/// Time `f` over `samples` iterations (plus one untimed warm-up) and
/// print the summary row. The closure's result is passed through
/// [`black_box`] so the optimiser cannot discard the work.
pub fn bench<T>(label: &str, samples: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(samples > 0, "need at least one sample");
    black_box(f()); // warm-up: page in code and data
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let sample = Sample {
        label: label.to_owned(),
        best: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<f64>() / times.len() as f64,
        samples,
    };
    println!("{}", sample.row());
    sample
}

/// Print a group heading, mirroring the old Criterion group names so the
/// sweep output stays diffable against earlier runs.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_statistics() {
        let s = bench("test/noop", 5, || 2 + 2);
        assert_eq!(s.samples, 5);
        assert!(s.best <= s.median && s.median >= 0.0);
        assert!(s.mean >= s.best);
        assert!(s.row().contains("test/noop"));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        bench("test/zero", 0, || ());
    }
}
