//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 5, Figure 11(a)–(f), Table 4).
//!
//! The [`experiments`] module exposes one runner per figure; the
//! `figures` binary drives them and prints the same rows/series the paper
//! reports, and the std-only timing benches in `benches/` (see
//! [`timing`]) measure the same code paths.
//!
//! Absolute numbers will not match a 2009 Core 2 Duo; the *shapes* are
//! what this harness reproduces: which algorithm wins at which scale, the
//! speedup from the pruning heuristics, and the cost gap between the
//! greedy variants and the exact optimum.

pub mod experiments;
pub mod report;
pub mod timing;

pub use experiments::{run_fig11a, run_fig11be, run_fig11cf, Fig11aRow, Fig11beRow, Fig11cfRow};
