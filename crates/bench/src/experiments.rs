//! Figure runners.

use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_core::problem::ProblemInstance;
use pcqe_workload::{generate, WorkloadParams};
use std::time::{Duration, Instant};

/// One bar of Figure 11(a)/(d): a pruning configuration, its response
/// time, solution cost and node count.
#[derive(Debug, Clone)]
pub struct Fig11aRow {
    /// Configuration label (Naive, H1…H4, All).
    pub config: String,
    /// Whether the greedy solution seeded the upper bound (Figure 11(d)).
    pub greedy_bound: bool,
    /// Response time in seconds.
    pub seconds: f64,
    /// Minimum cost found (identical across configs — all are exact).
    pub cost: f64,
    /// Search nodes visited.
    pub nodes: u64,
}

/// Run Figure 11(a) (no greedy bound) or 11(d) (greedy bound): the
/// heuristic algorithm under each pruning configuration on the 10-tuple
/// micro-workload.
pub fn run_fig11a(greedy_bound: bool, seed: u64) -> Vec<Fig11aRow> {
    let params = WorkloadParams::fig11a().with_seed(seed);
    let problem = generate(&params).expect("fig11a workload is valid");
    run_fig11a_on(&problem, greedy_bound)
}

/// [`run_fig11a`] on a caller-supplied problem (used by tests and
/// ablations with smaller instances).
pub fn run_fig11a_on(problem: &ProblemInstance, greedy_bound: bool) -> Vec<Fig11aRow> {
    let seed_solution = greedy_bound.then(|| {
        greedy::solve(problem, &GreedyOptions::default())
            .expect("fig11a workload is feasible")
            .solution
    });
    let configs: Vec<(String, HeuristicOptions)> = vec![
        ("Naive".into(), HeuristicOptions::naive()),
        ("H1".into(), HeuristicOptions::only(1)),
        ("H2".into(), HeuristicOptions::only(2)),
        ("H3".into(), HeuristicOptions::only(3)),
        ("H4".into(), HeuristicOptions::only(4)),
        ("All".into(), HeuristicOptions::all()),
    ];
    configs
        .into_iter()
        .map(|(label, mut opts)| {
            opts.seed = seed_solution.clone();
            let start = Instant::now();
            let out = heuristic::solve(problem, &opts).expect("feasible");
            let seconds = start.elapsed().as_secs_f64();
            Fig11aRow {
                config: label,
                greedy_bound,
                seconds,
                cost: out.solution.cost,
                nodes: out.stats.nodes,
            }
        })
        .collect()
}

/// One point of Figure 11(b)/(e): the one- and two-phase greedy variants
/// at a given data size.
#[derive(Debug, Clone)]
pub struct Fig11beRow {
    /// Data size (number of base tuples).
    pub data_size: usize,
    /// One-phase response time (s) and cost.
    pub one_phase_seconds: f64,
    /// One-phase solution cost.
    pub one_phase_cost: f64,
    /// Two-phase response time (s) and cost.
    pub two_phase_seconds: f64,
    /// Two-phase solution cost.
    pub two_phase_cost: f64,
}

/// Run Figure 11(b) (response time) and 11(e) (cost) in one sweep.
pub fn run_fig11be(sizes: &[usize], seed: u64) -> Vec<Fig11beRow> {
    sizes
        .iter()
        .map(|&data_size| {
            let params = WorkloadParams {
                data_size,
                ..WorkloadParams::default()
            }
            .with_seed(seed);
            let problem = generate(&params).expect("workload is valid");
            let (one_secs, one) =
                timed(|| greedy::solve(&problem, &GreedyOptions::one_phase()).expect("feasible"));
            let (two_secs, two) =
                timed(|| greedy::solve(&problem, &GreedyOptions::default()).expect("feasible"));
            Fig11beRow {
                data_size,
                one_phase_seconds: one_secs,
                one_phase_cost: one.solution.cost,
                two_phase_seconds: two_secs,
                two_phase_cost: two.solution.cost,
            }
        })
        .collect()
}

/// One point of Figure 11(c)/(f): one algorithm at one data size.
#[derive(Debug, Clone)]
pub struct Fig11cfRow {
    /// Data size (number of base tuples).
    pub data_size: usize,
    /// Algorithm label (Heuristic, Greedy, Divide-and-Conquer).
    pub algorithm: String,
    /// Response time in seconds; `None` when the algorithm was skipped at
    /// this size (heuristic beyond its tractable range).
    pub seconds: Option<f64>,
    /// Solution cost.
    pub cost: Option<f64>,
}

/// Run the Figure 11(c)/(f) scalability sweep: response time and minimum
/// cost for all three algorithms across data sizes. The heuristic runs
/// only up to `heuristic_max` base tuples (the paper, too, ran it only on
/// "very small datasets (less than one hundred)").
pub fn run_fig11cf(sizes: &[usize], heuristic_max: usize, seed: u64) -> Vec<Fig11cfRow> {
    let mut rows = Vec::new();
    for &data_size in sizes {
        let params = WorkloadParams::scalability_point(data_size).with_seed(seed);
        let problem = generate(&params).expect("workload is valid");

        if data_size <= heuristic_max {
            let seed_sol = greedy::solve(&problem, &GreedyOptions::default())
                .expect("feasible")
                .solution;
            let opts = HeuristicOptions {
                node_limit: Some(50_000_000),
                time_limit: Some(Duration::from_secs(120)),
                ..HeuristicOptions::all().with_seed(seed_sol)
            };
            let (secs, out) = timed(|| heuristic::solve(&problem, &opts).expect("feasible"));
            rows.push(Fig11cfRow {
                data_size,
                algorithm: "Heuristic".into(),
                seconds: Some(secs),
                cost: Some(out.solution.cost),
            });
        } else {
            rows.push(Fig11cfRow {
                data_size,
                algorithm: "Heuristic".into(),
                seconds: None,
                cost: None,
            });
        }

        let (g_secs, g) =
            timed(|| greedy::solve(&problem, &GreedyOptions::default()).expect("feasible"));
        rows.push(Fig11cfRow {
            data_size,
            algorithm: "Greedy".into(),
            seconds: Some(g_secs),
            cost: Some(g.solution.cost),
        });

        let (d_secs, d) = timed(|| dnc::solve(&problem, &DncOptions::default()).expect("feasible"));
        rows.push(Fig11cfRow {
            data_size,
            algorithm: "Divide-and-Conquer".into(),
            seconds: Some(d_secs),
            cost: Some(d.solution.cost),
        });
    }
    rows
}

/// Generate the default workload for a given size (shared by benches).
pub fn workload(data_size: usize, seed: u64) -> ProblemInstance {
    generate(&WorkloadParams::scalability_point(data_size).with_seed(seed))
        .expect("workload is valid")
}

fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11d_all_configs_agree_on_cost() {
        // A scaled-down fig11a instance (7 bases) keeps the Naive config
        // fast in debug builds; the full 10-tuple sweep is the `figures`
        // binary's job.
        let params = pcqe_workload::WorkloadParams {
            data_size: 7,
            bases_per_result: 4,
            num_results: Some(4),
            cluster_size: Some(7),
            cross_cluster_prob: 0.0,
            ..pcqe_workload::WorkloadParams::default()
        }
        .with_seed(7);
        let problem = generate(&params).expect("valid workload");
        let rows = run_fig11a_on(&problem, true);
        assert_eq!(rows.len(), 6);
        let reference = rows[0].cost;
        for r in &rows {
            assert!(
                (r.cost - reference).abs() < 1e-6,
                "{} found {} vs {}",
                r.config,
                r.cost,
                reference
            );
        }
        // All-heuristics must search no more nodes than Naive.
        let naive = rows.iter().find(|r| r.config == "Naive").unwrap();
        let all = rows.iter().find(|r| r.config == "All").unwrap();
        assert!(all.nodes <= naive.nodes);
    }

    #[test]
    fn fig11be_two_phase_cheaper_or_equal() {
        let rows = run_fig11be(&[300, 600], 11);
        for r in &rows {
            assert!(r.two_phase_cost <= r.one_phase_cost + 1e-6);
            assert!(r.one_phase_cost > 0.0);
        }
    }

    #[test]
    fn fig11cf_small_sweep_runs_all_algorithms() {
        let rows = run_fig11cf(&[10, 300], 50, 13);
        // size 10: all three; size 300: heuristic skipped.
        let h300 = rows
            .iter()
            .find(|r| r.data_size == 300 && r.algorithm == "Heuristic")
            .unwrap();
        assert!(h300.seconds.is_none());
        let h10 = rows
            .iter()
            .find(|r| r.data_size == 10 && r.algorithm == "Heuristic")
            .unwrap();
        let g10 = rows
            .iter()
            .find(|r| r.data_size == 10 && r.algorithm == "Greedy")
            .unwrap();
        // The heuristic is exact: never costlier than greedy.
        assert!(h10.cost.unwrap() <= g10.cost.unwrap() + 1e-6);
    }
}
