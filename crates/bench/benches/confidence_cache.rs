//! Circuit-cache benchmark: the Figure-11-style repeated what-if
//! workload the cache was built for, measured cache-on vs cache-off and
//! checked for bit-identical confidences before timing.
//!
//! The workload mirrors the engine's θ-improvement loop: one query's
//! result circuits (overlapping lineage over a shared base-tuple pool)
//! are scored once, then repeatedly re-scored while single base-tuple
//! confidences are bumped, one per probe. With the cache on, each probe
//! invalidates only the pooled subcircuits whose var-set contains the
//! touched variable and answers every other circuit from its memo; with
//! the cache off, every probe re-runs Shannon expansion on every
//! circuit from scratch.
//!
//! A second section times the same loop end-to-end through
//! `Database::what_if` with `EngineConfig::circuit_cache` on and off.
//!
//! The run emits a `pcqe-obs` metrics JSON document to the path given as
//! the first argument (default `results/confidence_cache.json`); CI
//! gates it against `results/baseline_confidence_cache.json` with
//! `pcqe-obs-validate --gate`.

use pcqe_bench::timing::{bench, group};
use pcqe_engine::{Database, EngineConfig, QueryRequest, User};
use pcqe_lineage::{CircuitCache, Evaluator, Lineage, Rng64, VarId};
use pcqe_policy::ConfidencePolicy;
use pcqe_storage::{Column, DataType, Schema, Value};
use std::collections::BTreeMap;

/// Base tuples in the shared pool.
const BASES: u64 = 24;
/// Result circuits per query, with overlapping lineage.
const RESULTS: u64 = 40;
/// What-if probes; each bumps one base tuple's confidence.
const PROBES: u64 = 50;
/// Shannon budget (the engine default).
const BUDGET: usize = 4096;

/// Result circuit `j`: an OR over AND-pairs that share base variables
/// with each other and with neighbouring circuits, so exact evaluation
/// needs Shannon expansion and the pool sees real cross-circuit sharing.
fn circuit(j: u64) -> Lineage {
    Lineage::or(vec![
        Lineage::and(vec![Lineage::var(j % BASES), Lineage::var((j + 1) % BASES)]),
        Lineage::and(vec![
            Lineage::var((j + 1) % BASES),
            Lineage::var((j + 7) % BASES),
        ]),
        Lineage::and(vec![
            Lineage::var(j % BASES),
            Lineage::var((j + 13) % BASES),
        ]),
    ])
}

/// The probe sequence: probe `i` sets base `i % BASES` to a fresh
/// deterministic confidence.
fn probes() -> Vec<(VarId, f64)> {
    let mut rng = Rng64::seed_from_u64(0x00CA_BE7C);
    (0..PROBES)
        .map(|i| (VarId(i % BASES), rng.range_f64(0.05, 0.95)))
        .collect()
}

fn initial_probs() -> BTreeMap<VarId, f64> {
    let mut rng = Rng64::seed_from_u64(0x00CA_0B0B);
    (0..BASES)
        .map(|v| (VarId(v), rng.range_f64(0.05, 0.95)))
        .collect()
}

/// Run the whole workload through the cache; returns the final scores.
fn run_cached(cache: &mut CircuitCache) -> Vec<f64> {
    for (v, p) in initial_probs() {
        cache.set_prob(v, p);
    }
    let ids: Vec<_> = (0..RESULTS)
        .map(|j| cache.compile(&circuit(j), BUDGET).expect("fits budget"))
        .collect();
    let mut scores = Vec::with_capacity(RESULTS as usize);
    for (v, p) in probes() {
        cache.set_prob(v, p);
        scores.clear();
        for &id in &ids {
            scores.push(cache.score(id).expect("known vars"));
        }
    }
    scores
}

/// The same workload with no cache: every probe re-evaluates every
/// circuit from its formula.
fn run_uncached() -> Vec<f64> {
    let ev = Evaluator::exact_only(BUDGET);
    let mut probs = initial_probs();
    let circuits: Vec<Lineage> = (0..RESULTS).map(circuit).collect();
    let mut scores = Vec::with_capacity(RESULTS as usize);
    for (v, p) in probes() {
        probs.insert(v, p);
        scores.clear();
        for c in &circuits {
            scores.push(ev.probability(c, &probs).expect("known vars"));
        }
    }
    scores
}

/// Bit-identity and hit-count checks, then the timed comparison.
fn rescoring_sweep(recorder: &pcqe_obs::Recorder) {
    group("confidence_cache/rescoring");

    // Correctness first: every probe's scores must agree bit for bit.
    // (Run the cached and uncached probe loops in lockstep.)
    {
        let ev = Evaluator::exact_only(BUDGET);
        let mut cache = CircuitCache::new();
        for (v, p) in initial_probs() {
            cache.set_prob(v, p);
        }
        let ids: Vec<_> = (0..RESULTS)
            .map(|j| cache.compile(&circuit(j), BUDGET).expect("fits budget"))
            .collect();
        let circuits: Vec<Lineage> = (0..RESULTS).map(circuit).collect();
        let mut probs = initial_probs();
        for (probe, (v, p)) in probes().into_iter().enumerate() {
            cache.set_prob(v, p);
            probs.insert(v, p);
            for (j, (&id, c)) in ids.iter().zip(&circuits).enumerate() {
                let cached = cache.score(id).expect("known vars");
                let plain = ev.probability(c, &probs).expect("known vars");
                assert_eq!(
                    cached.to_bits(),
                    plain.to_bits(),
                    "probe {probe}, circuit {j}: cached {cached} vs uncached {plain}"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.hits() > 0, "the probe loop must hit the memo");
        assert!(
            stats.invalidated > 0,
            "every probe must invalidate the touched subcircuits"
        );
        println!(
            "pool: {} nodes, {} circuits; compiled={} hits={} invalidated={}",
            cache.pool_size(),
            cache.circuit_count(),
            stats.compiled,
            stats.hits(),
            stats.invalidated
        );
        recorder.counter_add("bench.cache.compiled", stats.compiled);
        recorder.counter_add("bench.cache.hits", stats.hits());
        recorder.counter_add("bench.cache.invalidated", stats.invalidated);
    }

    let t_on = bench("rescoring/cache_on", 10, || {
        let mut cache = CircuitCache::new();
        run_cached(&mut cache)
    });
    let t_off = bench("rescoring/cache_off", 10, run_uncached);
    recorder.histogram_record("bench.cache.on.seconds", t_on.best);
    recorder.histogram_record("bench.cache.off.seconds", t_off.best);
    let speedup = t_off.best / t_on.best.max(1e-12);
    recorder.gauge_set("bench.cache.speedup", speedup);
    println!(
        "repeated what-if re-scoring: {speedup:.1}x faster with the cache \
         ({RESULTS} circuits x {PROBES} probes over {BASES} bases)"
    );
    assert!(
        speedup >= 5.0,
        "circuit cache must be at least 5x faster on the repeated \
         what-if workload, measured {speedup:.2}x"
    );
}

/// The paper's Section 3.1 database under a given configuration.
fn paper_db(circuit_cache: bool) -> Database {
    let config = EngineConfig {
        circuit_cache,
        worker_threads: Some(1),
        ..EngineConfig::default()
    };
    let mut db = Database::new(config);
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .expect("schema"),
    )
    .expect("table");
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .expect("schema"),
    )
    .expect("table");
    let mut rng = Rng64::seed_from_u64(0x00CA_DB01);
    for c in 0..12i64 {
        let company = format!("Co{c}");
        for p in 0..3i64 {
            db.insert(
                "Proposal",
                vec![
                    Value::text(&company),
                    Value::text(format!("p{p}")),
                    Value::Real(500_000.0),
                ],
                rng.range_f64(0.02, 0.06),
            )
            .expect("row");
        }
        db.insert(
            "CompanyInfo",
            vec![Value::text(&company), Value::Real(1000.0 * c as f64)],
            rng.range_f64(0.02, 0.06),
        )
        .expect("row");
    }
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).expect("policy"));
    db
}

const SQL: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// End-to-end: query once, then preview the proposal repeatedly through
/// `Database::what_if`, cache on vs off.
fn what_if_sweep(recorder: &pcqe_obs::Recorder) {
    group("confidence_cache/what_if");
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(SQL, "investment");

    // Correctness: responses and previews agree bit for bit.
    let mut db_on = paper_db(true);
    let mut db_off = paper_db(false);
    let a = db_on.query(&user, &request).expect("query");
    let b = db_off.query(&user, &request).expect("query");
    assert_eq!(a.released.len(), b.released.len());
    for (x, y) in a.released.iter().zip(&b.released) {
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
    }
    let proposal = a.proposal.expect("the withheld rows admit a strategy");
    assert_eq!(Some(&proposal), b.proposal.as_ref());
    for _ in 0..8 {
        let wa = db_on.what_if(&user, &request, &proposal).expect("preview");
        let wb = db_off.what_if(&user, &request, &proposal).expect("preview");
        assert_eq!(wa.released.len(), wb.released.len());
        for (x, y) in wa.released.iter().zip(&wb.released) {
            assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        }
    }
    let hits = db_on.metrics_snapshot().counter("lineage.cache_hit");
    assert!(hits > 0, "repeated previews must hit the engine's cache");
    recorder.counter_add("bench.what_if.engine_cache_hits", hits);

    let run = |cached: bool| {
        let mut db = paper_db(cached);
        let resp = db.query(&user, &request).expect("query");
        let proposal = resp.proposal.expect("strategy");
        for _ in 0..8 {
            db.what_if(&user, &request, &proposal).expect("preview");
        }
    };
    let t_on = bench("what_if/cache_on", 10, || run(true));
    let t_off = bench("what_if/cache_off", 10, || run(false));
    recorder.histogram_record("bench.what_if.on.seconds", t_on.best);
    recorder.histogram_record("bench.what_if.off.seconds", t_off.best);
    let speedup = t_off.best / t_on.best.max(1e-12);
    recorder.gauge_set("bench.what_if.speedup", speedup);
    println!("end-to-end what-if previews: {speedup:.2}x with the engine cache");
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/confidence_cache.json".to_owned());
    let recorder = pcqe_obs::Recorder::new();

    rescoring_sweep(&recorder);
    what_if_sweep(&recorder);

    let json = pcqe_obs::export::to_json(&recorder.snapshot());
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(path, &json).expect("write bench JSON");
    println!("\nwrote {out}");
}
