//! Criterion bench for Figure 11(b)/(e): one-phase vs two-phase greedy.
//! The paper's finding: near-identical response time, ≥30 % cost saving
//! from phase 2 (the cost side is reported by the `figures` binary; here
//! we measure the time side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_workload::{generate, WorkloadParams};
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11b_greedy_phases");
    group.sample_size(10);
    for size in [1_000usize, 3_000] {
        let problem = generate(
            &WorkloadParams {
                data_size: size,
                ..WorkloadParams::default()
            }
            .with_seed(42),
        )
        .expect("valid workload");
        group.bench_with_input(BenchmarkId::new("one_phase", size), &problem, |b, p| {
            b.iter(|| greedy::solve(black_box(p), &GreedyOptions::one_phase()).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("two_phase", size), &problem, |b, p| {
            b.iter(|| greedy::solve(black_box(p), &GreedyOptions::default()).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
