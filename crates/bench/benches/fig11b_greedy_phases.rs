//! Timing sweep for Figure 11(b)/(e): one-phase vs two-phase greedy.
//! The paper's finding: near-identical response time, ≥30 % cost saving
//! from phase 2 (the cost side is reported by the `figures` binary; here
//! we measure the time side).

use pcqe_bench::timing::{bench, group};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_workload::{generate, WorkloadParams};

fn main() {
    group("fig11b_greedy_phases");
    for size in [1_000usize, 3_000] {
        let problem = generate(
            &WorkloadParams {
                data_size: size,
                ..WorkloadParams::default()
            }
            .with_seed(42),
        )
        .expect("valid workload");
        bench(&format!("one_phase/{size}"), 10, || {
            greedy::solve(&problem, &GreedyOptions::one_phase()).expect("feasible")
        });
        bench(&format!("two_phase/{size}"), 10, || {
            greedy::solve(&problem, &GreedyOptions::default()).expect("feasible")
        });
    }
}
