//! Timing sweep for Figure 11(a)/(d): the heuristic branch-and-bound
//! under each pruning configuration, with and without the greedy seed.

use pcqe_bench::timing::{bench, group};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_workload::{generate, WorkloadParams};

fn main() {
    let problem = generate(&WorkloadParams::fig11a().with_seed(42)).expect("valid workload");
    let greedy_seed = greedy::solve(&problem, &GreedyOptions::default())
        .expect("feasible")
        .solution;

    let configs: Vec<(&str, HeuristicOptions)> = vec![
        ("naive", HeuristicOptions::naive()),
        ("h1", HeuristicOptions::only(1)),
        ("h2", HeuristicOptions::only(2)),
        ("h3", HeuristicOptions::only(3)),
        ("h4", HeuristicOptions::only(4)),
        ("all", HeuristicOptions::all()),
    ];

    group("fig11a_heuristics");
    for (label, opts) in &configs {
        bench(&format!("no_bound/{label}"), 10, || {
            heuristic::solve(&problem, opts).expect("feasible")
        });
        let seeded = HeuristicOptions {
            seed: Some(greedy_seed.clone()),
            ..opts.clone()
        };
        bench(&format!("greedy_bound/{label}"), 10, || {
            heuristic::solve(&problem, &seeded).expect("feasible")
        });
    }
}
