//! Criterion bench for Figure 11(a)/(d): the heuristic branch-and-bound
//! under each pruning configuration, with and without the greedy seed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_workload::{generate, WorkloadParams};
use std::hint::black_box;

fn bench_fig11a(c: &mut Criterion) {
    let problem = generate(&WorkloadParams::fig11a().with_seed(42)).expect("valid workload");
    let greedy_seed = greedy::solve(&problem, &GreedyOptions::default())
        .expect("feasible")
        .solution;

    let configs: Vec<(&str, HeuristicOptions)> = vec![
        ("naive", HeuristicOptions::naive()),
        ("h1", HeuristicOptions::only(1)),
        ("h2", HeuristicOptions::only(2)),
        ("h3", HeuristicOptions::only(3)),
        ("h4", HeuristicOptions::only(4)),
        ("all", HeuristicOptions::all()),
    ];

    let mut group = c.benchmark_group("fig11a_heuristics");
    group.sample_size(10);
    for (label, opts) in &configs {
        group.bench_with_input(BenchmarkId::new("no_bound", label), opts, |b, opts| {
            b.iter(|| heuristic::solve(black_box(&problem), opts).expect("feasible"));
        });
        let seeded = HeuristicOptions {
            seed: Some(greedy_seed.clone()),
            ..opts.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("greedy_bound", label),
            &seeded,
            |b, opts| {
                b.iter(|| heuristic::solve(black_box(&problem), opts).expect("feasible"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11a);
criterion_main!(benches);
