//! Ablation benches for the design choices called out in DESIGN.md:
//! the D&C partition threshold γ, the per-group branch-and-bound cutoff τ,
//! and the greedy gain definition (Useful vs Raw).

use pcqe_bench::timing::{bench, group};
use pcqe_core::anneal::{self, AnnealOptions};
use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GainMode, GreedyOptions};
use pcqe_core::multi::solve_greedy;
use pcqe_workload::{generate, generate_batch, WorkloadParams};

fn bench_gamma() {
    let problem = generate(&WorkloadParams::scalability_point(2_000).with_seed(42)).expect("valid");
    group("ablation_gamma");
    for gamma in [0.0f64, 1.0, 2.0, 4.0] {
        let opts = DncOptions {
            gamma,
            ..DncOptions::default()
        };
        bench(&format!("gamma/{gamma}"), 10, || {
            dnc::solve(&problem, &opts).expect("feasible")
        });
    }
}

fn bench_tau() {
    let problem = generate(&WorkloadParams::scalability_point(1_000).with_seed(42)).expect("valid");
    group("ablation_tau");
    for tau in [0usize, 8, 12] {
        let opts = DncOptions {
            tau,
            bb_node_budget: 20_000,
            ..DncOptions::default()
        };
        bench(&format!("tau/{tau}"), 10, || {
            dnc::solve(&problem, &opts).expect("feasible")
        });
    }
}

fn bench_gain_mode() {
    let problem = generate(&WorkloadParams::scalability_point(1_000).with_seed(42)).expect("valid");
    group("ablation_gain_mode");
    for (label, gain) in [("useful", GainMode::Useful), ("raw", GainMode::Raw)] {
        let opts = GreedyOptions {
            gain,
            ..GreedyOptions::default()
        };
        bench(&format!("gain/{label}"), 10, || {
            greedy::solve(&problem, &opts).expect("feasible")
        });
    }
}

fn bench_incremental_greedy() {
    group("ablation_incremental_greedy");
    for size in [1_000usize, 5_000] {
        let problem =
            generate(&WorkloadParams::scalability_point(size).with_seed(42)).expect("valid");
        bench(&format!("faithful/{size}"), 10, || {
            greedy::solve(&problem, &GreedyOptions::default()).expect("feasible")
        });
        bench(&format!("lazy_heap/{size}"), 10, || {
            greedy::solve(&problem, &GreedyOptions::incremental()).expect("feasible")
        });
    }
}

fn bench_anneal_baseline() {
    let problem = generate(&WorkloadParams::scalability_point(500).with_seed(42)).expect("valid");
    group("ablation_anneal_baseline");
    bench("greedy", 10, || {
        greedy::solve(&problem, &GreedyOptions::default()).expect("feasible")
    });
    let opts = AnnealOptions {
        moves_per_temperature: 100,
        ..AnnealOptions::default()
    };
    bench("anneal", 10, || {
        anneal::solve(&problem, &opts).expect("feasible")
    });
}

fn bench_multi_query() {
    group("multi_query_batches");
    for n_queries in [1usize, 2, 4] {
        let params = WorkloadParams {
            data_size: 400,
            ..WorkloadParams::default()
        }
        .with_seed(42);
        let multi = generate_batch(&params, n_queries).expect("valid batch");
        bench(&format!("queries/{n_queries}"), 10, || {
            solve_greedy(&multi, &GreedyOptions::default()).expect("feasible")
        });
    }
}

fn main() {
    bench_gamma();
    bench_tau();
    bench_gain_mode();
    bench_incremental_greedy();
    bench_anneal_baseline();
    bench_multi_query();
}
