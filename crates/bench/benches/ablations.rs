//! Ablation benches for the design choices called out in DESIGN.md:
//! the D&C partition threshold γ, the per-group branch-and-bound cutoff τ,
//! and the greedy gain definition (Useful vs Raw).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GainMode, GreedyOptions};
use pcqe_workload::{generate, WorkloadParams};
use std::hint::black_box;

fn bench_gamma(c: &mut Criterion) {
    let problem =
        generate(&WorkloadParams::scalability_point(2_000).with_seed(42)).expect("valid");
    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    for gamma in [0.0f64, 1.0, 2.0, 4.0] {
        let opts = DncOptions {
            gamma,
            ..DncOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gamma}")),
            &opts,
            |b, opts| {
                b.iter(|| dnc::solve(black_box(&problem), opts).expect("feasible"));
            },
        );
    }
    group.finish();
}

fn bench_tau(c: &mut Criterion) {
    let problem =
        generate(&WorkloadParams::scalability_point(1_000).with_seed(42)).expect("valid");
    let mut group = c.benchmark_group("ablation_tau");
    group.sample_size(10);
    for tau in [0usize, 8, 12] {
        let opts = DncOptions {
            tau,
            bb_node_budget: 20_000,
            ..DncOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(tau), &opts, |b, opts| {
            b.iter(|| dnc::solve(black_box(&problem), opts).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_gain_mode(c: &mut Criterion) {
    let problem =
        generate(&WorkloadParams::scalability_point(1_000).with_seed(42)).expect("valid");
    let mut group = c.benchmark_group("ablation_gain_mode");
    group.sample_size(10);
    for (label, gain) in [("useful", GainMode::Useful), ("raw", GainMode::Raw)] {
        let opts = GreedyOptions {
            gain,
            ..GreedyOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| greedy::solve(black_box(&problem), opts).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_incremental_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_incremental_greedy");
    group.sample_size(10);
    for size in [1_000usize, 5_000] {
        let problem =
            generate(&WorkloadParams::scalability_point(size).with_seed(42)).expect("valid");
        group.bench_with_input(BenchmarkId::new("faithful", size), &problem, |b, p| {
            b.iter(|| greedy::solve(black_box(p), &GreedyOptions::default()).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("lazy_heap", size), &problem, |b, p| {
            b.iter(|| {
                greedy::solve(black_box(p), &GreedyOptions::incremental()).expect("feasible")
            });
        });
    }
    group.finish();
}

fn bench_anneal_baseline(c: &mut Criterion) {
    use pcqe_core::anneal::{self, AnnealOptions};
    let problem =
        generate(&WorkloadParams::scalability_point(500).with_seed(42)).expect("valid");
    let mut group = c.benchmark_group("ablation_anneal_baseline");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| greedy::solve(black_box(&problem), &GreedyOptions::default()).expect("feasible"));
    });
    group.bench_function("anneal", |b| {
        let opts = AnnealOptions {
            moves_per_temperature: 100,
            ..AnnealOptions::default()
        };
        b.iter(|| anneal::solve(black_box(&problem), &opts).expect("feasible"));
    });
    group.finish();
}

fn bench_multi_query(c: &mut Criterion) {
    use pcqe_core::multi::solve_greedy;
    use pcqe_workload::generate_batch;
    let mut group = c.benchmark_group("multi_query_batches");
    group.sample_size(10);
    for n_queries in [1usize, 2, 4] {
        let params = pcqe_workload::WorkloadParams {
            data_size: 400,
            ..pcqe_workload::WorkloadParams::default()
        }
        .with_seed(42);
        let multi = generate_batch(&params, n_queries).expect("valid batch");
        group.bench_with_input(
            BenchmarkId::from_parameter(n_queries),
            &multi,
            |b, m| {
                b.iter(|| solve_greedy(black_box(m), &GreedyOptions::default()).expect("feasible"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gamma,
    bench_tau,
    bench_gain_mode,
    bench_incremental_greedy,
    bench_anneal_baseline,
    bench_multi_query
);
criterion_main!(benches);
