//! Physical-planning benchmark: the three performance levers the
//! logical → physical pipeline adds, each measured against its baseline
//! and checked for bit-identical answers before timing.
//!
//! 1. **Hash join vs nested loop** — both strategies run over the same
//!    equi-join at growing sizes; the crossover point where hashing wins
//!    is reported alongside the strategy the cost-based planner picked.
//! 2. **Index scan vs table scan** — a point-lookup query over a large
//!    table, planned with and without an equality index on the key.
//! 3. **β-short-circuit on vs off** — a low-confidence DISTINCT-join
//!    workload under a policy whose threshold β provably rejects every
//!    row: with the short-circuit on, exact Shannon expansion is skipped
//!    for all of them (`lineage.exact_skipped`), and the released and
//!    withheld sets are identical either way.
//!
//! Like the figure benches, the run emits a JSON document — here the
//! `pcqe-obs` metrics export, validated in CI by `pcqe-obs-validate` —
//! to the path given as the first argument (default
//! `results/physical_planning.json`).

use pcqe_algebra::{execute, execute_physical, lower, optimize, PhysicalPlan, Plan, ScalarExpr};
use pcqe_bench::timing::{bench, group};
use pcqe_engine::{Database, EngineConfig, QueryRequest, User};
use pcqe_lineage::Rng64;
use pcqe_policy::ConfidencePolicy;
use pcqe_storage::{Catalog, Column, DataType, Schema, Value};

/// Two `n`-row tables keyed so every left row matches exactly one right
/// row, with deterministic confidences.
fn join_catalog(n: u64) -> Catalog {
    let mut rng = Rng64::seed_from_u64(7 + n);
    let mut catalog = Catalog::new();
    for name in ["l", "r"] {
        catalog
            .create_table(
                name,
                Schema::new(vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                ])
                .expect("schema"),
            )
            .expect("table");
    }
    for i in 0..n {
        let c = 0.05 + 0.9 * rng.next_f64();
        catalog
            .insert("l", vec![Value::Int(i as i64), Value::Int(1)], c)
            .expect("row");
        let c = 0.05 + 0.9 * rng.next_f64();
        catalog
            .insert("r", vec![Value::Int(i as i64), Value::Int(2)], c)
            .expect("row");
    }
    catalog
}

/// Assert two result sets are bit-identical (rows, order, lineage).
fn assert_same(a: &pcqe_algebra::ResultSet, b: &pcqe_algebra::ResultSet, what: &str) {
    assert_eq!(a.rows().len(), b.rows().len(), "{what}: row count");
    for (x, y) in a.rows().iter().zip(b.rows()) {
        assert_eq!(x.tuple, y.tuple, "{what}: values");
        assert_eq!(x.lineage, y.lineage, "{what}: lineage");
    }
}

fn join_crossover(recorder: &pcqe_obs::Recorder) {
    group("physical_planning/join_crossover");
    let mut crossover: Option<u64> = None;
    for n in [4u64, 16, 64, 256, 1024] {
        let catalog = join_catalog(n);
        let scan = |t: &str| PhysicalPlan::TableScan {
            table: t.to_owned(),
            alias: None,
            residual: None,
        };
        let hash = PhysicalPlan::HashJoin {
            left: Box::new(scan("l")),
            right: Box::new(scan("r")),
            keys: vec![(0, 2)],
            residual: None,
        };
        let nl = PhysicalPlan::NestedLoopJoin {
            left: Box::new(scan("l")),
            right: Box::new(scan("r")),
            predicate: Some(ScalarExpr::column(0).eq(ScalarExpr::column(2))),
        };
        let a = execute_physical(&hash, &catalog).expect("hash join");
        let b = execute_physical(&nl, &catalog).expect("nested loop");
        assert_same(&a, &b, "hash vs nested loop");

        let t_hash = bench(&format!("join/hash/n{n}"), 10, || {
            execute_physical(&hash, &catalog).expect("hash join")
        });
        let t_nl = bench(&format!("join/nested_loop/n{n}"), 10, || {
            execute_physical(&nl, &catalog).expect("nested loop")
        });
        recorder.histogram_record(&format!("bench.join.hash.n{n}.seconds"), t_hash.best);
        recorder.histogram_record(&format!("bench.join.nested_loop.n{n}.seconds"), t_nl.best);
        if crossover.is_none() && t_hash.best < t_nl.best {
            crossover = Some(n);
        }

        // What the cost-based planner actually picks at this size.
        let logical = Plan::scan("l").join(
            Plan::scan("r"),
            ScalarExpr::column(0).eq(ScalarExpr::column(2)),
        );
        let logical = optimize(&logical, &catalog).expect("optimize");
        let physical = lower(&logical, &catalog).expect("lower");
        let chosen = if physical.to_string().contains("HashJoin") {
            "hash"
        } else {
            "nested_loop"
        };
        println!("n={n}: planner chose {chosen}");
        recorder.counter_add(&format!("bench.join.planner_chose.{chosen}.n{n}"), 1);
    }
    match crossover {
        Some(n) => {
            println!("hash join first wins at n={n}");
            recorder.gauge_set("bench.join.crossover_rows", n as f64);
        }
        None => println!("nested loop won at every measured size"),
    }
}

fn index_vs_table_scan(recorder: &pcqe_obs::Recorder) {
    group("physical_planning/index_scan");
    const N: u64 = 20_000;
    let mut plain = join_catalog(0);
    plain
        .create_table(
            "t",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ])
            .expect("schema"),
        )
        .expect("table");
    let mut rng = Rng64::seed_from_u64(99);
    for i in 0..N {
        let c = 0.05 + 0.9 * rng.next_f64();
        catalog_insert(&mut plain, i, c);
    }
    let mut indexed = plain.clone();
    indexed.create_index("t", "k").expect("index");

    let logical = Plan::scan("t")
        .select(ScalarExpr::column(0).eq(ScalarExpr::literal(Value::Int((N / 2) as i64))));
    let logical = optimize(&logical, &plain).expect("optimize");
    let table_plan = lower(&logical, &plain).expect("lower");
    let index_plan = lower(&logical, &indexed).expect("lower");
    assert!(table_plan.to_string().contains("TableScan"), "{table_plan}");
    assert!(index_plan.to_string().contains("IndexScan"), "{index_plan}");
    let a = execute_physical(&table_plan, &plain).expect("table scan");
    let b = execute_physical(&index_plan, &indexed).expect("index scan");
    assert_same(&a, &b, "index vs table scan");
    // And both agree with the logical executor.
    let c = execute(&logical, &plain).expect("logical");
    assert_same(&a, &c, "physical vs logical");

    let t_table = bench("scan/table/point_lookup", 20, || {
        execute_physical(&table_plan, &plain).expect("table scan")
    });
    let t_index = bench("scan/index/point_lookup", 20, || {
        execute_physical(&index_plan, &indexed).expect("index scan")
    });
    recorder.histogram_record("bench.scan.table.seconds", t_table.best);
    recorder.histogram_record("bench.scan.index.seconds", t_index.best);
    let speedup = t_table.best / t_index.best.max(1e-12);
    recorder.gauge_set("bench.scan.index_speedup", speedup);
    println!("index-scan speedup over table scan: {speedup:.1}x ({N} rows)");
}

fn catalog_insert(catalog: &mut Catalog, i: u64, confidence: f64) {
    catalog
        .insert(
            "t",
            vec![Value::Int(i as i64), Value::Int((i % 7) as i64)],
            confidence,
        )
        .expect("row");
}

/// A low-confidence workload under a policy threshold β that provably
/// rejects every result: group `g`'s lineage is an OR over 16 AND-pairs
/// of 0.001-confidence tuples, so its union bound (16 × 0.001 = 0.016)
/// stays at or below β = 0.05 and the short-circuit skips every exact
/// Shannon expansion without changing what is released.
fn beta_database(beta_short_circuit: bool) -> Database {
    let config = EngineConfig {
        beta_short_circuit,
        worker_threads: Some(1),
        ..EngineConfig::default()
    };
    let mut db = Database::new(config);
    db.create_table(
        "a",
        Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::new("x", DataType::Int),
        ])
        .expect("schema"),
    )
    .expect("table");
    db.create_table(
        "b",
        Schema::new(vec![Column::new("x", DataType::Int)]).expect("schema"),
    )
    .expect("table");
    const GROUPS: i64 = 60;
    const FAN: i64 = 4; // 4×4 = 16 derivations per group
    for g in 0..GROUPS {
        for i in 0..FAN {
            db.insert("a", vec![Value::Int(g), Value::Int(g * FAN + i)], 0.001)
                .expect("row");
        }
    }
    for g in 0..GROUPS {
        for i in 0..FAN {
            for _ in 0..FAN {
                // FAN b-rows per a-key: the join fans out and DISTINCT
                // merges the derivations back into one row per group.
                db.insert("b", vec![Value::Int(g * FAN + i)], 0.001)
                    .expect("row");
            }
        }
    }
    db.add_policy(ConfidencePolicy::new("analyst", "report", 0.05).expect("policy"));
    db
}

fn beta_short_circuit(recorder: &pcqe_obs::Recorder) {
    group("physical_planning/beta_short_circuit");
    const SQL: &str = "SELECT DISTINCT g FROM a JOIN b ON a.x = b.x";
    let user = User::new("ann", "analyst");
    let request = QueryRequest::new(SQL, "report").expecting(0.0);

    let run = |gated: bool| {
        let mut db = beta_database(gated);
        let resp = db.query(&user, &request).expect("query");
        (resp, db.metrics_snapshot())
    };
    let (gated, gated_metrics) = run(true);
    let (exact, _) = run(false);
    assert_eq!(
        gated.released.len(),
        exact.released.len(),
        "released set must not depend on the short-circuit"
    );
    for (a, b) in gated.released.iter().zip(&exact.released) {
        assert_eq!(a.tuple, b.tuple);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
    assert_eq!(gated.withheld, exact.withheld, "withheld count");
    let skipped = gated_metrics.counter("lineage.exact_skipped");
    assert!(skipped > 0, "low-β workload must skip exact evaluations");
    println!(
        "exact evaluations skipped: {skipped} (of {} rows)",
        gated.withheld
    );
    recorder.counter_add("bench.beta.exact_skipped", skipped);

    let t_on = bench("beta_short_circuit/on", 10, || {
        let mut db = beta_database(true);
        db.query(&user, &request).expect("query")
    });
    let t_off = bench("beta_short_circuit/off", 10, || {
        let mut db = beta_database(false);
        db.query(&user, &request).expect("query")
    });
    recorder.histogram_record("bench.beta.on.seconds", t_on.best);
    recorder.histogram_record("bench.beta.off.seconds", t_off.best);
    let speedup = t_off.best / t_on.best.max(1e-12);
    recorder.gauge_set("bench.beta.speedup", speedup);
    println!("β-short-circuit speedup: {speedup:.2}x");
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/physical_planning.json".to_owned());
    let recorder = pcqe_obs::Recorder::new();

    join_crossover(&recorder);
    index_vs_table_scan(&recorder);
    beta_short_circuit(&recorder);

    let json = pcqe_obs::export::to_json(&recorder.snapshot());
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(path, &json).expect("write bench JSON");
    println!("\nwrote {out}");
}
