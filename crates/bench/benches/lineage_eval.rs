//! Micro-benchmarks of the confidence-computation substrate: interpreted
//! exact evaluation vs compiled lineage vs Monte-Carlo estimation. These
//! underpin every figure (each solver iteration evaluates F thousands of
//! times) but are not a figure themselves.

use pcqe_bench::timing::{bench, group};
use pcqe_lineage::{CompiledLineage, Evaluator, Lineage, MonteCarlo, VarId};
use std::collections::HashMap;

/// An OR of ten AND-pairs over twenty distinct variables (read-once).
fn read_once_formula() -> Lineage {
    let groups = (0..10u64)
        .map(|g| Lineage::and(vec![Lineage::var(2 * g), Lineage::var(2 * g + 1)]))
        .collect();
    Lineage::or(groups)
}

/// A formula with heavy variable sharing (forces Shannon expansion).
fn shared_formula() -> Lineage {
    let groups = (0..8u64)
        .map(|g| Lineage::and(vec![Lineage::var(g), Lineage::var(g + 1)]))
        .collect();
    Lineage::or(groups)
}

fn probs_for(l: &Lineage) -> HashMap<VarId, f64> {
    l.vars().into_iter().map(|v| (v, 0.12)).collect()
}

fn main() {
    group("lineage_eval");

    let ro = read_once_formula();
    let ro_probs = probs_for(&ro);
    let ev = Evaluator::exact_only(1024);
    bench("interpreted/read_once_20vars", 30, || {
        ev.probability(&ro, &ro_probs).expect("exact")
    });
    let compiled = CompiledLineage::compile(&ro, 1024).expect("compiles");
    let slots: Vec<f64> = compiled.vars().iter().map(|v| ro_probs[v]).collect();
    bench("compiled/read_once_20vars", 30, || compiled.eval(&slots));

    let sh = shared_formula();
    let sh_probs = probs_for(&sh);
    let ev_sh = Evaluator::exact_only(1 << 20);
    bench("interpreted/shared_9vars", 30, || {
        ev_sh.probability(&sh, &sh_probs).expect("exact")
    });
    let compiled_sh = CompiledLineage::compile(&sh, 1 << 20).expect("compiles");
    let slots_sh: Vec<f64> = compiled_sh.vars().iter().map(|v| sh_probs[v]).collect();
    bench("compiled/shared_9vars", 30, || compiled_sh.eval(&slots_sh));

    let mc = MonteCarlo::new(10_000, 7);
    bench("monte_carlo/shared_9vars_10k", 30, || {
        mc.estimate(&sh, &sh_probs).expect("estimates")
    });
}
