//! Vectorized-execution benchmark: the morsel-driven columnar executor
//! measured against the tuple-at-a-time physical executor on scan-heavy,
//! join and aggregation workloads, at 1, 2 and 4 worker threads —
//! checked for bit-identical results before timing.
//!
//! The headline number is the scan workload: the vectorized table scan
//! fuses its residual predicate over *borrowed* stored rows and only
//! materialises survivors into columnar batches, where the tuple
//! executor clones every row first and filters afterwards. On a
//! selective predicate over wide rows that asymmetry alone is worth
//! several-fold, independent of core count — which is what makes the
//! speedup contract enforceable on a single-core CI runner. The
//! thread-count sweep exports the full curve so multi-core runs show
//! the morsel-parallel scaling on top.
//!
//! The run emits a `pcqe-obs` metrics JSON document to the path given as
//! the first argument (default `results/vectorized_exec.json`); CI gates
//! it against `results/baseline_vectorized.json` with
//! `pcqe-obs-validate --gate`.

use pcqe_algebra::{
    execute_physical_with, execute_vectorized_with, lower, optimize, PhysicalPlan, ResultSet,
};
use pcqe_bench::timing::{bench, group};
use pcqe_lineage::Rng64;
use pcqe_par::Parallelism;
use pcqe_sql::parse_and_plan;
use pcqe_storage::{Catalog, Column, DataType, Schema, Value};

/// Rows in the scanned fact table. Large enough that per-row clone cost
/// dominates; small enough that the full sweep stays in CI budget.
const READINGS: i64 = 40_000;
/// Distinct sensors (the join/aggregate key domain).
const SENSORS: i64 = 64;

/// The workload grid: a highly selective scan over wide rows, an
/// equi-join of the filtered fact table with its dimension table, and a
/// grouped aggregation over the same filter.
const WORKLOADS: &[(&str, &str)] = &[
    (
        "scan",
        "SELECT sensor, value, label FROM readings WHERE value < 50",
    ),
    (
        "join",
        "SELECT r.sensor, r.value, s.id FROM readings r JOIN sensors s \
         ON r.sensor = s.id WHERE r.value < 120",
    ),
    (
        "aggregate",
        "SELECT sensor, COUNT(*) AS n FROM readings WHERE value < 200 \
         GROUP BY sensor",
    ),
];

/// A deterministic catalog: `READINGS` wide rows (an INT key, an INT
/// measure 0..1000, and a TEXT label that makes row clones expensive)
/// plus a small dimension table.
fn build_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "readings",
        Schema::new(vec![
            Column::new("sensor", DataType::Int),
            Column::new("value", DataType::Int),
            Column::new("label", DataType::Text),
        ])
        .expect("schema"),
    )
    .expect("table");
    c.create_table(
        "sensors",
        Schema::new(vec![Column::new("id", DataType::Int)]).expect("schema"),
    )
    .expect("table");
    let mut rng = Rng64::seed_from_u64(0x00B4_7C4E);
    for i in 0..READINGS {
        let sensor = rng.below_u64(SENSORS as u64) as i64;
        let value = rng.below_u64(1000) as i64;
        c.insert(
            "readings",
            vec![
                Value::Int(sensor),
                Value::Int(value),
                Value::text(format!("reading {i} from sensor {sensor}")),
            ],
            rng.range_f64(0.05, 0.99),
        )
        .expect("row");
    }
    for id in 0..SENSORS {
        c.insert("sensors", vec![Value::Int(id)], rng.range_f64(0.5, 0.99))
            .expect("row");
    }
    c
}

fn physical(sql: &str, catalog: &Catalog) -> PhysicalPlan {
    let plan = parse_and_plan(sql, catalog).expect("plans");
    let logical = optimize(&plan, catalog).expect("optimises");
    lower(&logical, catalog).expect("lowers")
}

fn threads(n: usize) -> Parallelism {
    Parallelism {
        worker_threads: Some(n),
        parallel_threshold: 1,
    }
}

/// Bit-identity: rows, order and lineage must match the tuple executor
/// exactly (DerivedTuple equality covers values and lineage terms).
fn assert_identical(a: &ResultSet, b: &ResultSet, label: &str) {
    assert_eq!(
        a.rows().len(),
        b.rows().len(),
        "{label}: row count diverged"
    );
    for (i, (x, y)) in a.rows().iter().zip(b.rows()).enumerate() {
        assert_eq!(x, y, "{label}: row {i} diverged");
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/vectorized_exec.json".to_owned());
    let recorder = pcqe_obs::Recorder::new();
    let catalog = build_catalog();

    // Correctness before timing: the vectorized executor must be
    // bit-identical to tuple-at-a-time on every workload at every
    // thread count in the sweep.
    for &(name, sql) in WORKLOADS {
        let phys = physical(sql, &catalog);
        let reference = execute_physical_with(&phys, &catalog, &threads(1)).expect("tuple");
        assert!(
            !reference.rows().is_empty(),
            "{name}: workload must produce rows to be meaningful"
        );
        for t in [1usize, 2, 4] {
            let v = execute_vectorized_with(&phys, &catalog, &threads(t)).expect("vectorized");
            assert_identical(&reference, &v, name);
        }
        recorder.counter_add(
            &format!("bench.vectorized.{name}.rows"),
            reference.rows().len() as u64,
        );
    }

    // The timed sweep: each workload, tuple vs vectorized, across the
    // thread curve. `best` of 10 keeps the numbers stable on a noisy
    // shared runner.
    let mut scan_speedup_t4 = 0.0f64;
    for &(name, sql) in WORKLOADS {
        group(&format!("vectorized_exec/{name}"));
        let phys = physical(sql, &catalog);
        for t in [1usize, 2, 4] {
            let par = threads(t);
            let tuple = bench(&format!("{name}/tuple/t{t}"), 10, || {
                execute_physical_with(&phys, &catalog, &par).expect("tuple")
            });
            let vector = bench(&format!("{name}/vectorized/t{t}"), 10, || {
                execute_vectorized_with(&phys, &catalog, &par).expect("vectorized")
            });
            recorder.histogram_record(
                &format!("bench.vectorized.{name}.tuple.t{t}.seconds"),
                tuple.best,
            );
            recorder.histogram_record(
                &format!("bench.vectorized.{name}.t{t}.seconds"),
                vector.best,
            );
            let speedup = tuple.best / vector.best.max(1e-12);
            recorder.gauge_set(&format!("bench.vectorized.{name}.speedup.t{t}"), speedup);
            println!("  {name} @ {t} thread(s): {speedup:.2}x vectorized vs tuple");
            if name == "scan" && t == 4 {
                scan_speedup_t4 = speedup;
            }
        }
    }

    // The contract the CI gate pins: ≥2x end-to-end on the scan-heavy
    // workload at 4 threads, vectorized vs tuple at the same thread
    // count (so the bar holds even on a single-core runner, where the
    // win is scan fusion rather than parallel speedup).
    recorder.gauge_set("bench.vectorized.speedup", scan_speedup_t4);
    assert!(
        scan_speedup_t4 >= 2.0,
        "vectorized execution must be at least 2x faster on the \
         scan-heavy workload at 4 threads, measured {scan_speedup_t4:.2}x"
    );

    let json = pcqe_obs::export::to_json(&recorder.snapshot());
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(path, &json).expect("write bench JSON");
    println!("\nwrote {out}");
}
