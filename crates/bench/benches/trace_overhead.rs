//! Tracing-overhead benchmark: the causal tracer must be free when off
//! and cheap when on.
//!
//! The engine keeps a single code path — `Database::query` always runs
//! through the instrumented executors and scorers, with the tracer's
//! enabled flag (one relaxed atomic load per instrumentation point)
//! deciding whether anything is recorded. Two measurements back that
//! design up:
//!
//! 1. **Disabled sink micro-cost** — a tight loop over a disabled
//!    `Tracer`'s span/instant entry points, reported as ns/op. This is
//!    the entire price every untraced query pays per instrumentation
//!    point.
//! 2. **End-to-end ratio** — the paper-style workload queried with
//!    `Database::query` (tracer off) vs `Database::trace_query` (tracer
//!    on, ring buffer drained per query). The ratio bounds the cost of
//!    turning tracing on.
//!
//! Results and confidences are compared bit for bit between the traced
//! and untraced runs before anything is timed. The run emits a
//! `pcqe-obs` metrics JSON document to the path given as the first
//! argument (default `results/trace_overhead.json`).

use pcqe_bench::timing::{bench, group};
use pcqe_engine::{Database, EngineConfig, QueryRequest, User};
use pcqe_lineage::Rng64;
use pcqe_obs::Tracer;
use pcqe_par::TraceSink;
use pcqe_policy::ConfidencePolicy;
use pcqe_storage::{Column, DataType, Schema, Value};

/// A paper-style database big enough that a query does real work: 12
/// companies, 3 proposals each, low confidences so the gate suppresses
/// and the strategy solver runs.
fn paper_db() -> Database {
    let config = EngineConfig {
        worker_threads: Some(1),
        ..EngineConfig::default()
    };
    let mut db = Database::new(config);
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .expect("schema"),
    )
    .expect("table");
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .expect("schema"),
    )
    .expect("table");
    let mut rng = Rng64::seed_from_u64(0x00CA_7AC3);
    for c in 0..12i64 {
        let company = format!("Co{c}");
        for p in 0..3i64 {
            db.insert(
                "Proposal",
                vec![
                    Value::text(&company),
                    Value::text(format!("p{p}")),
                    Value::Real(500_000.0),
                ],
                rng.range_f64(0.02, 0.06),
            )
            .expect("row");
        }
        db.insert(
            "CompanyInfo",
            vec![Value::text(&company), Value::Real(1000.0 * c as f64)],
            rng.range_f64(0.02, 0.06),
        )
        .expect("row");
    }
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).expect("policy"));
    db
}

const SQL: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// Price of one disabled instrumentation point, in nanoseconds.
fn disabled_sink_sweep(recorder: &pcqe_obs::Recorder) {
    group("trace_overhead/disabled_sink");
    const OPS: u64 = 1_000_000;
    let tracer = Tracer::disabled();
    let t = bench("disabled_span_instant", 10, || {
        for i in 0..OPS {
            let id = tracer.span_begin("bench");
            if i % 64 == 0 {
                tracer.instant("tick", "detail");
            }
            tracer.span_end(id);
        }
    });
    // Each iteration is one begin + one end (+ 1/64 instants).
    let ns_per_op = t.best * 1e9 / (2.0 * OPS as f64);
    recorder.gauge_set("bench.trace.disabled.ns_per_op", ns_per_op);
    println!("disabled instrumentation point: {ns_per_op:.2} ns/op");
    assert!(
        ns_per_op < 50.0,
        "a disabled trace point must cost nanoseconds, measured {ns_per_op:.1} ns"
    );
    assert_eq!(
        tracer.drain().events.len(),
        0,
        "a disabled tracer must record nothing"
    );
}

/// End-to-end cost of tracing a full query lifecycle.
fn end_to_end_sweep(recorder: &pcqe_obs::Recorder) {
    group("trace_overhead/end_to_end");
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(SQL, "investment");

    // Correctness first: traced and untraced runs agree bit for bit.
    {
        let mut plain = paper_db();
        let mut traced = paper_db();
        let a = plain.query(&user, &request).expect("query");
        let (b, trace) = traced.trace_query(&user, &request).expect("trace");
        assert_eq!(a.released.len(), b.released.len());
        assert_eq!(a.withheld, b.withheld);
        for (x, y) in a.released.iter().zip(&b.released) {
            assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        }
        assert_eq!(a.proposal, b.proposal);
        assert_eq!(
            trace.decisions().len(),
            b.released.len() + b.withheld,
            "one decision event per gated tuple"
        );
        recorder.counter_add("bench.trace.events", trace.events.len() as u64);
    }

    let t_off = bench("query/tracing_off", 10, || {
        let mut db = paper_db();
        for _ in 0..8 {
            db.query(&user, &request).expect("query");
        }
    });
    let t_on = bench("query/tracing_on", 10, || {
        let mut db = paper_db();
        for _ in 0..8 {
            db.trace_query(&user, &request).expect("trace");
        }
    });
    recorder.histogram_record("bench.trace.off.seconds", t_off.best);
    recorder.histogram_record("bench.trace.on.seconds", t_on.best);
    let ratio = t_on.best / t_off.best.max(1e-12);
    recorder.gauge_set("bench.trace.on_off_ratio", ratio);
    println!("end-to-end tracing-on/tracing-off ratio: {ratio:.3}x");
    assert!(
        ratio < 2.0,
        "tracing a query must stay under 2x the untraced time, measured {ratio:.2}x"
    );
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/trace_overhead.json".to_owned());
    let recorder = pcqe_obs::Recorder::new();

    disabled_sink_sweep(&recorder);
    end_to_end_sweep(&recorder);

    let json = pcqe_obs::export::to_json(&recorder.snapshot());
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(path, &json).expect("write bench JSON");
    println!("\nwrote {out}");
}
