//! Batch-scoring speedup harness: score the same ≥10k-lineage workload
//! with one worker thread and with four, assert the outputs are
//! byte-identical (bit-for-bit f64 equality), and report the speedup.
//!
//! On a single-core host the parallel run shows no wall-clock win (the
//! scheduler degrades to chunked sequential execution); the point of the
//! harness is that the *answers* never depend on the thread count and
//! that the speedup is measurable wherever cores exist.

use pcqe_bench::timing::{bench, group};
use pcqe_lineage::{score_batch, Evaluator, Lineage, Rng64, VarId};
use pcqe_par::Parallelism;

const BATCH: usize = 10_000;
const VARS: u64 = 2_000;

/// A random OR-of-AND formula over 2–5 distinct variables.
fn random_formula(rng: &mut Rng64) -> Lineage {
    let k = rng.range_usize(2, 6);
    let mut vars: Vec<u64> = Vec::with_capacity(k);
    while vars.len() < k {
        let v = rng.below_u64(VARS);
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    let mut groups: Vec<Vec<Lineage>> = vec![vec![]];
    for v in vars {
        if rng.chance(0.4) && !groups.last().unwrap().is_empty() {
            groups.push(Vec::new());
        }
        groups.last_mut().unwrap().push(Lineage::var(v));
    }
    Lineage::or(groups.into_iter().map(Lineage::and).collect())
}

fn main() {
    let mut rng = Rng64::seed_from_u64(42);
    let lineages: Vec<Lineage> = (0..BATCH).map(|_| random_formula(&mut rng)).collect();
    let probs = |v: VarId| Some(0.05 + 0.9 * ((v.0 % 97) as f64 / 97.0));
    let evaluator = Evaluator::default();

    group("score_batch_speedup");
    let seq = Parallelism::sequential();
    let par4 = Parallelism::with_workers(4);

    let baseline = score_batch(&evaluator, &lineages, &probs, &seq).expect("scores");
    let parallel = score_batch(&evaluator, &lineages, &probs, &par4).expect("scores");
    assert_eq!(baseline.len(), parallel.len());
    for (i, (a, b)) in baseline.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "lineage {i}: sequential {a} != parallel {b}"
        );
    }
    println!("outputs byte-identical across thread counts ({BATCH} lineages)");

    let t1 = bench("score_batch/1_thread", 10, || {
        score_batch(&evaluator, &lineages, &probs, &seq).expect("scores")
    });
    let t4 = bench("score_batch/4_threads", 10, || {
        score_batch(&evaluator, &lineages, &probs, &par4).expect("scores")
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "speedup (best): {:.2}x on a {cores}-core host",
        t1.best / t4.best
    );
}
