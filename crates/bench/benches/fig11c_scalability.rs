//! Timing sweep for Figure 11(c)/(f): greedy vs divide-and-conquer as
//! the data size grows (the heuristic is exponential and benchmarked only
//! at the 10-tuple point, as in the paper). The paper's finding: greedy
//! wins while the dataset is small, D&C overtakes as it grows.

use pcqe_bench::timing::{bench, group};
use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_workload::{generate, WorkloadParams};

fn main() {
    group("fig11c_scalability");

    // The tiny point where all three run.
    let tiny = generate(&WorkloadParams::scalability_point(10).with_seed(42)).expect("valid");
    let seed = greedy::solve(&tiny, &GreedyOptions::default())
        .expect("feasible")
        .solution;
    let opts = HeuristicOptions::all().with_seed(seed);
    bench("heuristic/10", 10, || {
        heuristic::solve(&tiny, &opts).expect("feasible")
    });

    for size in [10usize, 1_000, 5_000] {
        let problem =
            generate(&WorkloadParams::scalability_point(size).with_seed(42)).expect("valid");
        bench(&format!("greedy/{size}"), 10, || {
            greedy::solve(&problem, &GreedyOptions::default()).expect("feasible")
        });
        bench(&format!("dnc/{size}"), 10, || {
            dnc::solve(&problem, &DncOptions::default()).expect("feasible")
        });
    }
}
