//! Criterion bench for Figure 11(c)/(f): greedy vs divide-and-conquer as
//! the data size grows (the heuristic is exponential and benchmarked only
//! at the 10-tuple point, as in the paper). The paper's finding: greedy
//! wins while the dataset is small, D&C overtakes as it grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_workload::{generate, WorkloadParams};
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11c_scalability");
    group.sample_size(10);

    // The tiny point where all three run.
    let tiny = generate(&WorkloadParams::scalability_point(10).with_seed(42)).expect("valid");
    group.bench_function("heuristic/10", |b| {
        let seed = greedy::solve(&tiny, &GreedyOptions::default()).expect("feasible").solution;
        let opts = HeuristicOptions::all().with_seed(seed);
        b.iter(|| heuristic::solve(black_box(&tiny), &opts).expect("feasible"));
    });

    for size in [10usize, 1_000, 5_000] {
        let problem =
            generate(&WorkloadParams::scalability_point(size).with_seed(42)).expect("valid");
        group.bench_with_input(BenchmarkId::new("greedy", size), &problem, |b, p| {
            b.iter(|| greedy::solve(black_box(p), &GreedyOptions::default()).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("dnc", size), &problem, |b, p| {
            b.iter(|| dnc::solve(black_box(p), &DncOptions::default()).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
