//! Exit-code contract for the `pcqe-obs-validate` binary.
//!
//! `ci.sh` keys stage pass/fail off the validator's exit status, so the
//! codes are part of the tool's public interface: `0` valid (and gate
//! cleared), `1` malformed or regressed, `2` usage or I/O error. One
//! test per `--schema` mode exercises the real binary end to end, and a
//! further test pins the all-violations behaviour: a document with
//! several problems reports every one of them in a single run.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_pcqe-obs-validate");

/// Write `content` to a unique temp file and return its path.
fn fixture(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pcqe-obs-validate-cli-{}-{name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, content).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().unwrap()
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("validator terminated by signal")
}

const METRICS_OK: &str =
    "{\"counters\": {\"a\": 1}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}";

const LINT_OK: &str = "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \"findings\": [], \
     \"summary\": {\"files\": 1, \"manifests\": 1, \"errors\": 0, \
     \"warnings\": 0, \"suppressed\": 0}}";

const TRACE_OK: &str = "{\"displayTimeUnit\": \"ms\", \"dropped\": 0, \"capacity\": 4096, \
     \"traceEvents\": [{\"name\": \"query\", \"ph\": \"B\", \"ts\": 0.000, \
     \"pid\": 1, \"tid\": 1, \"args\": {}}, {\"name\": \"query\", \"ph\": \"E\", \
     \"ts\": 1.000, \"pid\": 1, \"tid\": 1, \"args\": {}}]}";

#[test]
fn metrics_schema_exit_codes() {
    let good = fixture("metrics-good", METRICS_OK);
    let out = run(&["--schema", "metrics", good.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let bad = fixture("metrics-bad", "{\"counters\": {}}");
    let out = run(&["--schema", "metrics", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");

    let out = run(&["--schema", "metrics"]); // no file
    assert_eq!(exit_code(&out), 2, "{out:?}");
}

#[test]
fn lint_schema_exit_codes() {
    let good = fixture("lint-good", LINT_OK);
    let out = run(&["--schema", "lint", good.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let bad = fixture("lint-bad", "{\"tool\": \"other\"}");
    let out = run(&["--schema", "lint", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");

    let out = run(&["--schema", "lint", "--gate"]); // dangling flag
    assert_eq!(exit_code(&out), 2, "{out:?}");
}

#[test]
fn trace_schema_exit_codes() {
    let good = fixture("trace-good", TRACE_OK);
    let out = run(&["--schema", "trace", good.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("events=2 dropped=0"), "{stdout}");

    let bad = fixture("trace-bad", "{\"traceEvents\": 7}");
    let out = run(&["--schema", "trace", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");

    let out = run(&["--schema", "bogus", good.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");

    let out = run(&["--schema", "trace", "/nonexistent/trace.json"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
}

#[test]
fn trace_gate_exit_codes() {
    let baseline = fixture("trace-baseline", TRACE_OK);
    let actual = fixture("trace-actual", TRACE_OK);
    let out = run(&[
        "--schema",
        "trace",
        "--gate",
        baseline.to_str().unwrap(),
        actual.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 event floor(s) cleared"), "{stdout}");

    let empty = fixture(
        "trace-empty",
        "{\"dropped\": 0, \"capacity\": 0, \"traceEvents\": []}",
    );
    let out = run(&[
        "--schema",
        "trace",
        "--gate",
        baseline.to_str().unwrap(),
        empty.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("below the floor"), "{stderr}");
}

#[test]
fn all_violations_are_reported_in_one_run() {
    // A trace document with three independent problems: every one of
    // them must land on stderr in a single invocation.
    let bad = fixture(
        "trace-multi-bad",
        "{\"dropped\": 0, \"traceEvents\": [\
         {\"name\": \"q\", \"ph\": \"X\", \"ts\": 0, \"pid\": 1, \"tid\": 1, \"args\": {}}, \
         {\"ph\": \"B\", \"ts\": 0, \"pid\": 1, \"tid\": 1, \"args\": {}}]}",
    );
    let out = run(&["--schema", "trace", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing numeric `capacity`"), "{stderr}");
    assert!(stderr.contains("traceEvents[0] `ph` is `X`"), "{stderr}");
    assert!(
        stderr.contains("traceEvents[1] missing string `name`"),
        "{stderr}"
    );
    assert_eq!(stderr.lines().count(), 3, "{stderr}");
}
