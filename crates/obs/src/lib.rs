//! # pcqe-obs — hermetic metrics and span tracing
//!
//! A std-only, registry-free observability layer for the PCQE stack:
//!
//! * [`Recorder`] — thread-safe counters, gauges, fixed-bucket histograms
//!   and hierarchical [`span`](Recorder::span)s, timed exclusively through
//!   [`pcqe_core::clock`] (so [`ManualClock`](pcqe_core::clock::ManualClock)
//!   makes every export deterministic in tests);
//! * [`MetricsSnapshot`] — an immutable, ordered copy of the recorder
//!   state, taken atomically;
//! * [`export`] — hand-rolled byte-stable JSON and Prometheus text
//!   exposition (no serde: the workspace is registry-free);
//! * [`json`] — a minimal JSON parser used by CI to validate exports and
//!   by tests to round-trip them;
//! * [`sink`] — adapters implementing [`pcqe_core::sink::SolverSink`] and
//!   [`pcqe_par::ParObserver`] for the recorder, so solver statistics and
//!   scheduler telemetry flow in without `pcqe-core`/`pcqe-par` depending
//!   on this crate;
//! * [`trace`] — the causal side of the story: a bounded [`Tracer`] ring
//!   of typed [`trace::TraceEvent`]s (spans with parent ids, instants,
//!   per-tuple policy [`pcqe_par::Decision`]s) implementing the
//!   dependency-free [`pcqe_par::TraceSink`] trait;
//! * [`trace_export`] — byte-stable Chrome trace-event JSON and
//!   collapsed-stack flamegraph renderings of a [`QueryTrace`].
//!
//! ## Determinism contract
//!
//! Recording is strictly *passive*: nothing in this crate influences query
//! answers, solver solutions, or scheduling decisions. The engine produces
//! bit-identical results with recording enabled or disabled, at any worker
//! thread count — `tests/obs_determinism.rs` at the workspace root proves
//! it. Snapshots order every map by name (`BTreeMap`), so two snapshots of
//! equal state export byte-identical documents.
//!
//! ## Panic safety
//!
//! Every path in this crate is panic-free (lint rule `PCQE-P001` guards
//! `crates/obs/src`): poisoned mutexes are recovered rather than unwrapped,
//! arithmetic saturates, and the export/validate CLI returns exit codes
//! instead of panicking.

pub mod export;
pub mod json;
pub mod recorder;
pub mod sink;
pub mod snapshot;
pub mod trace;
pub mod trace_export;

pub use recorder::{Recorder, SpanGuard};
pub use snapshot::{Histogram, MetricsSnapshot, SpanStat};
pub use trace::{QueryTrace, Tracer};
