//! Adapters: the [`Recorder`] as a solver-stats sink and a scheduler
//! observer.
//!
//! `pcqe-core` and `pcqe-par` stay dependency-free by defining the traits
//! ([`SolverSink`], [`ParObserver`]) on their side; this module implements
//! both for [`Recorder`], closing the loop without a dependency cycle
//! (`pcqe-obs` → `pcqe-core` → `pcqe-par`).

use crate::recorder::Recorder;
use pcqe_core::sink::SolverSink;
use pcqe_par::{BatchReport, ParObserver};
use std::time::Duration;

impl SolverSink for Recorder {
    fn count(&self, name: &str, value: u64) {
        self.counter_add(name, value);
    }

    fn duration(&self, name: &str, value: Duration) {
        // Both shapes are useful: a running total for rate math and a
        // histogram for distribution. Names stay distinct so the JSON
        // export keeps them apart.
        let nanos = u64::try_from(value.as_nanos()).unwrap_or(u64::MAX);
        self.counter_add(&format!("{name}_nanos"), nanos);
        self.histogram_record(name, value.as_secs_f64());
    }
}

impl ParObserver for Recorder {
    fn now_nanos(&self) -> u64 {
        Recorder::now_nanos(self)
    }

    fn batch(&self, report: &BatchReport) {
        if !self.is_enabled() {
            return;
        }
        self.counter_add("par.batches", 1);
        self.counter_add("par.items", report.items as u64);
        self.counter_add("par.chunks", report.chunks as u64);
        self.counter_add("par.reassembly_stalls", report.reassembly_stalls);
        self.counter_add(
            "par.chunks_claimed",
            report.chunks_claimed.iter().copied().sum(),
        );
        let busy_total: u64 = report
            .busy_nanos
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b));
        self.counter_add("par.busy_nanos", busy_total);
        self.gauge_set("par.workers", report.workers as f64);
        // Per-worker busy-time distribution: skew across workers shows up
        // as spread across buckets.
        for &busy in &report.busy_nanos {
            self.histogram_record("par.worker_busy_seconds", busy as f64 / 1e9);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_core::clock::ManualClock;
    use pcqe_core::greedy::GreedyStats;
    use pcqe_core::heuristic::HeuristicStats;
    use std::sync::Arc;

    #[test]
    fn solver_stats_land_as_counters_and_histograms() {
        let r = Recorder::new();
        let stats = HeuristicStats {
            nodes: 10,
            pruned_h2: 4,
            elapsed: Duration::from_millis(3),
            ..HeuristicStats::default()
        };
        stats.emit(&r);
        let s = r.snapshot();
        assert_eq!(s.counter("solver.heuristic.nodes"), 10);
        assert_eq!(s.counter("solver.heuristic.pruned_h2"), 4);
        assert_eq!(s.counter("solver.heuristic.elapsed_nanos"), 3_000_000);
        assert_eq!(s.histograms["solver.heuristic.elapsed"].count(), 1);
    }

    #[test]
    fn greedy_stats_accumulate_across_runs() {
        let r = Recorder::new();
        let one = GreedyStats {
            iterations: 5,
            evals: 7,
            ..GreedyStats::default()
        };
        one.emit(&r);
        one.emit(&r);
        let s = r.snapshot();
        assert_eq!(s.counter("solver.greedy.iterations"), 10);
        assert_eq!(s.counter("solver.greedy.evals"), 14);
    }

    #[test]
    fn par_batches_fold_into_counters() {
        let r = Recorder::new();
        let report = BatchReport {
            items: 100,
            workers: 2,
            chunks: 8,
            chunks_claimed: vec![5, 3],
            busy_nanos: vec![1_000, 3_000],
            reassembly_stalls: 2,
        };
        r.batch(&report);
        r.batch(&report);
        let s = r.snapshot();
        assert_eq!(s.counter("par.batches"), 2);
        assert_eq!(s.counter("par.items"), 200);
        assert_eq!(s.counter("par.chunks_claimed"), 16);
        assert_eq!(s.counter("par.busy_nanos"), 8_000);
        assert_eq!(s.counter("par.reassembly_stalls"), 4);
        assert_eq!(s.gauge("par.workers"), Some(2.0));
        assert_eq!(s.histograms["par.worker_busy_seconds"].count(), 4);
    }

    #[test]
    fn observer_clock_is_the_recorder_clock() {
        let clock = Arc::new(ManualClock::new());
        let r = Recorder::with_clock(clock.clone());
        assert_eq!(ParObserver::now_nanos(&r), 0);
        clock.advance(Duration::from_nanos(123));
        assert_eq!(ParObserver::now_nanos(&r), 123);
    }
}
