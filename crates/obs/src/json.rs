//! A minimal, panic-free JSON parser.
//!
//! Exists so CI can validate exported metric documents (`ci.sh` runs
//! `pcqe-obs-validate` over `results/metrics.json`) and tests can
//! round-trip exports without a registry dependency. Accepts the JSON the
//! exporters emit — objects, arrays, strings with the common escapes,
//! numbers (including exponents), booleans and `null` — and rejects
//! everything else with a positioned error message.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted (last duplicate wins).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // Exact integer detection on purpose (lint-allow.toml, PCQE-D004).
        #[allow(clippy::float_cmp)]
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Walk object keys: `value.get("histograms")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

/// Parse one JSON document (surrounding whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Nesting depth cap: deeper documents are rejected, not recursed into.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json: byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to the replacement char;
                            // the exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str: valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("false"), Ok(Value::Bool(false)));
        assert_eq!(parse("42"), Ok(Value::Number(42.0)));
        assert_eq!(parse("-1.5e-3"), Ok(Value::Number(-0.0015)));
        assert_eq!(parse("\"hi\\n\""), Ok(Value::String("hi\n".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}").expect("parses");
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("00x").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(parse("\"é—\""), Ok(Value::String("é—".into())));
        assert_eq!(parse("\"\\u0041\""), Ok(Value::String("A".into())));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Number(3.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
    }
}
