//! Immutable, ordered snapshots of recorder state.
//!
//! Every collection is a `BTreeMap` keyed by metric name, so iteration —
//! and therefore every export — is deterministically ordered. A snapshot
//! is taken under one lock acquisition: counters, gauges, histograms and
//! spans are mutually consistent.

use std::collections::BTreeMap;
use std::time::Duration;

/// Upper bounds (in seconds) for the fixed histogram buckets, chosen to
/// cover microsecond operator timings up to multi-second solver runs.
/// Every histogram shares these bounds: fixed buckets keep merging and
/// export trivially byte-stable.
pub const BUCKET_BOUNDS: [f64; 10] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0];

/// A fixed-bucket histogram: cumulative-style export, Prometheus-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observations per bucket; `counts[i]` counts values `<= BUCKET_BOUNDS[i]`
    /// (non-cumulative storage), with the final slot catching everything
    /// above the last bound (`+Inf`).
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    /// Sum of all recorded values.
    sum: f64,
    /// Total number of observations.
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }
}

impl Histogram {
    /// Record one observation. NaN is counted in the overflow bucket and
    /// excluded from `sum` so one bad value cannot poison the export.
    pub fn record(&mut self, value: f64) {
        let idx = if value.is_nan() {
            BUCKET_BOUNDS.len()
        } else {
            BUCKET_BOUNDS
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(BUCKET_BOUNDS.len())
        };
        // `idx <= BUCKET_BOUNDS.len()` and `counts` has one extra overflow
        // slot, but the metrics path must never panic (PCQE-P002), so the
        // impossible miss is simply dropped.
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot = slot.saturating_add(1);
        }
        if !value.is_nan() {
            self.sum += value;
        }
        self.count = self.count.saturating_add(1);
    }

    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative count of observations `<=` each bound, ending with the
    /// total (`+Inf` bucket) — the Prometheus exposition shape.
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc = acc.saturating_add(c);
                acc
            })
            .collect()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Aggregate timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed activations of this span path.
    pub count: u64,
    /// Total time inside the span, in nanoseconds of the recorder clock.
    pub total_nanos: u64,
}

impl SpanStat {
    /// Total time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos)
    }
}

/// A consistent, ordered copy of everything a [`Recorder`](crate::Recorder)
/// has seen.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Hierarchical spans, keyed by `/`-separated path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Convenience: a counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience: a gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = Histogram::default();
        h.record(5e-7); // <= 1e-6
        h.record(1e-6); // <= 1e-6 (inclusive bound)
        h.record(0.5); // <= 1.0
        h.record(1e9); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[6], 1);
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS.len()], 1);
        let cum = h.cumulative_counts();
        assert_eq!(cum[BUCKET_BOUNDS.len()], 4, "+Inf is the total");
        assert!((h.sum() - (5e-7 + 1e-6 + 0.5 + 1e9)).abs() < 1e-3);
    }

    #[test]
    fn histogram_tolerates_nan() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(0.1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS.len()], 1);
        assert!((h.sum() - 0.1).abs() < 1e-12, "NaN excluded from sum");
    }

    #[test]
    fn snapshot_convenience_accessors() {
        let mut s = MetricsSnapshot::default();
        assert!(s.is_empty());
        s.counters.insert("a".into(), 3);
        s.gauges.insert("g".into(), 1.5);
        assert!(!s.is_empty());
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("g"), Some(1.5));
        assert_eq!(s.gauge("missing"), None);
    }

    #[test]
    fn span_stat_total_duration() {
        let s = SpanStat {
            count: 2,
            total_nanos: 1_500_000,
        };
        assert_eq!(s.total(), Duration::from_micros(1500));
    }
}
