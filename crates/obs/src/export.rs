//! Byte-stable exporters: hand-rolled JSON and Prometheus text format.
//!
//! No serde — the workspace is registry-free. Both exporters walk the
//! snapshot's `BTreeMap`s, so equal snapshots always serialize to
//! byte-identical documents; the golden files in
//! `tests/golden/metrics.{json,prom}` pin the formats.
//!
//! Floats are written with Rust's `{:?}` formatting, which round-trips
//! through the parser in [`crate::json`] exactly. Non-finite values (only
//! possible via a gauge) degrade to JSON `null` / are skipped in the
//! Prometheus text rather than emitting invalid documents.

use crate::snapshot::{Histogram, MetricsSnapshot, BUCKET_BOUNDS};
use std::fmt::Write as _;

/// Serialize the snapshot as a pretty-printed JSON document (trailing
/// newline included). Key order is the snapshot's map order: sorted.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"counters\": {},", counters_json(snapshot));
    let _ = writeln!(out, "  \"gauges\": {},", gauges_json(snapshot));
    let _ = writeln!(out, "  \"histograms\": {},", histograms_json(snapshot));
    let _ = writeln!(out, "  \"spans\": {}", spans_json(snapshot));
    out.push_str("}\n");
    out
}

fn counters_json(s: &MetricsSnapshot) -> String {
    object(
        s.counters.iter().map(|(k, v)| (k.as_str(), v.to_string())),
        4,
    )
}

fn gauges_json(s: &MetricsSnapshot) -> String {
    object(s.gauges.iter().map(|(k, v)| (k.as_str(), json_f64(*v))), 4)
}

fn histograms_json(s: &MetricsSnapshot) -> String {
    object(
        s.histograms
            .iter()
            .map(|(k, h)| (k.as_str(), histogram_json(h))),
        4,
    )
}

fn histogram_json(h: &Histogram) -> String {
    let bounds = BUCKET_BOUNDS
        .iter()
        .map(|&b| json_f64(b))
        .collect::<Vec<_>>()
        .join(", ");
    let counts = h
        .bucket_counts()
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"bounds\": [{bounds}], \"counts\": [{counts}], \"sum\": {}, \"count\": {}}}",
        json_f64(h.sum()),
        h.count()
    )
}

fn spans_json(s: &MetricsSnapshot) -> String {
    object(
        s.spans.iter().map(|(k, v)| {
            (
                k.as_str(),
                format!(
                    "{{\"count\": {}, \"total_nanos\": {}}}",
                    v.count, v.total_nanos
                ),
            )
        }),
        4,
    )
}

/// Render `key: value` pairs as a JSON object with `indent`-space members.
/// Values are pre-rendered JSON.
fn object<'a>(pairs: impl Iterator<Item = (&'a str, String)>, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let members: Vec<String> = pairs
        .map(|(k, v)| format!("{pad}{}: {v}", json_string(k)))
        .collect();
    if members.is_empty() {
        return "{}".to_owned();
    }
    let close_pad = " ".repeat(indent.saturating_sub(2));
    format!("{{\n{}\n{close_pad}}}", members.join(",\n"))
}

/// Escape a string for JSON.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for `v`: `{v:?}` round-trips; non-finite becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Serialize the snapshot in the Prometheus text exposition format
/// (version 0.0.4). Metric names are sanitized (`[a-zA-Z0-9_]`) and
/// prefixed `pcqe_`; histograms expose cumulative `_bucket{le="…"}`
/// series plus `_sum`/`_count`; spans export `_count` and
/// `_nanos_total` counters.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let m = metric_name(name, "");
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, value) in &snapshot.gauges {
        if !value.is_finite() {
            continue;
        }
        let m = metric_name(name, "");
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {value:?}");
    }
    for (name, h) in &snapshot.histograms {
        let m = metric_name(name, "");
        let _ = writeln!(out, "# TYPE {m} histogram");
        let cumulative = h.cumulative_counts();
        for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
            let _ = writeln!(out, "{m}_bucket{{le=\"{bound:?}\"}} {}", cumulative[i]);
        }
        let _ = writeln!(
            out,
            "{m}_bucket{{le=\"+Inf\"}} {}",
            cumulative.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{m}_sum {:?}", h.sum());
        let _ = writeln!(out, "{m}_count {}", h.count());
    }
    for (name, stat) in &snapshot.spans {
        let m = metric_name(name, "span_");
        let _ = writeln!(out, "# TYPE {m}_count counter");
        let _ = writeln!(out, "{m}_count {}", stat.count);
        let _ = writeln!(out, "# TYPE {m}_nanos_total counter");
        let _ = writeln!(out, "{m}_nanos_total {}", stat.total_nanos);
    }
    out
}

/// `pcqe_` + optional kind prefix + the sanitized metric name.
fn metric_name(name: &str, kind: &str) -> String {
    let mut out = String::with_capacity(name.len() + kind.len() + 5);
    out.push_str("pcqe_");
    out.push_str(kind);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SpanStat;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("query.total".into(), 3);
        s.counters.insert("policy.released".into(), 2);
        s.gauges.insert("par.workers".into(), 4.0);
        let mut h = Histogram::default();
        h.record(0.002);
        h.record(0.5);
        s.histograms.insert("solver.greedy.elapsed".into(), h);
        s.spans.insert(
            "query/execute".into(),
            SpanStat {
                count: 3,
                total_nanos: 42_000,
            },
        );
        s
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let doc = to_json(&sample());
        let parsed = crate::json::parse(&doc).expect("export must parse");
        let obj = parsed.as_object().expect("top-level object");
        for key in ["counters", "gauges", "histograms", "spans"] {
            assert!(obj.contains_key(key), "missing {key} in:\n{doc}");
        }
        assert!(doc.contains("\"query.total\": 3"));
        assert!(doc.contains("\"count\": 3, \"total_nanos\": 42000"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn json_export_of_empty_snapshot_is_valid() {
        let doc = to_json(&MetricsSnapshot::default());
        assert!(crate::json::parse(&doc).is_ok(), "{doc}");
        assert!(doc.contains("\"counters\": {}"));
    }

    #[test]
    fn identical_snapshots_export_identical_bytes() {
        assert_eq!(to_json(&sample()), to_json(&sample()));
        assert_eq!(to_prometheus(&sample()), to_prometheus(&sample()));
    }

    #[test]
    fn prometheus_export_shapes_each_kind() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE pcqe_query_total counter"));
        assert!(text.contains("pcqe_query_total 3"));
        assert!(text.contains("# TYPE pcqe_par_workers gauge"));
        assert!(text.contains("pcqe_par_workers 4.0"));
        assert!(text.contains("pcqe_solver_greedy_elapsed_bucket{le=\"0.001\"} 0"));
        assert!(text.contains("pcqe_solver_greedy_elapsed_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pcqe_solver_greedy_elapsed_count 2"));
        assert!(text.contains("pcqe_span_query_execute_nanos_total 42000"));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn prometheus_sanitizes_hostile_metric_names() {
        // Everything outside [a-zA-Z0-9] becomes `_`, including the
        // characters Prometheus would otherwise parse as syntax.
        let mut s = MetricsSnapshot::default();
        s.counters.insert("solver/greedy-elapsed.v2".into(), 1);
        s.counters.insert("weird{label=\"x\"} name".into(), 2);
        s.spans.insert(
            "query/execute phase#1".into(),
            SpanStat {
                count: 1,
                total_nanos: 7,
            },
        );
        let text = to_prometheus(&s);
        assert_eq!(
            text,
            "# TYPE pcqe_solver_greedy_elapsed_v2 counter\n\
             pcqe_solver_greedy_elapsed_v2 1\n\
             # TYPE pcqe_weird_label__x___name counter\n\
             pcqe_weird_label__x___name 2\n\
             # TYPE pcqe_span_query_execute_phase_1_count counter\n\
             pcqe_span_query_execute_phase_1_count 1\n\
             # TYPE pcqe_span_query_execute_phase_1_nanos_total counter\n\
             pcqe_span_query_execute_phase_1_nanos_total 7\n"
        );
        // The sanitized names also survive the JSON path: raw keys are
        // escaped, so the document still parses.
        s.counters.clear();
        s.counters.insert("quote\"and\\slash".into(), 1);
        let doc = to_json(&s);
        assert!(crate::json::parse(&doc).is_ok(), "{doc}");
        assert!(doc.contains("\"quote\\\"and\\\\slash\": 1"), "{doc}");
    }

    #[test]
    fn histogram_buckets_are_inclusive_at_their_boundaries() {
        // A value exactly on a bound lands in that bucket (`value <= b`),
        // and the first value past the last bound lands in +Inf.
        let mut h = Histogram::default();
        h.record(1e-6); // exactly the first bound
        h.record(1e-3); // exactly a middle bound
        h.record(600.0); // exactly the last bound
        h.record(600.0000001); // just past it: overflow slot
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "1e-6 belongs to the le=1e-6 bucket");
        assert_eq!(counts[3], 1, "1e-3 belongs to the le=1e-3 bucket");
        assert_eq!(
            counts[BUCKET_BOUNDS.len() - 1],
            1,
            "600.0 belongs to the last finite bucket"
        );
        assert_eq!(counts[BUCKET_BOUNDS.len()], 1, "past-the-end goes to +Inf");

        let mut s = MetricsSnapshot::default();
        s.histograms.insert("edge".into(), h);
        let text = to_prometheus(&s);
        // Cumulative counts at the exact boundaries.
        assert!(text.contains("pcqe_edge_bucket{le=\"1e-6\"} 1"), "{text}");
        assert!(text.contains("pcqe_edge_bucket{le=\"0.001\"} 2"), "{text}");
        assert!(text.contains("pcqe_edge_bucket{le=\"600.0\"} 3"), "{text}");
        assert!(text.contains("pcqe_edge_bucket{le=\"+Inf\"} 4"), "{text}");
    }

    #[test]
    fn empty_snapshot_exports_are_byte_stable() {
        // Inline goldens: the empty documents are part of the format
        // contract — consumers (ci.sh, the validator) see exactly this.
        let empty = MetricsSnapshot::default();
        assert_eq!(
            to_json(&empty),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}\n"
        );
        assert_eq!(to_prometheus(&empty), "");
    }
}
