//! The [`Recorder`]: thread-safe metric collection behind one mutex.
//!
//! All time is read through [`pcqe_core::clock::Clock`] — this crate never
//! touches `Instant`/`SystemTime` directly (lint rule `PCQE-T001` would
//! fail the build if it did; the analyzer fixture
//! `crates/lint/tests/fixtures/tree/crates/obs/src/raw_clock.rs` proves
//! the rule fires inside `crates/obs`). Constructed with
//! [`Recorder::with_clock`] over a [`ManualClock`](pcqe_core::clock::ManualClock),
//! every span duration — and therefore every export — is deterministic.
//!
//! Recording can be switched off ([`Recorder::set_enabled`]): disabled
//! recorders skip the lock and the clock entirely, so the hot path cost is
//! one relaxed atomic load. Enabled or not, recording never influences
//! computation results — the recorder is write-only from the engine's
//! perspective.

use crate::snapshot::{Histogram, MetricsSnapshot, SpanStat};
use pcqe_core::clock::{Clock, SystemClock};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

/// Thread-safe counters, gauges, histograms and hierarchical spans.
pub struct Recorder {
    enabled: AtomicBool,
    clock: Arc<dyn Clock + Send + Sync>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder on the real monotonic clock.
    pub fn new() -> Recorder {
        Recorder::with_clock(Arc::new(SystemClock))
    }

    /// An enabled recorder on an explicit clock (tests pass
    /// [`ManualClock`](pcqe_core::clock::ManualClock) for byte-stable
    /// exports).
    pub fn with_clock(clock: Arc<dyn Clock + Send + Sync>) -> Recorder {
        Recorder {
            enabled: AtomicBool::new(true),
            clock,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A recorder that starts disabled: every record call is a no-op until
    /// [`Recorder::set_enabled`] turns it on.
    pub fn disabled() -> Recorder {
        let r = Recorder::new();
        r.set_enabled(false);
        r
    }

    /// Toggle recording. Already-collected data is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The recorder's clock (shared with spawned span guards).
    pub fn clock(&self) -> &Arc<dyn Clock + Send + Sync> {
        &self.clock
    }

    /// A monotonic nanosecond reading of the recorder clock, saturating
    /// at `u64::MAX`.
    pub fn now_nanos(&self) -> u64 {
        duration_to_nanos(self.clock.monotonic())
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding this mutex poisons it; the data is plain
        // counters, always valid, so recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `value` to the counter `name` (created at 0), saturating.
    pub fn counter_add(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let slot = entry_or_default(&mut inner.counters, name);
        *slot = slot.saturating_add(value);
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Record one observation into the fixed-bucket histogram `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        entry_or_default(&mut inner.histograms, name).record(value);
    }

    /// Add one completed activation of `total` to the span `path`.
    /// Normally called by [`SpanGuard::drop`]; exposed for adapters that
    /// receive externally-timed durations.
    pub fn span_record(&self, path: &str, total: Duration) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let stat = entry_or_default(&mut inner.spans, path);
        stat.count = stat.count.saturating_add(1);
        stat.total_nanos = stat.total_nanos.saturating_add(duration_to_nanos(total));
    }

    /// Open a root span named `name`. The span measures from now until the
    /// returned guard drops; nest with [`SpanGuard::child`]. Disabled
    /// recorders hand back an inert guard that never reads the clock.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let live = self.is_enabled();
        SpanGuard {
            recorder: self,
            path: name.to_owned(),
            started: if live {
                Some(self.clock.monotonic())
            } else {
                None
            },
        }
    }

    /// An ordered, mutually-consistent copy of all collected metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Drop all collected data (the enabled flag is untouched).
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }
}

/// Fetch-or-insert a default slot. The `String` allocation on the hit
/// path is acceptable: this runs on instrumentation calls, never inside
/// result-affecting loops.
fn entry_or_default<'a, V: Default>(map: &'a mut BTreeMap<String, V>, name: &str) -> &'a mut V {
    map.entry(name.to_owned()).or_default()
}

/// An open span: records `(count, elapsed)` under its path on drop.
///
/// Paths are `/`-separated; [`SpanGuard::child`] appends a segment, so
/// `recorder.span("query")` then `.child("execute")` times
/// `"query/execute"` inside `"query"`.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    path: String,
    /// Start reading; `None` when the recorder was disabled at open time
    /// (the guard then records nothing, even if recording is re-enabled
    /// mid-span — half-timed spans would be misleading).
    started: Option<Duration>,
}

impl<'a> SpanGuard<'a> {
    /// Open a nested span `self.path + "/" + name`.
    pub fn child(&self, name: &str) -> SpanGuard<'a> {
        let live = self.started.is_some() && self.recorder.is_enabled();
        SpanGuard {
            recorder: self.recorder,
            path: format!("{}/{}", self.path, name),
            started: if live {
                Some(self.recorder.clock.monotonic())
            } else {
                None
            },
        }
    }

    /// The span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let elapsed = self.recorder.clock.monotonic().saturating_sub(started);
            self.recorder.span_record(&self.path, elapsed);
        }
    }
}

/// Clamp a [`Duration`] to `u64` nanoseconds.
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_core::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, Recorder) {
        let clock = Arc::new(ManualClock::new());
        let recorder = Recorder::with_clock(clock.clone());
        (clock, recorder)
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Recorder::new();
        r.counter_add("q", 2);
        r.counter_add("q", 3);
        r.counter_add("sat", u64::MAX);
        r.counter_add("sat", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("q"), 5);
        assert_eq!(s.counter("sat"), u64::MAX);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Recorder::new();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        assert_eq!(r.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.counter_add("c", 1);
        r.gauge_set("g", 1.0);
        r.histogram_record("h", 0.5);
        {
            let _span = r.span("s");
        }
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.counter_add("c", 1);
        assert_eq!(r.snapshot().counter("c"), 1);
    }

    #[test]
    fn spans_time_on_the_manual_clock() {
        let (clock, r) = manual();
        {
            let query = r.span("query");
            clock.advance(Duration::from_micros(10));
            {
                let exec = query.child("execute");
                assert_eq!(exec.path(), "query/execute");
                clock.advance(Duration::from_micros(30));
            }
            clock.advance(Duration::from_micros(5));
        }
        let s = r.snapshot();
        assert_eq!(s.spans["query"].count, 1);
        assert_eq!(s.spans["query"].total_nanos, 45_000);
        assert_eq!(s.spans["query/execute"].total_nanos, 30_000);
    }

    #[test]
    fn span_opened_while_disabled_never_records() {
        let (clock, r) = manual();
        r.set_enabled(false);
        let span = r.span("late");
        r.set_enabled(true); // re-enabled mid-span: still inert
        clock.advance(Duration::from_millis(1));
        drop(span);
        assert!(r.snapshot().spans.is_empty());
    }

    #[test]
    fn reset_clears_but_keeps_enabled_state() {
        let r = Recorder::new();
        r.counter_add("c", 1);
        r.reset();
        assert!(r.snapshot().is_empty());
        assert!(r.is_enabled());
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.counter_add("n", 1);
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("n"), 8000);
    }
}
