//! Causal query tracing: a bounded, preallocated buffer of typed events.
//!
//! Where [`crate::Recorder`] *aggregates* (counters, histograms, merged
//! span totals), the [`Tracer`] answers the per-query question the
//! aggregates erase: *what happened during this query, in what order,
//! and why was this tuple released or suppressed?* It implements the
//! dependency-free [`pcqe_par::TraceSink`] trait so every layer of the
//! stack — engine lifecycle spans, per-operator execution spans, circuit
//! cache compile/hit/invalidate events, β-skip decisions, scheduler
//! batches — can emit into one ordered timeline.
//!
//! ## Determinism contract
//!
//! Every event carries two orderings: a monotonic `seq` counter (the
//! authoritative order, assigned under the buffer mutex) and a
//! `ts_nanos` timestamp read exclusively through the injected
//! [`pcqe_core::clock::Clock`]. Under a
//! [`ManualClock`](pcqe_core::clock::ManualClock) the timestamps are
//! scripted, so exports ([`crate::trace_export`]) are byte-stable and
//! golden-testable. Tracing is strictly passive: a disabled tracer costs
//! one relaxed atomic load and never touches the clock, and enabled
//! tracing never influences query answers (proved by
//! `tests/trace_determinism.rs` at the workspace root).
//!
//! ## Bounded memory
//!
//! The event buffer is preallocated at a fixed capacity. When it fills,
//! *new* events are dropped (and counted in [`QueryTrace::dropped`]) —
//! keeping the consistent prefix of the timeline rather than evicting
//! old events and leaving dangling span ends.

use pcqe_core::clock::{Clock, SystemClock};
use pcqe_par::{BatchReport, Decision, ParObserver, TraceSink};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Default event-buffer capacity: generous for a single query's
/// lifecycle + operator + cache + decision events.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A span opened. `parent` is the innermost span open at the time
    /// (`None` for a root span).
    SpanBegin {
        /// Span id, unique within one [`QueryTrace`] (ids start at 1;
        /// 0 is the disabled-tracer sentinel and never appears here).
        id: u64,
        /// Enclosing open span, if any.
        parent: Option<u64>,
        /// Span name, e.g. `"query"` or `"op:HashJoin"`.
        name: String,
    },
    /// The span opened as `id` closed.
    SpanEnd {
        /// Id from the matching [`TraceEventKind::SpanBegin`].
        id: u64,
        /// Name copied from the matching begin, so exports need no join.
        name: String,
    },
    /// A point-in-time event, e.g. `"cache.hit"` or `"beta.skip"`.
    Instant {
        /// Event name.
        name: String,
        /// Free-form `key=value` detail text.
        detail: String,
    },
    /// One per-tuple policy decision (see [`pcqe_par::Decision`]).
    Decision(Decision),
}

/// One timeline entry: a deterministic sequence number, a clock reading,
/// and the event payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Position in the timeline (0-based, gap-free within a trace).
    pub seq: u64,
    /// Nanoseconds from the injected clock at emission time.
    pub ts_nanos: u64,
    /// The event payload.
    pub kind: TraceEventKind,
}

/// A drained, immutable per-query timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Events in `seq` order.
    pub events: Vec<TraceEvent>,
    /// Events that arrived after the buffer filled and were discarded.
    pub dropped: u64,
    /// The buffer capacity the trace was collected under.
    pub capacity: usize,
}

impl QueryTrace {
    /// Decisions in timeline order (a convenience view for tests and
    /// the shell's `json` rendering).
    pub fn decisions(&self) -> Vec<&Decision> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Decision(d) => Some(d),
                _ => None,
            })
            .collect()
    }
}

struct Buf {
    events: Vec<TraceEvent>,
    dropped: u64,
    next_seq: u64,
    next_span: u64,
    /// Open spans, innermost last: `(id, name)`.
    open: Vec<(u64, String)>,
}

impl Buf {
    fn with_capacity(capacity: usize) -> Buf {
        Buf {
            events: Vec::with_capacity(capacity),
            dropped: 0,
            next_seq: 0,
            next_span: 0,
            open: Vec::new(),
        }
    }
}

/// A bounded causal-trace collector behind one mutex.
///
/// Mirrors the [`crate::Recorder`] posture exactly: an `AtomicBool`
/// enabled flag (relaxed — the flag only gates observation, never
/// results), an injected clock, and poison-recovering lock access so a
/// panicking caller can never wedge tracing for the rest of the process.
pub struct Tracer {
    enabled: AtomicBool,
    clock: Arc<dyn Clock + Send + Sync>,
    capacity: usize,
    inner: Mutex<Buf>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An enabled tracer on the real monotonic clock with the default
    /// capacity.
    pub fn new() -> Tracer {
        Tracer::with_clock(Arc::new(SystemClock), DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer on an explicit clock (tests pass
    /// [`ManualClock`](pcqe_core::clock::ManualClock) for byte-stable
    /// exports) with an explicit event capacity.
    pub fn with_clock(clock: Arc<dyn Clock + Send + Sync>, capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(true),
            clock,
            capacity: capacity.max(1),
            inner: Mutex::new(Buf::with_capacity(capacity.max(1))),
        }
    }

    /// A tracer that starts disabled: every emit is a no-op until
    /// [`Tracer::set_enabled`] turns it on. This is the engine's resting
    /// state — `Database::trace_query` flips it on for one query.
    pub fn disabled() -> Tracer {
        let t = Tracer::new();
        t.set_enabled(false);
        t
    }

    /// Toggle tracing. Already-buffered events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is tracing currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The tracer's clock.
    pub fn clock(&self) -> &Arc<dyn Clock + Send + Sync> {
        &self.clock
    }

    fn lock(&self) -> MutexGuard<'_, Buf> {
        // Poison recovery, same as the recorder: trace events are plain
        // data, always valid, so recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_nanos(&self) -> u64 {
        duration_to_nanos(self.clock.monotonic())
    }

    /// Record one event under the lock; drops (and counts) when full.
    fn push(buf: &mut Buf, capacity: usize, ts_nanos: u64, kind: TraceEventKind) {
        if buf.events.len() >= capacity {
            buf.dropped = buf.dropped.saturating_add(1);
            return;
        }
        let seq = buf.next_seq;
        buf.next_seq = buf.next_seq.saturating_add(1);
        buf.events.push(TraceEvent {
            seq,
            ts_nanos,
            kind,
        });
    }

    /// Take the collected timeline and reset the buffer (sequence and
    /// span counters restart at zero, so every drained trace is
    /// self-contained and byte-stable).
    pub fn drain(&self) -> QueryTrace {
        let mut buf = self.lock();
        let events = std::mem::take(&mut buf.events);
        let dropped = buf.dropped;
        *buf = Buf::with_capacity(self.capacity);
        QueryTrace {
            events,
            dropped,
            capacity: self.capacity,
        }
    }
}

impl TraceSink for Tracer {
    fn span_begin(&self, name: &str) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let ts = self.now_nanos();
        let mut buf = self.lock();
        buf.next_span = buf.next_span.saturating_add(1);
        let id = buf.next_span;
        let parent = buf.open.last().map(|&(pid, _)| pid);
        // The open stack is tracked even when the event itself is
        // dropped, so later span ends still resolve their names.
        buf.open.push((id, name.to_owned()));
        Self::push(
            &mut buf,
            self.capacity,
            ts,
            TraceEventKind::SpanBegin {
                id,
                parent,
                name: name.to_owned(),
            },
        );
        id
    }

    fn span_end(&self, id: u64) {
        if id == 0 || !self.is_enabled() {
            return;
        }
        let ts = self.now_nanos();
        let mut buf = self.lock();
        let Some(pos) = buf.open.iter().rposition(|&(open_id, _)| open_id == id) else {
            return; // unknown or already-closed span: ignore
        };
        let (_, name) = buf.open.remove(pos);
        Self::push(
            &mut buf,
            self.capacity,
            ts,
            TraceEventKind::SpanEnd { id, name },
        );
    }

    fn instant(&self, name: &str, detail: &str) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now_nanos();
        let mut buf = self.lock();
        Self::push(
            &mut buf,
            self.capacity,
            ts,
            TraceEventKind::Instant {
                name: name.to_owned(),
                detail: detail.to_owned(),
            },
        );
    }

    fn decision(&self, decision: &Decision) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now_nanos();
        let mut buf = self.lock();
        Self::push(
            &mut buf,
            self.capacity,
            ts,
            TraceEventKind::Decision(decision.clone()),
        );
    }
}

/// The tracer doubles as a [`ParObserver`], so scheduler batches appear
/// on the same timeline as the spans that spawned them: one
/// `"par.batch"` instant per batch plus one `"par.lane"` instant per
/// worker slot (ROADMAP item 5's worker timelines hang off these).
impl ParObserver for Tracer {
    fn now_nanos(&self) -> u64 {
        Tracer::now_nanos(self)
    }

    fn batch(&self, report: &BatchReport) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            "par.batch",
            &format!(
                "items={} workers={} chunks={} stalls={}",
                report.items, report.workers, report.chunks, report.reassembly_stalls
            ),
        );
        for (w, (claimed, busy)) in report
            .chunks_claimed
            .iter()
            .zip(report.busy_nanos.iter())
            .enumerate()
        {
            self.instant(
                "par.lane",
                &format!("worker={w} claimed={claimed} busy_nanos={busy}"),
            );
        }
    }
}

/// Fan a scheduler batch out to two observers (the metrics [`crate::Recorder`]
/// and the [`Tracer`]) while reading time from one clock — the first
/// observer's — so busy-time measurements stay single-sourced.
pub struct ObserverPair<'a> {
    a: &'a dyn ParObserver,
    b: &'a dyn ParObserver,
}

impl<'a> ObserverPair<'a> {
    /// Pair `a` (the timing source) with `b`.
    pub fn new(a: &'a dyn ParObserver, b: &'a dyn ParObserver) -> ObserverPair<'a> {
        ObserverPair { a, b }
    }
}

impl ParObserver for ObserverPair<'_> {
    fn now_nanos(&self) -> u64 {
        self.a.now_nanos()
    }

    fn batch(&self, report: &BatchReport) {
        self.a.batch(report);
        self.b.batch(report);
    }
}

/// Clamp a [`Duration`] to `u64` nanoseconds.
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_core::clock::ManualClock;
    use pcqe_par::ConfidencePath;

    fn manual(capacity: usize) -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_clock(clock.clone(), capacity);
        (clock, tracer)
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let (clock, t) = manual(16);
        let root = t.span_begin("query");
        clock.advance(Duration::from_micros(5));
        let child = t.span_begin("score");
        t.instant("beta.skip", "tuple=t01");
        t.span_end(child);
        t.span_end(root);
        let trace = t.drain();
        assert_eq!(trace.events.len(), 5);
        assert_eq!(trace.dropped, 0);
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        match &trace.events[0].kind {
            TraceEventKind::SpanBegin { id, parent, name } => {
                assert_eq!((*id, *parent, name.as_str()), (1, None, "query"));
            }
            other => panic!("expected root begin, got {other:?}"),
        }
        match &trace.events[1].kind {
            TraceEventKind::SpanBegin { id, parent, name } => {
                assert_eq!((*id, *parent, name.as_str()), (2, Some(1), "score"));
            }
            other => panic!("expected child begin, got {other:?}"),
        }
        assert_eq!(trace.events[1].ts_nanos, 5_000);
        match &trace.events[3].kind {
            TraceEventKind::SpanEnd { id, name } => {
                assert_eq!((*id, name.as_str()), (2, "score"));
            }
            other => panic!("expected child end, got {other:?}"),
        }
    }

    #[test]
    fn disabled_tracer_is_inert_and_returns_zero_ids() {
        let t = Tracer::disabled();
        assert_eq!(t.span_begin("query"), 0);
        t.span_end(0);
        t.instant("x", "y");
        t.decision(&Decision {
            tuple: 1,
            released: true,
            path: ConfidencePath::Exact,
            beta: 0.5,
            confidence: 0.9,
            lineage_size: 0,
        });
        let trace = t.drain();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn full_buffer_drops_new_events_and_counts_them() {
        let (_, t) = manual(2);
        let a = t.span_begin("a");
        let b = t.span_begin("b");
        t.instant("overflow", "");
        t.span_end(b);
        t.span_end(a);
        let trace = t.drain();
        assert_eq!(trace.events.len(), 2, "capacity bounds the buffer");
        assert_eq!(trace.dropped, 3);
        assert_eq!(trace.capacity, 2);
    }

    #[test]
    fn drain_resets_sequence_and_span_ids() {
        let (_, t) = manual(8);
        let id = t.span_begin("first");
        t.span_end(id);
        let first = t.drain();
        let id = t.span_begin("second");
        t.span_end(id);
        let second = t.drain();
        assert_eq!(first.events.len(), 2);
        assert_eq!(second.events.len(), 2);
        assert_eq!(second.events[0].seq, 0, "seq restarts per trace");
        match &second.events[0].kind {
            TraceEventKind::SpanBegin { id, .. } => assert_eq!(*id, 1, "span ids restart"),
            other => panic!("expected begin, got {other:?}"),
        }
    }

    #[test]
    fn unknown_span_end_is_ignored() {
        let (_, t) = manual(8);
        t.span_end(77);
        assert!(t.drain().events.is_empty());
    }

    #[test]
    fn par_batches_become_lane_instants() {
        let (_, t) = manual(16);
        ParObserver::batch(
            &t,
            &BatchReport {
                items: 10,
                workers: 2,
                chunks: 4,
                chunks_claimed: vec![3, 1],
                busy_nanos: vec![120, 40],
                reassembly_stalls: 1,
            },
        );
        let trace = t.drain();
        assert_eq!(trace.events.len(), 3, "one batch + two lanes");
        match &trace.events[0].kind {
            TraceEventKind::Instant { name, detail } => {
                assert_eq!(name, "par.batch");
                assert_eq!(detail, "items=10 workers=2 chunks=4 stalls=1");
            }
            other => panic!("expected batch instant, got {other:?}"),
        }
        match &trace.events[2].kind {
            TraceEventKind::Instant { name, detail } => {
                assert_eq!(name, "par.lane");
                assert_eq!(detail, "worker=1 claimed=1 busy_nanos=40");
            }
            other => panic!("expected lane instant, got {other:?}"),
        }
    }

    #[test]
    fn observer_pair_fans_out_batches() {
        let (_, a) = manual(8);
        let (_, b) = manual(8);
        let pair = ObserverPair::new(&a, &b);
        pair.batch(&BatchReport {
            items: 1,
            workers: 1,
            chunks: 1,
            chunks_claimed: vec![1],
            busy_nanos: vec![0],
            reassembly_stalls: 0,
        });
        assert_eq!(a.drain().events.len(), 2);
        assert_eq!(b.drain().events.len(), 2);
    }

    #[test]
    fn decisions_surface_through_the_view() {
        let (_, t) = manual(8);
        t.decision(&Decision {
            tuple: 13,
            released: false,
            path: ConfidencePath::BetaSkipped,
            beta: 0.06,
            confidence: 0.04,
            lineage_size: 3,
        });
        let trace = t.drain();
        let ds = trace.decisions();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].tuple, 13);
        assert_eq!(ds[0].path, ConfidencePath::BetaSkipped);
    }
}
