//! `pcqe-obs-validate` — validate an exported JSON artifact.
//!
//! Usage: `pcqe-obs-validate [--schema metrics|lint|trace|sarif] [--gate <baseline.json>] <file.json>`
//!
//! Schemas:
//!
//! * `metrics` (default) — the document has the metrics-snapshot shape
//!   (`counters`/`gauges`/`histograms`/`spans` object members);
//! * `lint` — the document has the `pcqe-lint --format json` report
//!   shape (`tool`/`format_version`, a `findings` array of
//!   rule/severity/path/line/message records, and a `summary` object);
//! * `trace` — the document has the Chrome trace-event shape emitted by
//!   `pcqe_obs::trace_export::to_chrome_json` (`traceEvents` array of
//!   name/ph/ts/pid/tid records plus `dropped`/`capacity` accounting);
//! * `sarif` — the document has the SARIF 2.1.0 shape emitted by
//!   `pcqe-lint --format sarif` (a `runs` array whose single run names
//!   the `pcqe-lint` driver, declares its rule ids, and carries
//!   `results` whose `ruleId`/`level`/`message`/`locations` members are
//!   well-formed and whose every `ruleId` is a declared rule).
//!
//! Every check reports **all** violations it finds, in document order
//! (array index order, then fixed key order), before exiting — a CI run
//! never plays whack-a-mole with one error at a time. Only an unparsable
//! document short-circuits, since nothing structural can be checked.
//!
//! `--gate <baseline.json>` compares the checked file against a
//! checked-in baseline; the direction depends on the schema:
//!
//! * `metrics` — the baseline is a *floor*: every counter and gauge
//!   named in the baseline must be present in the checked file with a
//!   value ≥ the baseline's. This is `ci.sh`'s bench-regression gate —
//!   the baseline pins minimum cache hit counts and speedups, and a run
//!   that falls below any of them fails.
//! * `lint` — the baseline is a *ceiling*: the summary's `errors` and
//!   `suppressed` totals, and each per-rule `errors`/`suppressed` count
//!   in the baseline's `rules` section, must not be exceeded (a rule
//!   absent from the checked report counts as zero). This is `ci.sh`'s
//!   lint-regression gate — new violations and new suppressions both
//!   fail even when they hide inside an individually-waived rule.
//! * `trace` — the baseline is a *floor on event counts*: for every
//!   distinct event name in the baseline's `traceEvents`, the checked
//!   trace must contain at least as many events of that name. This is
//!   `ci.sh`'s trace-regression gate — a refactor that silently drops a
//!   lifecycle span, a cache event, or a per-tuple decision fails.
//! * `sarif` — the baseline is a *ceiling on result counts*: the total
//!   number of `results` and the per-`ruleId` counts in the baseline
//!   must not be exceeded (a rule absent from the checked report counts
//!   as zero). This is `ci.sh`'s SARIF-regression gate, the machine
//!   interchange twin of the `lint` gate.
//!
//! Exit codes: `0` the document parses, matches the schema and clears
//! the gate, `1` the document is malformed or regresses against the
//! baseline, `2` usage or I/O error. Used by `ci.sh` as the smoke check
//! on `results/*.json` — hermetically, with the crate's own parser.

use pcqe_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schema = Schema::Metrics;
    let mut path: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage = || {
        eprintln!(
            "usage: pcqe-obs-validate [--schema metrics|lint|trace|sarif] \
             [--gate <baseline.json>] <file.json>"
        );
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("metrics") => schema = Schema::Metrics,
                Some("lint") => schema = Schema::Lint,
                Some("trace") => schema = Schema::Trace,
                Some("sarif") => schema = Schema::Sarif,
                _ => return usage(),
            },
            "--gate" => match args.next() {
                Some(p) => gate = Some(p),
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = |file: &str, errors: &[String]| {
        for e in errors {
            eprintln!("pcqe-obs-validate: {file}: {e}");
        }
    };
    let summary = match schema.validate(&text) {
        Ok(summary) => summary,
        Err(errors) => {
            report(&path, &errors);
            return ExitCode::from(1);
        }
    };
    if let Some(gate_path) = gate {
        let baseline = match std::fs::read_to_string(&gate_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pcqe-obs-validate: {gate_path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(errors) = schema.validate(&baseline) {
            report(&gate_path, &errors);
            return ExitCode::from(1);
        }
        match schema.gate(&baseline, &text) {
            Ok(n) => {
                println!(
                    "{path}: ok ({summary}; gate {gate_path}: {n} {})",
                    schema.gate_noun()
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("pcqe-obs-validate: {path}: regression vs {gate_path}: {e}");
                }
                ExitCode::from(1)
            }
        }
    } else {
        println!("{path}: ok ({summary})");
        ExitCode::SUCCESS
    }
}

/// Which document shape to check.
#[derive(Clone, Copy)]
enum Schema {
    Metrics,
    Lint,
    Trace,
    Sarif,
}

impl Schema {
    fn validate(self, text: &str) -> Result<String, Vec<String>> {
        match self {
            Schema::Metrics => validate_metrics(text),
            Schema::Lint => validate_lint(text),
            Schema::Trace => validate_trace(text),
            Schema::Sarif => validate_sarif(text),
        }
    }

    fn gate(self, baseline: &str, actual: &str) -> Result<usize, Vec<String>> {
        match self {
            Schema::Metrics => gate_metrics(baseline, actual),
            Schema::Lint => gate_lint(baseline, actual),
            Schema::Trace => gate_trace(baseline, actual),
            Schema::Sarif => gate_sarif(baseline, actual),
        }
    }

    fn gate_noun(self) -> &'static str {
        match self {
            Schema::Metrics => "floor(s) cleared",
            Schema::Lint => "ceiling(s) respected",
            Schema::Trace => "event floor(s) cleared",
            Schema::Sarif => "result ceiling(s) respected",
        }
    }
}

/// Parse, or fail with the single fatal error nothing else can follow.
fn parse_doc(text: &str) -> Result<Value, Vec<String>> {
    json::parse(text).map_err(|e| vec![e])
}

/// Check that `text` is a metrics document; return a one-line summary or
/// every violation in key order.
fn validate_metrics(text: &str) -> Result<String, Vec<String>> {
    let doc = parse_doc(text)?;
    let Some(obj) = doc.as_object() else {
        return Err(vec!["top level must be an object".to_owned()]);
    };
    let mut sizes = Vec::new();
    let mut errors = Vec::new();
    for key in ["counters", "gauges", "histograms", "spans"] {
        match obj.get(key) {
            None => errors.push(format!("missing `{key}` member")),
            Some(section) => match section.as_object() {
                None => errors.push(format!("`{key}` must be an object")),
                Some(members) => sizes.push(format!("{key}={}", members.len())),
            },
        }
    }
    if errors.is_empty() {
        Ok(sizes.join(" "))
    } else {
        Err(errors)
    }
}

/// Enforce `baseline` as a floor on `actual` (both already known to be
/// valid metrics documents): every counter and gauge named in the
/// baseline must exist in `actual` with a value ≥ the baseline's.
/// Returns the number of floors checked, or every regressing metric in
/// name order.
fn gate_metrics(baseline: &str, actual: &str) -> Result<usize, Vec<String>> {
    let base = parse_doc(baseline)?;
    let act = parse_doc(actual)?;
    let section = |doc: &Value, key: &str| -> Vec<(String, f64)> {
        doc.as_object()
            .and_then(|o| o.get(key).and_then(Value::as_object).cloned())
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(name, v)| v.as_f64().map(|x| (name.clone(), x)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut floors = 0;
    let mut errors = Vec::new();
    for key in ["counters", "gauges"] {
        let actual_values: BTreeMap<String, f64> = section(&act, key).into_iter().collect();
        for (name, floor) in section(&base, key) {
            match actual_values.get(&name) {
                None => errors.push(format!("{key} `{name}` (floor {floor}) is missing")),
                Some(&value) if value < floor => {
                    errors.push(format!("{key} `{name}` = {value}, below the floor {floor}"));
                }
                Some(_) => floors += 1,
            }
        }
    }
    if errors.is_empty() {
        Ok(floors)
    } else {
        Err(errors)
    }
}

/// Enforce `baseline` as a ceiling on `actual` (both already known to
/// be valid lint reports): the summary's `errors` and `suppressed`
/// totals must not exceed the baseline's, and neither may any per-rule
/// count named in the baseline's `rules` section (a rule missing from
/// `actual` counts as zero — rules only ever tighten). Returns the
/// number of ceilings checked, or every exceeded count in baseline
/// order.
fn gate_lint(baseline: &str, actual: &str) -> Result<usize, Vec<String>> {
    let base = parse_doc(baseline)?;
    let act = parse_doc(actual)?;
    let count = |doc: &Value, section: &str, key: &str| -> Option<u64> {
        doc.as_object()
            .and_then(|o| o.get(section).and_then(Value::as_object))
            .and_then(|s| s.get(key).and_then(Value::as_u64))
    };
    let mut ceilings = 0;
    let mut errors = Vec::new();
    for key in ["errors", "suppressed"] {
        let Some(ceiling) = count(&base, "summary", key) else {
            errors.push(format!("baseline summary missing numeric `{key}`"));
            continue;
        };
        let value = count(&act, "summary", key).unwrap_or(0);
        if value > ceiling {
            errors.push(format!(
                "summary `{key}` = {value}, above the ceiling {ceiling}"
            ));
        } else {
            ceilings += 1;
        }
    }
    let rules = base
        .as_object()
        .and_then(|o| o.get("rules").and_then(Value::as_object).cloned())
        .unwrap_or_default();
    for (rule, limits) in &rules {
        let Some(limits) = limits.as_object() else {
            errors.push(format!("baseline rules `{rule}` must be an object"));
            continue;
        };
        for key in ["errors", "suppressed"] {
            let Some(ceiling) = limits.get(key).and_then(Value::as_u64) else {
                errors.push(format!("baseline rules `{rule}` missing numeric `{key}`"));
                continue;
            };
            let value = act
                .as_object()
                .and_then(|o| o.get("rules").and_then(Value::as_object))
                .and_then(|r| r.get(rule).and_then(Value::as_object))
                .and_then(|l| l.get(key).and_then(Value::as_u64))
                .unwrap_or(0);
            if value > ceiling {
                errors.push(format!(
                    "rule `{rule}` {key} = {value}, above the ceiling {ceiling}"
                ));
            } else {
                ceilings += 1;
            }
        }
    }
    if errors.is_empty() {
        Ok(ceilings)
    } else {
        Err(errors)
    }
}

/// Check that `text` is a `pcqe-lint` JSON report; return a summary or
/// every violation in document order.
fn validate_lint(text: &str) -> Result<String, Vec<String>> {
    let doc = parse_doc(text)?;
    let Some(obj) = doc.as_object() else {
        return Err(vec!["top level must be an object".to_owned()]);
    };
    let mut errors = Vec::new();
    match obj.get("tool").and_then(Value::as_str) {
        Some("pcqe-lint") => {}
        Some(tool) => errors.push(format!("`tool` is `{tool}`, expected `pcqe-lint`")),
        None => errors.push("missing string `tool` member".to_owned()),
    }
    if obj.get("format_version").and_then(Value::as_u64).is_none() {
        errors.push("missing numeric `format_version` member".to_owned());
    }
    let mut finding_count = 0;
    match obj.get("findings").and_then(Value::as_array) {
        None => errors.push("missing `findings` array".to_owned()),
        Some(findings) => {
            finding_count = findings.len();
            for (i, f) in findings.iter().enumerate() {
                let Some(f) = f.as_object() else {
                    errors.push(format!("findings[{i}] must be an object"));
                    continue;
                };
                for key in ["rule", "severity", "path", "message"] {
                    if f.get(key).and_then(Value::as_str).is_none() {
                        errors.push(format!("findings[{i}] missing string `{key}`"));
                    }
                }
                if f.get("line").and_then(Value::as_u64).is_none() {
                    errors.push(format!("findings[{i}] missing numeric `line`"));
                }
            }
        }
    }
    let mut counts = Vec::new();
    match obj.get("summary").and_then(Value::as_object) {
        None => errors.push("missing `summary` object".to_owned()),
        Some(summary) => {
            for key in ["files", "manifests", "errors", "warnings", "suppressed"] {
                match summary.get(key).and_then(Value::as_u64) {
                    Some(n) => counts.push(format!("{key}={n}")),
                    None => errors.push(format!("summary missing numeric `{key}`")),
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(format!("findings={finding_count} {}", counts.join(" ")))
    } else {
        Err(errors)
    }
}

/// Check that `text` is a SARIF 2.1.0 document as emitted by
/// `pcqe-lint --format sarif`; return a summary or every violation in
/// document order. Beyond shape, this checks the one cross-reference
/// SARIF consumers rely on: every result's `ruleId` must be declared in
/// the driver's `rules` array.
fn validate_sarif(text: &str) -> Result<String, Vec<String>> {
    let doc = parse_doc(text)?;
    let Some(obj) = doc.as_object() else {
        return Err(vec!["top level must be an object".to_owned()]);
    };
    let mut errors = Vec::new();
    match obj.get("version").and_then(Value::as_str) {
        Some("2.1.0") => {}
        Some(v) => errors.push(format!("`version` is `{v}`, expected `2.1.0`")),
        None => errors.push("missing string `version` member".to_owned()),
    }
    if obj.get("$schema").and_then(Value::as_str).is_none() {
        errors.push("missing string `$schema` member".to_owned());
    }
    let mut rule_count = 0;
    let mut result_count = 0;
    let mut run_count = 0;
    match obj.get("runs").and_then(Value::as_array) {
        None => errors.push("missing `runs` array".to_owned()),
        Some([]) => errors.push("`runs` must not be empty".to_owned()),
        Some(runs) => {
            run_count = runs.len();
            for (r, run) in runs.iter().enumerate() {
                let Some(run) = run.as_object() else {
                    errors.push(format!("runs[{r}] must be an object"));
                    continue;
                };
                let driver = run
                    .get("tool")
                    .and_then(Value::as_object)
                    .and_then(|t| t.get("driver").and_then(Value::as_object));
                let mut declared: Vec<&str> = Vec::new();
                match driver {
                    None => errors.push(format!("runs[{r}] missing `tool.driver` object")),
                    Some(driver) => {
                        match driver.get("name").and_then(Value::as_str) {
                            Some("pcqe-lint") => {}
                            Some(name) => errors.push(format!(
                                "runs[{r}] driver name is `{name}`, expected `pcqe-lint`"
                            )),
                            None => errors.push(format!("runs[{r}] driver missing string `name`")),
                        }
                        match driver.get("rules").and_then(Value::as_array) {
                            None => errors.push(format!("runs[{r}] driver missing `rules` array")),
                            Some(rules) => {
                                rule_count += rules.len();
                                for (i, rule) in rules.iter().enumerate() {
                                    match rule
                                        .as_object()
                                        .and_then(|o| o.get("id").and_then(Value::as_str))
                                    {
                                        Some(id) => declared.push(id),
                                        None => errors.push(format!(
                                            "runs[{r}] rules[{i}] missing string `id`"
                                        )),
                                    }
                                }
                            }
                        }
                    }
                }
                match run.get("results").and_then(Value::as_array) {
                    None => errors.push(format!("runs[{r}] missing `results` array")),
                    Some(results) => {
                        result_count += results.len();
                        for (i, result) in results.iter().enumerate() {
                            let Some(result) = result.as_object() else {
                                errors.push(format!("runs[{r}] results[{i}] must be an object"));
                                continue;
                            };
                            match result.get("ruleId").and_then(Value::as_str) {
                                None => errors.push(format!(
                                    "runs[{r}] results[{i}] missing string `ruleId`"
                                )),
                                Some(id) if !declared.contains(&id) => errors.push(format!(
                                    "runs[{r}] results[{i}] ruleId `{id}` is not declared \
                                     in the driver's rules"
                                )),
                                Some(_) => {}
                            }
                            match result.get("level").and_then(Value::as_str) {
                                Some("error" | "warning" | "note") => {}
                                Some(level) => errors.push(format!(
                                    "runs[{r}] results[{i}] `level` is `{level}`, \
                                     expected error, warning or note"
                                )),
                                None => errors
                                    .push(format!("runs[{r}] results[{i}] missing string `level`")),
                            }
                            if result
                                .get("message")
                                .and_then(Value::as_object)
                                .and_then(|m| m.get("text").and_then(Value::as_str))
                                .is_none()
                            {
                                errors
                                    .push(format!("runs[{r}] results[{i}] missing `message.text`"));
                            }
                            match result.get("locations").and_then(Value::as_array) {
                                None => errors.push(format!(
                                    "runs[{r}] results[{i}] missing `locations` array"
                                )),
                                Some([]) => errors.push(format!(
                                    "runs[{r}] results[{i}] `locations` must not be empty"
                                )),
                                Some(locs) => {
                                    for (l, loc) in locs.iter().enumerate() {
                                        let uri = loc
                                            .as_object()
                                            .and_then(|o| {
                                                o.get("physicalLocation").and_then(Value::as_object)
                                            })
                                            .and_then(|p| {
                                                p.get("artifactLocation").and_then(Value::as_object)
                                            })
                                            .and_then(|a| a.get("uri").and_then(Value::as_str));
                                        if uri.is_none() {
                                            errors.push(format!(
                                                "runs[{r}] results[{i}] locations[{l}] missing \
                                                 `physicalLocation.artifactLocation.uri`"
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(format!(
            "runs={run_count} rules={rule_count} results={result_count}"
        ))
    } else {
        Err(errors)
    }
}

/// Ceiling gate for SARIF reports: total results and per-`ruleId` result
/// counts must not exceed the baseline's (absent rules count as zero) —
/// the interchange-format twin of [`gate_lint`].
fn gate_sarif(baseline: &str, actual: &str) -> Result<usize, Vec<String>> {
    let counts = |text: &str| -> Result<BTreeMap<String, u64>, Vec<String>> {
        let doc = parse_doc(text)?;
        let mut out = BTreeMap::new();
        let runs = doc
            .as_object()
            .and_then(|o| o.get("runs").and_then(Value::as_array));
        for run in runs.unwrap_or_default() {
            let results = run
                .as_object()
                .and_then(|o| o.get("results").and_then(Value::as_array));
            for result in results.unwrap_or_default() {
                if let Some(id) = result
                    .as_object()
                    .and_then(|o| o.get("ruleId").and_then(Value::as_str))
                {
                    *out.entry(id.to_owned()).or_insert(0) += 1;
                }
            }
        }
        Ok(out)
    };
    let base = counts(baseline)?;
    let act = counts(actual)?;
    let mut ceilings = 0;
    let mut errors = Vec::new();
    let base_total: u64 = base.values().sum();
    let act_total: u64 = act.values().sum();
    if act_total > base_total {
        errors.push(format!(
            "total results = {act_total}, above the ceiling {base_total}"
        ));
    } else {
        ceilings += 1;
    }
    // Every rule named by either side gets a ceiling: the baseline's
    // count, or zero for a rule the baseline never saw.
    let mut rules: Vec<&String> = base.keys().chain(act.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let ceiling = base.get(rule).copied().unwrap_or(0);
        let value = act.get(rule).copied().unwrap_or(0);
        if value > ceiling {
            errors.push(format!(
                "rule `{rule}` results = {value}, above the ceiling {ceiling}"
            ));
        } else {
            ceilings += 1;
        }
    }
    if errors.is_empty() {
        Ok(ceilings)
    } else {
        Err(errors)
    }
}

/// Check that `text` is a Chrome trace-event document as emitted by
/// `pcqe_obs::trace_export::to_chrome_json`; return a summary or every
/// violation in document order.
fn validate_trace(text: &str) -> Result<String, Vec<String>> {
    let doc = parse_doc(text)?;
    let Some(obj) = doc.as_object() else {
        return Err(vec!["top level must be an object".to_owned()]);
    };
    let mut errors = Vec::new();
    let mut dropped = 0;
    match obj.get("dropped").and_then(Value::as_u64) {
        Some(n) => dropped = n,
        None => errors.push("missing numeric `dropped` member".to_owned()),
    }
    if obj.get("capacity").and_then(Value::as_u64).is_none() {
        errors.push("missing numeric `capacity` member".to_owned());
    }
    let mut event_count = 0;
    match obj.get("traceEvents").and_then(Value::as_array) {
        None => errors.push("missing `traceEvents` array".to_owned()),
        Some(events) => {
            event_count = events.len();
            for (i, e) in events.iter().enumerate() {
                let Some(e) = e.as_object() else {
                    errors.push(format!("traceEvents[{i}] must be an object"));
                    continue;
                };
                if e.get("name").and_then(Value::as_str).is_none() {
                    errors.push(format!("traceEvents[{i}] missing string `name`"));
                }
                match e.get("ph").and_then(Value::as_str) {
                    Some("B" | "E" | "i") => {}
                    Some(ph) => errors.push(format!(
                        "traceEvents[{i}] `ph` is `{ph}`, expected B, E or i"
                    )),
                    None => errors.push(format!("traceEvents[{i}] missing string `ph`")),
                }
                for key in ["ts", "pid", "tid"] {
                    if e.get(key).and_then(Value::as_f64).is_none() {
                        errors.push(format!("traceEvents[{i}] missing numeric `{key}`"));
                    }
                }
                if e.get("args").and_then(Value::as_object).is_none() {
                    errors.push(format!("traceEvents[{i}] missing `args` object"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(format!("events={event_count} dropped={dropped}"))
    } else {
        Err(errors)
    }
}

/// Count `traceEvents` entries by name.
fn event_counts(doc: &Value) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    if let Some(events) = doc
        .as_object()
        .and_then(|o| o.get("traceEvents").and_then(Value::as_array))
    {
        for e in events {
            if let Some(name) = e
                .as_object()
                .and_then(|e| e.get("name").and_then(Value::as_str))
            {
                *counts.entry(name.to_owned()).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Enforce `baseline` as a floor on `actual`'s per-name event counts
/// (both already known to be valid trace documents): every event name in
/// the baseline must appear in `actual` at least as many times. Returns
/// the number of floors checked, or every under-represented name in
/// name order.
fn gate_trace(baseline: &str, actual: &str) -> Result<usize, Vec<String>> {
    let base = parse_doc(baseline)?;
    let act = parse_doc(actual)?;
    let actual_counts = event_counts(&act);
    let mut floors = 0;
    let mut errors = Vec::new();
    for (name, floor) in event_counts(&base) {
        let count = actual_counts.get(&name).copied().unwrap_or(0);
        if count < floor {
            errors.push(format!(
                "event `{name}` appears {count} time(s), below the floor {floor}"
            ));
        } else {
            floors += 1;
        }
    }
    if errors.is_empty() {
        Ok(floors)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::{
        gate_lint, gate_metrics, gate_trace, validate_lint, validate_metrics, validate_trace,
    };

    const fn empty_sections() -> &'static str {
        "\"histograms\": {}, \"spans\": {}"
    }

    #[test]
    fn gate_passes_when_every_floor_is_met() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \
              \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 250, \"extra\": 1}}, \
              \"gauges\": {{\"bench.cache.speedup\": 11.5}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(2));
    }

    #[test]
    fn gate_fails_on_a_value_below_the_floor() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 3.2}}, {}}}",
            empty_sections()
        );
        let errors = gate_metrics(&baseline, &actual).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("bench.cache.speedup"), "{errors:?}");
        assert!(errors[0].contains("below the floor"), "{errors:?}");
    }

    #[test]
    fn gate_reports_every_regression_not_just_the_first() {
        let baseline = format!(
            "{{\"counters\": {{\"a\": 5, \"b\": 5}}, \"gauges\": {{\"c\": 1.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"a\": 1, \"b\": 2}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let errors = gate_metrics(&baseline, &actual).unwrap_err();
        // Two counters below floor plus one missing gauge, name order.
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].contains("`a`"), "{errors:?}");
        assert!(errors[1].contains("`b`"), "{errors:?}");
        assert!(errors[2].contains("`c`") && errors[2].contains("missing"));
    }

    #[test]
    fn gate_fails_on_a_missing_metric() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let errors = gate_metrics(&baseline, &actual).unwrap_err();
        assert!(errors[0].contains("is missing"), "{errors:?}");
    }

    #[test]
    fn gate_ignores_metrics_absent_from_the_baseline() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"anything\": 7}}, \"gauges\": {{\"x\": 0.1}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(0));
    }

    #[test]
    fn accepts_a_minimal_metrics_document() {
        let doc = "{\"counters\": {\"a\": 1}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}";
        assert_eq!(
            validate_metrics(doc),
            Ok("counters=1 gauges=0 histograms=0 spans=0".to_owned())
        );
    }

    #[test]
    fn rejects_missing_sections_and_non_objects() {
        assert!(validate_metrics("[]").is_err());
        assert!(validate_metrics("{\"counters\": {}}").is_err());
        assert!(validate_metrics(
            "{\"counters\": 1, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
        assert!(validate_metrics("not json").is_err());
    }

    #[test]
    fn metrics_violations_are_all_reported_in_key_order() {
        // Three sections missing, one malformed: four errors, fixed order.
        let errors = validate_metrics("{\"gauges\": 3}").unwrap_err();
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors[0].contains("`counters`"), "{errors:?}");
        assert!(errors[1].contains("`gauges` must be an object"));
        assert!(errors[2].contains("`histograms`"), "{errors:?}");
        assert!(errors[3].contains("`spans`"), "{errors:?}");
    }

    /// Build a minimal lint report with the given totals and per-rule
    /// counts (format version 2's `rules` section).
    fn lint_report(errors: u64, suppressed: u64, rules: &[(&str, u64, u64)]) -> String {
        let rules = rules
            .iter()
            .map(|(code, e, s)| format!("\"{code}\": {{\"errors\": {e}, \"suppressed\": {s}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"tool\": \"pcqe-lint\", \"format_version\": 2, \"findings\": [], \
             \"rules\": {{{rules}}}, \
             \"summary\": {{\"files\": 1, \"manifests\": 1, \"errors\": {errors}, \
             \"warnings\": 0, \"suppressed\": {suppressed}}}}}"
        )
    }

    #[test]
    fn lint_gate_passes_at_or_below_every_ceiling() {
        let baseline = lint_report(0, 126, &[("PCQE-P002", 0, 100), ("PCQE-C003", 0, 0)]);
        let actual = lint_report(0, 120, &[("PCQE-P002", 0, 94), ("PCQE-C003", 0, 0)]);
        // 2 summary ceilings + 2 per rule.
        assert_eq!(gate_lint(&baseline, &actual), Ok(6));
    }

    #[test]
    fn lint_gate_fails_when_a_summary_total_grows() {
        let baseline = lint_report(0, 126, &[]);
        let actual = lint_report(1, 126, &[]);
        let errors = gate_lint(&baseline, &actual).unwrap_err();
        assert!(errors[0].contains("summary `errors` = 1"), "{errors:?}");
        assert!(errors[0].contains("above the ceiling 0"), "{errors:?}");
    }

    #[test]
    fn lint_gate_fails_when_a_single_rule_regresses() {
        // Totals stay flat (a suppression moved between rules), but the
        // per-rule ceiling still catches the C003 regression.
        let baseline = lint_report(0, 2, &[("PCQE-P002", 0, 2), ("PCQE-C003", 0, 0)]);
        let actual = lint_report(0, 2, &[("PCQE-P002", 0, 1), ("PCQE-C003", 0, 1)]);
        let errors = gate_lint(&baseline, &actual).unwrap_err();
        assert!(
            errors[0].contains("rule `PCQE-C003` suppressed = 1"),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_gate_treats_rules_missing_from_the_actual_report_as_zero() {
        let baseline = lint_report(0, 5, &[("PCQE-P002", 0, 5)]);
        let actual = lint_report(0, 0, &[]);
        assert_eq!(gate_lint(&baseline, &actual), Ok(4));
    }

    #[test]
    fn accepts_a_minimal_lint_report() {
        let doc = "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
                   \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
                   \"path\": \"crates/x.rs\", \"line\": 3, \"message\": \"m\"}], \
                   \"summary\": {\"files\": 1, \"manifests\": 1, \"errors\": 1, \
                   \"warnings\": 0, \"suppressed\": 0}}";
        assert_eq!(
            validate_lint(doc),
            Ok("findings=1 files=1 manifests=1 errors=1 warnings=0 suppressed=0".to_owned())
        );
    }

    #[test]
    fn rejects_lint_reports_with_the_wrong_shape() {
        // Wrong tool name.
        assert!(validate_lint(
            "{\"tool\": \"other\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 0, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Finding missing its line.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
             \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
             \"path\": \"x\", \"message\": \"m\"}], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 1, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Summary missing a count.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0}}"
        )
        .is_err());
        // A metrics document is not a lint report.
        assert!(validate_lint(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
    }

    #[test]
    fn lint_violations_accumulate_across_findings() {
        // Two findings each missing a field, plus a missing summary key:
        // every problem is reported, in document order.
        let doc = "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
                   \"findings\": [{\"severity\": \"error\", \"path\": \"x\", \
                   \"line\": 1, \"message\": \"m\"}, {\"rule\": \"PCQE-D001\", \
                   \"severity\": \"error\", \"path\": \"x\", \"message\": \"m\"}], \
                   \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 0, \
                   \"warnings\": 0}}";
        let errors = validate_lint(doc).unwrap_err();
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].contains("findings[0] missing string `rule`"));
        assert!(errors[1].contains("findings[1] missing numeric `line`"));
        assert!(errors[2].contains("summary missing numeric `suppressed`"));
    }

    /// A tiny two-event trace document.
    fn trace_doc(events: &[(&str, &str)]) -> String {
        let events = events
            .iter()
            .map(|(name, ph)| {
                format!(
                    "{{\"name\": \"{name}\", \"ph\": \"{ph}\", \"ts\": 0.000, \
                     \"pid\": 1, \"tid\": 1, \"args\": {{}}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"dropped\": 0, \"capacity\": 4096, \
             \"traceEvents\": [{events}]}}"
        )
    }

    #[test]
    fn accepts_a_minimal_trace_document() {
        let doc = trace_doc(&[("query", "B"), ("query", "E")]);
        assert_eq!(validate_trace(&doc), Ok("events=2 dropped=0".to_owned()));
        // The exporter's own empty document validates too.
        let empty = "{\n  \"displayTimeUnit\": \"ms\",\n  \"dropped\": 0,\n  \
                     \"capacity\": 0,\n  \"traceEvents\": []\n}\n";
        assert_eq!(validate_trace(empty), Ok("events=0 dropped=0".to_owned()));
    }

    #[test]
    fn trace_violations_are_all_reported() {
        // Bad phase on event 0, missing name and args on event 1, and no
        // capacity member: four errors, document order.
        let doc = "{\"dropped\": 0, \"traceEvents\": [\
                   {\"name\": \"q\", \"ph\": \"X\", \"ts\": 0, \"pid\": 1, \
                   \"tid\": 1, \"args\": {}}, \
                   {\"ph\": \"B\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]}";
        let errors = validate_trace(doc).unwrap_err();
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors[0].contains("missing numeric `capacity`"));
        assert!(errors[1].contains("traceEvents[0] `ph` is `X`"));
        assert!(errors[2].contains("traceEvents[1] missing string `name`"));
        assert!(errors[3].contains("traceEvents[1] missing `args` object"));
    }

    #[test]
    fn trace_gate_floors_per_name_event_counts() {
        let baseline = trace_doc(&[("query", "B"), ("query", "E"), ("decision", "i")]);
        let ok = trace_doc(&[
            ("query", "B"),
            ("query", "E"),
            ("decision", "i"),
            ("extra", "i"),
        ]);
        // Two distinct names floored: query (×2) and decision (×1).
        assert_eq!(gate_trace(&baseline, &ok), Ok(2));
        let missing = trace_doc(&[("query", "B"), ("query", "E")]);
        let errors = gate_trace(&baseline, &missing).unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            errors[0].contains("event `decision` appears 0 time(s), below the floor 1"),
            "{errors:?}"
        );
    }
}
