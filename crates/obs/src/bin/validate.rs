//! `pcqe-obs-validate` — validate an exported JSON artifact.
//!
//! Usage: `pcqe-obs-validate [--schema metrics|lint] [--gate <baseline.json>] <file.json>`
//!
//! Schemas:
//!
//! * `metrics` (default) — the document has the metrics-snapshot shape
//!   (`counters`/`gauges`/`histograms`/`spans` object members);
//! * `lint` — the document has the `pcqe-lint --format json` report
//!   shape (`tool`/`format_version`, a `findings` array of
//!   rule/severity/path/line/message records, and a `summary` object).
//!
//! `--gate <baseline.json>` compares the checked file against a
//! checked-in baseline; the direction depends on the schema:
//!
//! * `metrics` — the baseline is a *floor*: every counter and gauge
//!   named in the baseline must be present in the checked file with a
//!   value ≥ the baseline's. This is `ci.sh`'s bench-regression gate —
//!   the baseline pins minimum cache hit counts and speedups, and a run
//!   that falls below any of them fails.
//! * `lint` — the baseline is a *ceiling*: the summary's `errors` and
//!   `suppressed` totals, and each per-rule `errors`/`suppressed` count
//!   in the baseline's `rules` section, must not be exceeded (a rule
//!   absent from the checked report counts as zero). This is `ci.sh`'s
//!   lint-regression gate — new violations and new suppressions both
//!   fail even when they hide inside an individually-waived rule.
//!
//! Exit codes: `0` the document parses, matches the schema and clears
//! the gate, `1` the document is malformed or regresses below the
//! baseline, `2` usage or I/O error. Used by `ci.sh` as the smoke check
//! on `results/*.json` — hermetically, with the crate's own parser.

use pcqe_obs::json::{self, Value};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schema = Schema::Metrics;
    let mut path: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage = || {
        eprintln!(
            "usage: pcqe-obs-validate [--schema metrics|lint] [--gate <baseline.json>] <file.json>"
        );
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("metrics") => schema = Schema::Metrics,
                Some("lint") => schema = Schema::Lint,
                _ => return usage(),
            },
            "--gate" => match args.next() {
                Some(p) => gate = Some(p),
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match schema {
        Schema::Metrics => validate_metrics(&text),
        Schema::Lint => validate_lint(&text),
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(gate_path) = gate {
        let baseline = match std::fs::read_to_string(&gate_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pcqe-obs-validate: {gate_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline_check = match schema {
            Schema::Metrics => validate_metrics(&baseline),
            Schema::Lint => validate_lint(&baseline),
        };
        if let Err(e) = baseline_check {
            eprintln!("pcqe-obs-validate: {gate_path}: {e}");
            return ExitCode::from(1);
        }
        let gated = match schema {
            Schema::Metrics => gate_metrics(&baseline, &text).map(|n| (n, "floor(s) cleared")),
            Schema::Lint => gate_lint(&baseline, &text).map(|n| (n, "ceiling(s) respected")),
        };
        match gated {
            Ok((n, what)) => {
                println!("{path}: ok ({summary}; gate {gate_path}: {n} {what})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pcqe-obs-validate: {path}: regression vs {gate_path}: {e}");
                ExitCode::from(1)
            }
        }
    } else {
        println!("{path}: ok ({summary})");
        ExitCode::SUCCESS
    }
}

/// Which document shape to check.
#[derive(Clone, Copy)]
enum Schema {
    Metrics,
    Lint,
}

/// Check that `text` is a metrics document; return a one-line summary.
fn validate_metrics(text: &str) -> Result<String, String> {
    let doc = json::parse(text)?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level must be an object".to_owned())?;
    let mut sizes = Vec::new();
    for key in ["counters", "gauges", "histograms", "spans"] {
        let section = obj
            .get(key)
            .ok_or_else(|| format!("missing `{key}` member"))?;
        let members = section
            .as_object()
            .ok_or_else(|| format!("`{key}` must be an object"))?;
        sizes.push(format!("{key}={}", members.len()));
    }
    Ok(sizes.join(" "))
}

/// Enforce `baseline` as a floor on `actual` (both already known to be
/// valid metrics documents): every counter and gauge named in the
/// baseline must exist in `actual` with a value ≥ the baseline's.
/// Returns the number of floors checked; the error names the first
/// regressing metric in name order.
fn gate_metrics(baseline: &str, actual: &str) -> Result<usize, String> {
    let base = json::parse(baseline)?;
    let act = json::parse(actual)?;
    let section = |doc: &Value, key: &str| -> Vec<(String, f64)> {
        doc.as_object()
            .and_then(|o| o.get(key).and_then(Value::as_object).cloned())
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(name, v)| v.as_f64().map(|x| (name.clone(), x)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut floors = 0;
    for key in ["counters", "gauges"] {
        let actual_values: std::collections::BTreeMap<String, f64> =
            section(&act, key).into_iter().collect();
        for (name, floor) in section(&base, key) {
            let Some(&value) = actual_values.get(&name) else {
                return Err(format!("{key} `{name}` (floor {floor}) is missing"));
            };
            if value < floor {
                return Err(format!("{key} `{name}` = {value}, below the floor {floor}"));
            }
            floors += 1;
        }
    }
    Ok(floors)
}

/// Enforce `baseline` as a ceiling on `actual` (both already known to
/// be valid lint reports): the summary's `errors` and `suppressed`
/// totals must not exceed the baseline's, and neither may any per-rule
/// count named in the baseline's `rules` section (a rule missing from
/// `actual` counts as zero — rules only ever tighten). Returns the
/// number of ceilings checked; the error names the first exceeded count
/// in baseline order.
fn gate_lint(baseline: &str, actual: &str) -> Result<usize, String> {
    let base = json::parse(baseline)?;
    let act = json::parse(actual)?;
    let count = |doc: &Value, section: &str, key: &str| -> Option<u64> {
        doc.as_object()
            .and_then(|o| o.get(section).and_then(Value::as_object))
            .and_then(|s| s.get(key).and_then(Value::as_u64))
    };
    let mut ceilings = 0;
    for key in ["errors", "suppressed"] {
        let Some(ceiling) = count(&base, "summary", key) else {
            return Err(format!("baseline summary missing numeric `{key}`"));
        };
        let value = count(&act, "summary", key).unwrap_or(0);
        if value > ceiling {
            return Err(format!(
                "summary `{key}` = {value}, above the ceiling {ceiling}"
            ));
        }
        ceilings += 1;
    }
    let rules = base
        .as_object()
        .and_then(|o| o.get("rules").and_then(Value::as_object).cloned())
        .unwrap_or_default();
    for (rule, limits) in &rules {
        let Some(limits) = limits.as_object() else {
            return Err(format!("baseline rules `{rule}` must be an object"));
        };
        for key in ["errors", "suppressed"] {
            let Some(ceiling) = limits.get(key).and_then(Value::as_u64) else {
                return Err(format!("baseline rules `{rule}` missing numeric `{key}`"));
            };
            let value = act
                .as_object()
                .and_then(|o| o.get("rules").and_then(Value::as_object))
                .and_then(|r| r.get(rule).and_then(Value::as_object))
                .and_then(|l| l.get(key).and_then(Value::as_u64))
                .unwrap_or(0);
            if value > ceiling {
                return Err(format!(
                    "rule `{rule}` {key} = {value}, above the ceiling {ceiling}"
                ));
            }
            ceilings += 1;
        }
    }
    Ok(ceilings)
}

/// Check that `text` is a `pcqe-lint` JSON report; return a summary.
fn validate_lint(text: &str) -> Result<String, String> {
    let doc = json::parse(text)?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level must be an object".to_owned())?;
    let tool = obj
        .get("tool")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string `tool` member".to_owned())?;
    if tool != "pcqe-lint" {
        return Err(format!("`tool` is `{tool}`, expected `pcqe-lint`"));
    }
    obj.get("format_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing numeric `format_version` member".to_owned())?;
    let findings = obj
        .get("findings")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `findings` array".to_owned())?;
    for (i, f) in findings.iter().enumerate() {
        let f = f
            .as_object()
            .ok_or_else(|| format!("findings[{i}] must be an object"))?;
        for key in ["rule", "severity", "path", "message"] {
            f.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("findings[{i}] missing string `{key}`"))?;
        }
        f.get("line")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("findings[{i}] missing numeric `line`"))?;
    }
    let summary = obj
        .get("summary")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing `summary` object".to_owned())?;
    let mut counts = Vec::new();
    for key in ["files", "manifests", "errors", "warnings", "suppressed"] {
        let n = summary
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("summary missing numeric `{key}`"))?;
        counts.push(format!("{key}={n}"));
    }
    Ok(format!("findings={} {}", findings.len(), counts.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::{gate_lint, gate_metrics, validate_lint, validate_metrics};

    const fn empty_sections() -> &'static str {
        "\"histograms\": {}, \"spans\": {}"
    }

    #[test]
    fn gate_passes_when_every_floor_is_met() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \
              \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 250, \"extra\": 1}}, \
              \"gauges\": {{\"bench.cache.speedup\": 11.5}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(2));
    }

    #[test]
    fn gate_fails_on_a_value_below_the_floor() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 3.2}}, {}}}",
            empty_sections()
        );
        let err = gate_metrics(&baseline, &actual).unwrap_err();
        assert!(err.contains("bench.cache.speedup"), "{err}");
        assert!(err.contains("below the floor"), "{err}");
    }

    #[test]
    fn gate_fails_on_a_missing_metric() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let err = gate_metrics(&baseline, &actual).unwrap_err();
        assert!(err.contains("is missing"), "{err}");
    }

    #[test]
    fn gate_ignores_metrics_absent_from_the_baseline() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"anything\": 7}}, \"gauges\": {{\"x\": 0.1}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(0));
    }

    #[test]
    fn accepts_a_minimal_metrics_document() {
        let doc = "{\"counters\": {\"a\": 1}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}";
        assert_eq!(
            validate_metrics(doc),
            Ok("counters=1 gauges=0 histograms=0 spans=0".to_owned())
        );
    }

    #[test]
    fn rejects_missing_sections_and_non_objects() {
        assert!(validate_metrics("[]").is_err());
        assert!(validate_metrics("{\"counters\": {}}").is_err());
        assert!(validate_metrics(
            "{\"counters\": 1, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
        assert!(validate_metrics("not json").is_err());
    }

    /// Build a minimal lint report with the given totals and per-rule
    /// counts (format version 2's `rules` section).
    fn lint_report(errors: u64, suppressed: u64, rules: &[(&str, u64, u64)]) -> String {
        let rules = rules
            .iter()
            .map(|(code, e, s)| format!("\"{code}\": {{\"errors\": {e}, \"suppressed\": {s}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"tool\": \"pcqe-lint\", \"format_version\": 2, \"findings\": [], \
             \"rules\": {{{rules}}}, \
             \"summary\": {{\"files\": 1, \"manifests\": 1, \"errors\": {errors}, \
             \"warnings\": 0, \"suppressed\": {suppressed}}}}}"
        )
    }

    #[test]
    fn lint_gate_passes_at_or_below_every_ceiling() {
        let baseline = lint_report(0, 126, &[("PCQE-P002", 0, 100), ("PCQE-C003", 0, 0)]);
        let actual = lint_report(0, 120, &[("PCQE-P002", 0, 94), ("PCQE-C003", 0, 0)]);
        // 2 summary ceilings + 2 per rule.
        assert_eq!(gate_lint(&baseline, &actual), Ok(6));
    }

    #[test]
    fn lint_gate_fails_when_a_summary_total_grows() {
        let baseline = lint_report(0, 126, &[]);
        let actual = lint_report(1, 126, &[]);
        let err = gate_lint(&baseline, &actual).unwrap_err();
        assert!(err.contains("summary `errors` = 1"), "{err}");
        assert!(err.contains("above the ceiling 0"), "{err}");
    }

    #[test]
    fn lint_gate_fails_when_a_single_rule_regresses() {
        // Totals stay flat (a suppression moved between rules), but the
        // per-rule ceiling still catches the C003 regression.
        let baseline = lint_report(0, 2, &[("PCQE-P002", 0, 2), ("PCQE-C003", 0, 0)]);
        let actual = lint_report(0, 2, &[("PCQE-P002", 0, 1), ("PCQE-C003", 0, 1)]);
        let err = gate_lint(&baseline, &actual).unwrap_err();
        assert!(err.contains("rule `PCQE-C003` suppressed = 1"), "{err}");
    }

    #[test]
    fn lint_gate_treats_rules_missing_from_the_actual_report_as_zero() {
        let baseline = lint_report(0, 5, &[("PCQE-P002", 0, 5)]);
        let actual = lint_report(0, 0, &[]);
        assert_eq!(gate_lint(&baseline, &actual), Ok(4));
    }

    #[test]
    fn accepts_a_minimal_lint_report() {
        let doc = "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
                   \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
                   \"path\": \"crates/x.rs\", \"line\": 3, \"message\": \"m\"}], \
                   \"summary\": {\"files\": 1, \"manifests\": 1, \"errors\": 1, \
                   \"warnings\": 0, \"suppressed\": 0}}";
        assert_eq!(
            validate_lint(doc),
            Ok("findings=1 files=1 manifests=1 errors=1 warnings=0 suppressed=0".to_owned())
        );
    }

    #[test]
    fn rejects_lint_reports_with_the_wrong_shape() {
        // Wrong tool name.
        assert!(validate_lint(
            "{\"tool\": \"other\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 0, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Finding missing its line.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
             \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
             \"path\": \"x\", \"message\": \"m\"}], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 1, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Summary missing a count.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0}}"
        )
        .is_err());
        // A metrics document is not a lint report.
        assert!(validate_lint(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
    }
}
