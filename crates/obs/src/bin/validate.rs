//! `pcqe-obs-validate` — validate an exported JSON artifact.
//!
//! Usage: `pcqe-obs-validate [--schema metrics|lint] [--gate <baseline.json>] <file.json>`
//!
//! Schemas:
//!
//! * `metrics` (default) — the document has the metrics-snapshot shape
//!   (`counters`/`gauges`/`histograms`/`spans` object members);
//! * `lint` — the document has the `pcqe-lint --format json` report
//!   shape (`tool`/`format_version`, a `findings` array of
//!   rule/severity/path/line/message records, and a `summary` object).
//!
//! `--gate <baseline.json>` (metrics schema only) additionally treats the
//! baseline as a floor: both documents are schema-checked, and every
//! counter and gauge *named in the baseline* must be present in the
//! checked file with a value ≥ the baseline's. This is `ci.sh`'s
//! bench-regression gate — the baseline pins minimum cache hit counts
//! and speedups, and a run that falls below any of them fails.
//!
//! Exit codes: `0` the document parses, matches the schema and clears
//! the gate, `1` the document is malformed or regresses below the
//! baseline, `2` usage or I/O error. Used by `ci.sh` as the smoke check
//! on `results/*.json` — hermetically, with the crate's own parser.

use pcqe_obs::json::{self, Value};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schema = Schema::Metrics;
    let mut path: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage = || {
        eprintln!(
            "usage: pcqe-obs-validate [--schema metrics|lint] [--gate <baseline.json>] <file.json>"
        );
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("metrics") => schema = Schema::Metrics,
                Some("lint") => schema = Schema::Lint,
                _ => return usage(),
            },
            "--gate" => match args.next() {
                Some(p) => gate = Some(p),
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    if gate.is_some() && !matches!(schema, Schema::Metrics) {
        eprintln!("pcqe-obs-validate: --gate applies to the metrics schema only");
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match schema {
        Schema::Metrics => validate_metrics(&text),
        Schema::Lint => validate_lint(&text),
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(gate_path) = gate {
        let baseline = match std::fs::read_to_string(&gate_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pcqe-obs-validate: {gate_path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = validate_metrics(&baseline) {
            eprintln!("pcqe-obs-validate: {gate_path}: {e}");
            return ExitCode::from(1);
        }
        match gate_metrics(&baseline, &text) {
            Ok(gated) => {
                println!("{path}: ok ({summary}; gate {gate_path}: {gated} floor(s) cleared)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pcqe-obs-validate: {path}: regression vs {gate_path}: {e}");
                ExitCode::from(1)
            }
        }
    } else {
        println!("{path}: ok ({summary})");
        ExitCode::SUCCESS
    }
}

/// Which document shape to check.
#[derive(Clone, Copy)]
enum Schema {
    Metrics,
    Lint,
}

/// Check that `text` is a metrics document; return a one-line summary.
fn validate_metrics(text: &str) -> Result<String, String> {
    let doc = json::parse(text)?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level must be an object".to_owned())?;
    let mut sizes = Vec::new();
    for key in ["counters", "gauges", "histograms", "spans"] {
        let section = obj
            .get(key)
            .ok_or_else(|| format!("missing `{key}` member"))?;
        let members = section
            .as_object()
            .ok_or_else(|| format!("`{key}` must be an object"))?;
        sizes.push(format!("{key}={}", members.len()));
    }
    Ok(sizes.join(" "))
}

/// Enforce `baseline` as a floor on `actual` (both already known to be
/// valid metrics documents): every counter and gauge named in the
/// baseline must exist in `actual` with a value ≥ the baseline's.
/// Returns the number of floors checked; the error names the first
/// regressing metric in name order.
fn gate_metrics(baseline: &str, actual: &str) -> Result<usize, String> {
    let base = json::parse(baseline)?;
    let act = json::parse(actual)?;
    let section = |doc: &Value, key: &str| -> Vec<(String, f64)> {
        doc.as_object()
            .and_then(|o| o.get(key).and_then(Value::as_object).cloned())
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(name, v)| v.as_f64().map(|x| (name.clone(), x)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut floors = 0;
    for key in ["counters", "gauges"] {
        let actual_values: std::collections::BTreeMap<String, f64> =
            section(&act, key).into_iter().collect();
        for (name, floor) in section(&base, key) {
            let Some(&value) = actual_values.get(&name) else {
                return Err(format!("{key} `{name}` (floor {floor}) is missing"));
            };
            if value < floor {
                return Err(format!("{key} `{name}` = {value}, below the floor {floor}"));
            }
            floors += 1;
        }
    }
    Ok(floors)
}

/// Check that `text` is a `pcqe-lint` JSON report; return a summary.
fn validate_lint(text: &str) -> Result<String, String> {
    let doc = json::parse(text)?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level must be an object".to_owned())?;
    let tool = obj
        .get("tool")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string `tool` member".to_owned())?;
    if tool != "pcqe-lint" {
        return Err(format!("`tool` is `{tool}`, expected `pcqe-lint`"));
    }
    obj.get("format_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing numeric `format_version` member".to_owned())?;
    let findings = obj
        .get("findings")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `findings` array".to_owned())?;
    for (i, f) in findings.iter().enumerate() {
        let f = f
            .as_object()
            .ok_or_else(|| format!("findings[{i}] must be an object"))?;
        for key in ["rule", "severity", "path", "message"] {
            f.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("findings[{i}] missing string `{key}`"))?;
        }
        f.get("line")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("findings[{i}] missing numeric `line`"))?;
    }
    let summary = obj
        .get("summary")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing `summary` object".to_owned())?;
    let mut counts = Vec::new();
    for key in ["files", "manifests", "errors", "warnings", "suppressed"] {
        let n = summary
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("summary missing numeric `{key}`"))?;
        counts.push(format!("{key}={n}"));
    }
    Ok(format!("findings={} {}", findings.len(), counts.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::{gate_metrics, validate_lint, validate_metrics};

    const fn empty_sections() -> &'static str {
        "\"histograms\": {}, \"spans\": {}"
    }

    #[test]
    fn gate_passes_when_every_floor_is_met() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \
              \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 250, \"extra\": 1}}, \
              \"gauges\": {{\"bench.cache.speedup\": 11.5}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(2));
    }

    #[test]
    fn gate_fails_on_a_value_below_the_floor() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 5.0}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{\"bench.cache.speedup\": 3.2}}, {}}}",
            empty_sections()
        );
        let err = gate_metrics(&baseline, &actual).unwrap_err();
        assert!(err.contains("bench.cache.speedup"), "{err}");
        assert!(err.contains("below the floor"), "{err}");
    }

    #[test]
    fn gate_fails_on_a_missing_metric() {
        let baseline = format!(
            "{{\"counters\": {{\"bench.cache.hits\": 100}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let err = gate_metrics(&baseline, &actual).unwrap_err();
        assert!(err.contains("is missing"), "{err}");
    }

    #[test]
    fn gate_ignores_metrics_absent_from_the_baseline() {
        let baseline = format!(
            "{{\"counters\": {{}}, \"gauges\": {{}}, {}}}",
            empty_sections()
        );
        let actual = format!(
            "{{\"counters\": {{\"anything\": 7}}, \"gauges\": {{\"x\": 0.1}}, {}}}",
            empty_sections()
        );
        assert_eq!(gate_metrics(&baseline, &actual), Ok(0));
    }

    #[test]
    fn accepts_a_minimal_metrics_document() {
        let doc = "{\"counters\": {\"a\": 1}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}";
        assert_eq!(
            validate_metrics(doc),
            Ok("counters=1 gauges=0 histograms=0 spans=0".to_owned())
        );
    }

    #[test]
    fn rejects_missing_sections_and_non_objects() {
        assert!(validate_metrics("[]").is_err());
        assert!(validate_metrics("{\"counters\": {}}").is_err());
        assert!(validate_metrics(
            "{\"counters\": 1, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
        assert!(validate_metrics("not json").is_err());
    }

    #[test]
    fn accepts_a_minimal_lint_report() {
        let doc = "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
                   \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
                   \"path\": \"crates/x.rs\", \"line\": 3, \"message\": \"m\"}], \
                   \"summary\": {\"files\": 1, \"manifests\": 1, \"errors\": 1, \
                   \"warnings\": 0, \"suppressed\": 0}}";
        assert_eq!(
            validate_lint(doc),
            Ok("findings=1 files=1 manifests=1 errors=1 warnings=0 suppressed=0".to_owned())
        );
    }

    #[test]
    fn rejects_lint_reports_with_the_wrong_shape() {
        // Wrong tool name.
        assert!(validate_lint(
            "{\"tool\": \"other\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 0, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Finding missing its line.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \
             \"findings\": [{\"rule\": \"PCQE-D001\", \"severity\": \"error\", \
             \"path\": \"x\", \"message\": \"m\"}], \
             \"summary\": {\"files\": 0, \"manifests\": 0, \"errors\": 1, \
             \"warnings\": 0, \"suppressed\": 0}}"
        )
        .is_err());
        // Summary missing a count.
        assert!(validate_lint(
            "{\"tool\": \"pcqe-lint\", \"format_version\": 1, \"findings\": [], \
             \"summary\": {\"files\": 0}}"
        )
        .is_err());
        // A metrics document is not a lint report.
        assert!(validate_lint(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}"
        )
        .is_err());
    }
}
