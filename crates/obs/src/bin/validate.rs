//! `pcqe-obs-validate` — validate an exported metrics JSON document.
//!
//! Usage: `pcqe-obs-validate <file.json>`
//!
//! Exit codes: `0` the document parses and has the metrics shape
//! (`counters`/`gauges`/`histograms`/`spans` object members), `1` the
//! document is malformed, `2` usage or I/O error. Used by `ci.sh` as the
//! smoke check on `results/metrics.json` — hermetically, with the crate's
//! own parser.

use pcqe_obs::json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: pcqe-obs-validate <file.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate(&text) {
        Ok(summary) => {
            println!("{path}: ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pcqe-obs-validate: {path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// Check that `text` is a metrics document; return a one-line summary.
fn validate(text: &str) -> Result<String, String> {
    let doc = json::parse(text)?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "top level must be an object".to_owned())?;
    let mut sizes = Vec::new();
    for key in ["counters", "gauges", "histograms", "spans"] {
        let section = obj
            .get(key)
            .ok_or_else(|| format!("missing `{key}` member"))?;
        let members = section
            .as_object()
            .ok_or_else(|| format!("`{key}` must be an object"))?;
        sizes.push(format!("{key}={}", members.len()));
    }
    Ok(sizes.join(" "))
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_a_minimal_metrics_document() {
        let doc = "{\"counters\": {\"a\": 1}, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}";
        assert_eq!(
            validate(doc),
            Ok("counters=1 gauges=0 histograms=0 spans=0".to_owned())
        );
    }

    #[test]
    fn rejects_missing_sections_and_non_objects() {
        assert!(validate("[]").is_err());
        assert!(validate("{\"counters\": {}}").is_err());
        assert!(
            validate("{\"counters\": 1, \"gauges\": {}, \"histograms\": {}, \"spans\": {}}")
                .is_err()
        );
        assert!(validate("not json").is_err());
    }
}
