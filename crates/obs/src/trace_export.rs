//! Byte-stable exports for a [`QueryTrace`]: Chrome trace-event JSON
//! and collapsed-stack flamegraph text.
//!
//! Both renderers walk the timeline in `seq` order and emit nothing that
//! depends on host state, so a trace collected under a
//! [`ManualClock`](pcqe_core::clock::ManualClock) exports byte-identically
//! on every run — `tests/trace_determinism.rs` pins both formats against
//! goldens in `tests/golden/`.
//!
//! ## Chrome trace-event JSON
//!
//! [`to_chrome_json`] emits the `{"traceEvents": [...]}` object format
//! loadable by `chrome://tracing` and Perfetto: span begin/end pairs as
//! `ph: "B"`/`ph: "E"`, instants and decisions as thread-scoped
//! `ph: "i"`. Timestamps are microseconds with the sub-microsecond
//! remainder kept as three decimal digits, so the nanosecond clock
//! round-trips exactly.
//!
//! ## Collapsed stacks
//!
//! [`to_folded`] reconstructs the span stack and emits
//! `frame;frame;leaf count` lines (the `flamegraph.pl`/inferno input
//! format). Weights are **event counts**, not nanoseconds: under a
//! manual clock every duration is scripted (often zero), so counting
//! events is what keeps the export meaningful *and* byte-stable. A
//! flamegraph of a traced query therefore shows where the causal
//! activity happened, not where wall time went.

use crate::export::json_string;
use crate::trace::{QueryTrace, TraceEvent, TraceEventKind};
use pcqe_par::{ConfidencePath, Decision};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stable text form of a [`ConfidencePath`] (shared by both exporters
/// and the shell's decision rendering).
pub fn path_label(path: ConfidencePath) -> &'static str {
    match path {
        ConfidencePath::Exact => "exact",
        ConfidencePath::BetaSkipped => "beta-skipped",
        ConfidencePath::CacheHit => "cache-hit",
    }
}

/// Microseconds with exact nanosecond remainder: `1234` ns → `"1.234"`.
fn micros(ts_nanos: u64) -> String {
    format!("{}.{:03}", ts_nanos / 1_000, ts_nanos % 1_000)
}

fn decision_args(seq: u64, d: &Decision) -> String {
    format!(
        "{{\"seq\": {seq}, \"tuple\": {}, \"released\": {}, \"path\": {}, \"beta\": {}, \
         \"confidence\": {}, \"lineage_size\": {}}}",
        d.tuple,
        d.released,
        json_string(path_label(d.path)),
        fmt_f64(d.beta),
        fmt_f64(d.confidence),
        d.lineage_size
    )
}

/// Shortest-round-trip float, `null` for non-finite (matches the
/// metrics exporter's convention).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

fn chrome_event(event: &TraceEvent) -> String {
    let ts = micros(event.ts_nanos);
    let seq = event.seq;
    let (name, ph, extra, args) = match &event.kind {
        TraceEventKind::SpanBegin { id, parent, name } => {
            let parent = match parent {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            };
            (
                json_string(name),
                "B",
                String::new(),
                format!("{{\"seq\": {seq}, \"span\": {id}, \"parent\": {parent}}}"),
            )
        }
        TraceEventKind::SpanEnd { id, name } => (
            json_string(name),
            "E",
            String::new(),
            format!("{{\"seq\": {seq}, \"span\": {id}}}"),
        ),
        TraceEventKind::Instant { name, detail } => (
            json_string(name),
            "i",
            ", \"s\": \"t\"".to_owned(),
            format!("{{\"seq\": {seq}, \"detail\": {}}}", json_string(detail)),
        ),
        TraceEventKind::Decision(d) => (
            json_string("decision"),
            "i",
            ", \"s\": \"t\"".to_owned(),
            decision_args(seq, d),
        ),
    };
    format!(
        "    {{\"name\": {name}, \"ph\": \"{ph}\", \"ts\": {ts}, \"pid\": 1, \"tid\": 1{extra}, \
         \"args\": {args}}}"
    )
}

/// Render a trace as Chrome trace-event JSON (object format).
///
/// The document is a single top-level object: `traceEvents` (one entry
/// per event, in `seq` order), `displayTimeUnit`, and the tracer's
/// `dropped`/`capacity` accounting so a truncated trace is visibly
/// truncated. Output ends with a newline and is byte-stable for equal
/// traces.
pub fn to_chrome_json(trace: &QueryTrace) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(out, "  \"dropped\": {},", trace.dropped);
    let _ = writeln!(out, "  \"capacity\": {},", trace.capacity);
    out.push_str("  \"traceEvents\": [");
    let mut first = true;
    for event in &trace.events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&chrome_event(event));
    }
    if !trace.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render a trace as collapsed-stack flamegraph text.
///
/// One `frame;frame;leaf count` line per distinct stack, sorted
/// lexicographically. Span begin/end events weight the span's own
/// frame; instants and decisions weight a leaf frame named after the
/// event (decisions collapse to a `decision` leaf) under the enclosing
/// span stack. Events outside any span use the leaf name alone.
pub fn to_folded(trace: &QueryTrace) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    // Open span stack reconstructed from the timeline: (id, name).
    let mut stack: Vec<(u64, String)> = Vec::new();
    let joined = |stack: &[(u64, String)]| -> String {
        let names: Vec<&str> = stack.iter().map(|(_, n)| n.as_str()).collect();
        names.join(";")
    };
    let mut bump = |key: String| {
        let slot = weights.entry(key).or_insert(0);
        *slot = slot.saturating_add(1);
    };
    for event in &trace.events {
        match &event.kind {
            TraceEventKind::SpanBegin { id, name, .. } => {
                stack.push((*id, name.clone()));
                bump(joined(&stack));
            }
            TraceEventKind::SpanEnd { id, .. } => {
                bump(joined(&stack));
                if let Some(pos) = stack.iter().rposition(|(open, _)| open == id) {
                    stack.remove(pos);
                }
            }
            TraceEventKind::Instant { name, .. } => {
                let base = joined(&stack);
                if base.is_empty() {
                    bump(name.clone());
                } else {
                    bump(format!("{base};{name}"));
                }
            }
            TraceEventKind::Decision(_) => {
                let base = joined(&stack);
                if base.is_empty() {
                    bump("decision".to_owned());
                } else {
                    bump(format!("{base};decision"));
                }
            }
        }
    }
    let mut out = String::new();
    for (key, weight) in &weights {
        let _ = writeln!(out, "{key} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use pcqe_core::clock::ManualClock;
    use pcqe_par::TraceSink;
    use std::sync::Arc;
    use std::time::Duration;

    fn sample() -> QueryTrace {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::with_clock(clock.clone(), 64);
        let q = t.span_begin("query");
        clock.advance(Duration::from_nanos(1_500));
        let s = t.span_begin("score");
        t.instant("beta.skip", "tuple=t13 upper=0.04");
        t.decision(&Decision {
            tuple: 13,
            released: false,
            path: ConfidencePath::BetaSkipped,
            beta: 0.06,
            confidence: 0.04,
            lineage_size: 3,
        });
        t.span_end(s);
        t.span_end(q);
        t.drain()
    }

    #[test]
    fn chrome_json_is_wellformed_and_ordered() {
        let doc = to_chrome_json(&sample());
        let parsed = crate::json::parse(&doc).expect("chrome export must parse");
        let events = parsed
            .get("traceEvents")
            .and_then(crate::json::Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| {
                e.get("ph")
                    .and_then(crate::json::Value::as_str)
                    .expect("ph")
            })
            .collect();
        assert_eq!(phases, vec!["B", "B", "i", "i", "E", "E"]);
        assert!(doc.contains("\"ts\": 1.500"), "nanosecond remainder kept");
        assert!(doc.contains("\"path\": \"beta-skipped\""));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn chrome_json_of_empty_trace_is_stable() {
        let doc = to_chrome_json(&QueryTrace::default());
        assert_eq!(
            doc,
            "{\n  \"displayTimeUnit\": \"ms\",\n  \"dropped\": 0,\n  \"capacity\": 0,\n  \
             \"traceEvents\": []\n}\n"
        );
        crate::json::parse(&doc).expect("empty export must parse");
    }

    #[test]
    fn folded_output_collapses_stacks() {
        let folded = to_folded(&sample());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "query 2",
                "query;score 2",
                "query;score;beta.skip 1",
                "query;score;decision 1",
            ]
        );
    }

    #[test]
    fn folded_event_outside_any_span_uses_leaf_name() {
        let t = Tracer::with_clock(Arc::new(ManualClock::new()), 8);
        t.instant("orphan", "");
        let folded = to_folded(&t.drain());
        assert_eq!(folded, "orphan 1\n");
    }
}
