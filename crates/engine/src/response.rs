//! Query responses and improvement proposals.

use pcqe_lineage::Lineage;
use pcqe_storage::{Schema, Tuple, TupleId};

/// One result row released to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleasedTuple {
    /// The row's values.
    pub tuple: Tuple,
    /// Its lineage over base tuples.
    pub lineage: Lineage,
    /// Its computed confidence.
    pub confidence: f64,
}

/// A suggested confidence increment on one base tuple, reported to the
/// user before any data-quality action is taken (Figure 1, step 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ProposedIncrement {
    /// The base tuple to improve.
    pub tuple_id: TupleId,
    /// Its current confidence.
    pub from: f64,
    /// The suggested confidence.
    pub to: f64,
    /// Cost of this increment under the tuple's cost function.
    pub cost: f64,
}

/// The strategy-finding component's answer: which base tuples to improve,
/// at what total cost, and what that buys.
#[derive(Debug, Clone, PartialEq)]
pub struct ImprovementProposal {
    /// Total cost of all increments.
    pub cost: f64,
    /// The increments, ordered by base tuple id.
    pub increments: Vec<ProposedIncrement>,
    /// Results that would be released after applying the proposal.
    pub projected_released: usize,
    /// Results the user asked for (⌈perc · n⌉).
    pub requested: usize,
    /// Snapshot version of the database the proposal was computed against
    /// (accepting a stale proposal is rejected).
    pub(crate) version: u64,
}

/// Why no improvement proposal accompanies a partial result.
#[derive(Debug, Clone, PartialEq)]
pub enum NoProposal {
    /// The released fraction already meets the request.
    NotNeeded,
    /// Not even maximal confidence everywhere reaches the request.
    Infeasible {
        /// Results achievable at maximum confidence.
        achievable: usize,
        /// Results requested.
        requested: usize,
    },
    /// Some withheld results have non-monotone (negated) lineage that
    /// confidence increments cannot reliably help, and the quota cannot be
    /// met with the others.
    NonMonotone,
    /// The solver gave up within its budget.
    SolverGaveUp(String),
}

/// The outcome of a policy-checked query (Figure 1, step 10).
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Schema of the result rows.
    pub schema: Schema,
    /// Rows whose confidence exceeds the policy threshold.
    pub released: Vec<ReleasedTuple>,
    /// Number of rows withheld by the policy.
    pub withheld: usize,
    /// The governing threshold β.
    pub threshold: f64,
    /// The improvement proposal, when the request could not be met and a
    /// strategy was found.
    pub proposal: Option<ImprovementProposal>,
    /// Why there is no proposal (when `proposal` is `None`).
    pub no_proposal: Option<NoProposal>,
}

/// The outcome of a [`crate::Database::query_batch`] call: per-query
/// responses plus one combined improvement proposal.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query responses (their `proposal` fields stay empty; the
    /// combined proposal below covers all of them).
    pub responses: Vec<QueryResponse>,
    /// One strategy satisfying every query's request, if needed and found.
    pub proposal: Option<ImprovementProposal>,
    /// Why there is no combined proposal (when `proposal` is `None`).
    pub no_proposal: Option<NoProposal>,
}

impl QueryResponse {
    /// Fraction of results released (θ′ in the paper).
    pub fn released_fraction(&self) -> f64 {
        let n = self.released.len() + self.withheld;
        if n == 0 {
            0.0
        } else {
            self.released.len() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_storage::{Column, DataType, Value};

    #[test]
    fn released_fraction_counts_both_sets() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let r = QueryResponse {
            schema,
            released: vec![ReleasedTuple {
                tuple: Tuple::new(vec![Value::Int(1)]),
                lineage: Lineage::var(0),
                confidence: 0.8,
            }],
            withheld: 3,
            threshold: 0.5,
            proposal: None,
            no_proposal: Some(NoProposal::NotNeeded),
        };
        assert!((r.released_fraction() - 0.25).abs() < 1e-12);
    }
}
