//! Error type for the engine.

use std::fmt;

/// Errors surfaced by the end-to-end PCQE pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(pcqe_storage::StorageError),
    /// SQL front-end failure.
    Sql(pcqe_sql::SqlError),
    /// Plan-execution failure.
    Algebra(pcqe_algebra::AlgebraError),
    /// Policy lookup failure.
    Policy(pcqe_policy::PolicyError),
    /// Strategy-finding failure.
    Core(pcqe_core::CoreError),
    /// Provenance assessment failure.
    Provenance(pcqe_provenance::ProvenanceError),
    /// Cost-model failure.
    Cost(pcqe_cost::CostError),
    /// A proposal was applied against a database that changed since it was
    /// computed.
    StaleProposal,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Sql(e) => write!(f, "sql: {e}"),
            EngineError::Algebra(e) => write!(f, "algebra: {e}"),
            EngineError::Policy(e) => write!(f, "policy: {e}"),
            EngineError::Core(e) => write!(f, "strategy: {e}"),
            EngineError::Provenance(e) => write!(f, "provenance: {e}"),
            EngineError::Cost(e) => write!(f, "cost: {e}"),
            EngineError::StaleProposal => {
                f.write_str("proposal is stale: the database changed since it was computed")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<pcqe_storage::StorageError> for EngineError {
    fn from(e: pcqe_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<pcqe_sql::SqlError> for EngineError {
    fn from(e: pcqe_sql::SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<pcqe_algebra::AlgebraError> for EngineError {
    fn from(e: pcqe_algebra::AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}

impl From<pcqe_policy::PolicyError> for EngineError {
    fn from(e: pcqe_policy::PolicyError) -> Self {
        EngineError::Policy(e)
    }
}

impl From<pcqe_core::CoreError> for EngineError {
    fn from(e: pcqe_core::CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<pcqe_provenance::ProvenanceError> for EngineError {
    fn from(e: pcqe_provenance::ProvenanceError) -> Self {
        EngineError::Provenance(e)
    }
}

impl From<pcqe_cost::CostError> for EngineError {
    fn from(e: pcqe_cost::CostError) -> Self {
        EngineError::Cost(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = pcqe_storage::StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("storage"));
        assert!(EngineError::StaleProposal.to_string().contains("stale"));
    }
}
