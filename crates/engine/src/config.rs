//! Engine configuration.

use pcqe_core::dnc::DncOptions;
use pcqe_core::greedy::GreedyOptions;
use pcqe_core::heuristic::HeuristicOptions;
use pcqe_cost::CostFn;
use pcqe_lineage::Evaluator;

/// Which strategy-finding algorithm the engine should use.
#[derive(Debug, Clone, Default)]
pub enum SolverChoice {
    /// Pick automatically by problem size: exact branch-and-bound for tiny
    /// problems, greedy for small ones, divide-and-conquer at scale —
    /// mirroring the crossovers of Figure 11(c).
    #[default]
    Auto,
    /// Always use the heuristic branch-and-bound.
    Heuristic(HeuristicOptions),
    /// Always use the two-phase greedy.
    Greedy(GreedyOptions),
    /// Always use divide-and-conquer.
    Dnc(DncOptions),
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Confidence-increment granularity δ (Table 4 default: 0.1).
    pub delta: f64,
    /// Confidence evaluator used to score query results.
    pub evaluator: Evaluator,
    /// Cost function assumed for base tuples without an explicit one.
    pub default_cost: CostFn,
    /// Strategy-finding algorithm.
    pub solver: SolverChoice,
    /// Shannon budget when compiling lineage into the strategy problem.
    pub lineage_budget: usize,
    /// Run the logical optimiser (predicate pushdown, product→join
    /// conversion) on every query plan.
    pub optimize_plans: bool,
    /// Lower every query to a physical plan (index scans, cost-chosen
    /// hash vs nested-loop joins) before executing. Physical execution is
    /// bit-identical to logical execution for every query — the planner
    /// only changes *how* rows are produced, never which rows — so this
    /// flag is a pure performance switch.
    pub physical_planning: bool,
    /// Skip exact confidence computation (Shannon expansion / Monte
    /// Carlo) for result rows whose cheap monotone upper bound already
    /// proves they fall at or below the policy threshold β. The
    /// released-tuple set, audit entries, and policy counters are
    /// provably identical with this on or off; rows that later feed the
    /// strategy-finding (θ) path are re-scored exactly first, so
    /// improvement proposals are also unchanged.
    pub beta_short_circuit: bool,
    /// Worker threads for plan execution, result scoring and solver
    /// rescans. `None` uses every available core; `Some(1)` reproduces
    /// the sequential engine bit-for-bit (any setting produces identical
    /// answers — threads only change speed).
    pub worker_threads: Option<usize>,
    /// Minimum batch size (rows to execute, lineages to score, bases to
    /// rescan) before worker threads are spawned.
    pub parallel_threshold: usize,
    /// Record operator, solver, scheduler and policy metrics into the
    /// database's [`pcqe_obs::Recorder`]. Recording is result-neutral:
    /// query answers, proposals and audit entries are bit-identical with
    /// recording on or off, at any thread count — metrics only observe.
    pub record_metrics: bool,
    /// Execute physical plans on the vectorized, morsel-driven columnar
    /// path ([`pcqe_algebra::execute_vectorized_with`]): scans fuse their
    /// residual predicates before materialising, data moves as columnar
    /// batches, and hash-join builds are hash-partitioned with
    /// NDV-capped partition counts. Only takes effect together with
    /// [`EngineConfig::physical_planning`]. The vectorized executor is
    /// bit-identical to the tuple-at-a-time one — same rows, same order,
    /// same lineage, same confidences, at any thread count — so this
    /// flag is a pure performance switch (see DESIGN.md §12).
    pub vectorized_execution: bool,
    /// Score result confidences through the query-scoped
    /// [`pcqe_lineage::CircuitCache`]: compiled circuits are hash-consed
    /// into a shared pool, subcircuit probabilities are memoized, and a
    /// what-if/θ probe that changes one base tuple's confidence
    /// re-evaluates only the circuits whose var-set intersects it.
    /// Bit-identical to uncached scoring — released sets, confidences,
    /// audit entries and proposals are unchanged — so this flag is a pure
    /// performance switch (see DESIGN.md §10).
    pub circuit_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            delta: 0.1,
            evaluator: Evaluator::default(),
            default_cost: CostFn::linear(100.0).expect("constant is valid"),
            solver: SolverChoice::Auto,
            lineage_budget: 4096,
            optimize_plans: true,
            physical_planning: true,
            vectorized_execution: true,
            beta_short_circuit: true,
            worker_threads: None,
            parallel_threshold: pcqe_par::DEFAULT_PARALLEL_THRESHOLD,
            record_metrics: true,
            circuit_cache: true,
        }
    }
}

impl EngineConfig {
    /// The [`pcqe_par::Parallelism`] policy this configuration encodes.
    pub fn parallelism(&self) -> pcqe_par::Parallelism {
        pcqe_par::Parallelism {
            worker_threads: self.worker_threads,
            parallel_threshold: self.parallel_threshold,
        }
    }

    /// This configuration restricted to one worker thread (the sequential
    /// engine of the paper).
    pub fn sequential(mut self) -> Self {
        self.worker_threads = Some(1);
        self
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let c = EngineConfig::default();
        assert_eq!(c.delta, 0.1);
        assert!(matches!(c.solver, SolverChoice::Auto));
    }
}
