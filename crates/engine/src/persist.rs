//! Directory-based persistence for a [`Database`].
//!
//! Layout: `<dir>/manifest.tsv` describes tables, policies, the role
//! hierarchy and cost functions in a line-based tab-separated format, and
//! each table's rows live in `<dir>/<table>.csv` (written with explicit
//! tuple ids so lineage and cost functions survive the round trip).
//!
//! Names containing tabs or newlines are rejected at save time; a role or
//! purpose literally named `*` cannot be distinguished from the wildcard
//! and is also rejected.

use crate::config::EngineConfig;
use crate::database::Database;
use crate::error::EngineError;
use crate::Result;
use pcqe_cost::CostFn;
use pcqe_policy::{ConfidencePolicy, PurposeSpec, Role, SubjectSpec};
use pcqe_storage::csv::{load_into_with_ids, write_table_with_ids};
use pcqe_storage::{Column, DataType, Schema, StorageError, TupleId};
use std::fs;
use std::io::{BufReader, Write};
use std::path::Path;

fn persist_err(message: impl Into<String>) -> EngineError {
    EngineError::Storage(StorageError::Csv {
        line: 0,
        message: message.into(),
    })
}

fn check_name(name: &str) -> Result<&str> {
    if name.contains('\t') || name.contains('\n') || name.contains('\r') {
        return Err(persist_err(format!(
            "name `{name}` contains tab/newline and cannot be persisted"
        )));
    }
    if name == "*" {
        return Err(persist_err("the name `*` is reserved for wildcards"));
    }
    Ok(name)
}

/// Save a database (tables, rows with ids and confidences, policies, role
/// hierarchy, per-tuple cost functions) into `dir`, creating it if
/// needed. The engine configuration and estimator state are not saved.
pub fn save(db: &Database, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| persist_err(format!("create {dir:?}: {e}")))?;
    let mut manifest = String::from("pcqe-manifest\tv1\n");

    for name in db.catalog.table_names() {
        check_name(name)?;
        let table = db.catalog.table(name)?;
        manifest.push_str(&format!("table\t{name}\n"));
        for c in table.schema().columns() {
            check_name(&c.name)?;
            manifest.push_str(&format!("column\t{}\t{}\n", c.name, c.data_type));
        }
        manifest.push_str("end\n");
        let mut out = Vec::new();
        write_table_with_ids(table, &mut out)
            .map_err(|e| persist_err(format!("serialise `{name}`: {e}")))?;
        fs::write(dir.join(format!("{name}.csv")), out)
            .map_err(|e| persist_err(format!("write `{name}.csv`: {e}")))?;
    }

    for p in db.policies.policies() {
        let subject = match &p.subject {
            SubjectSpec::Role(r) => check_name(r.name())?.to_owned(),
            SubjectSpec::Any => "*".to_owned(),
        };
        let purpose = match &p.purpose {
            PurposeSpec::Purpose(pu) => check_name(pu.name())?.to_owned(),
            PurposeSpec::Any => "*".to_owned(),
        };
        manifest.push_str(&format!("policy\t{subject}\t{purpose}\t{}\n", p.threshold));
    }
    for (senior, junior) in db.policies.hierarchy().edges() {
        manifest.push_str(&format!(
            "inherit\t{}\t{}\n",
            check_name(&senior)?,
            check_name(&junior)?
        ));
    }
    for (specialised, general) in db.policies.purposes().edges() {
        manifest.push_str(&format!(
            "specialise\t{}\t{}\n",
            check_name(&specialised)?,
            check_name(&general)?
        ));
    }

    // BTreeMap iteration is already id-sorted; iterating entries directly
    // keeps the path free of indexing (PCQE-P002).
    for (id, cost) in &db.costs {
        manifest.push_str(&format!("cost\t{}\t{}\n", id.0, encode_cost(cost)?));
    }

    let mut f = fs::File::create(dir.join("manifest.tsv"))
        .map_err(|e| persist_err(format!("write manifest: {e}")))?;
    f.write_all(manifest.as_bytes())
        .map_err(|e| persist_err(format!("write manifest: {e}")))?;
    Ok(())
}

/// Load a database saved by [`save`], with a fresh configuration.
pub fn load(dir: &Path, config: EngineConfig) -> Result<Database> {
    let manifest = fs::read_to_string(dir.join("manifest.tsv"))
        .map_err(|e| persist_err(format!("read manifest: {e}")))?;
    let mut lines = manifest.lines().enumerate();
    match lines.next() {
        Some((_, "pcqe-manifest\tv1")) => {}
        _ => return Err(persist_err("bad manifest header")),
    }
    let mut db = Database::new(config);
    let mut pending_columns: Option<(String, Vec<Column>)> = None;
    for (i, line) in lines {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let bad = |m: &str| persist_err(format!("manifest line {lineno}: {m} in `{line}`"));
        match (fields.as_slice(), &mut pending_columns) {
            (["table", name], slot @ None) => {
                *slot = Some(((*name).to_owned(), Vec::new()));
            }
            (["column", name, ty], Some((_, cols))) => {
                let dt = match *ty {
                    "INT" => DataType::Int,
                    "REAL" => DataType::Real,
                    "TEXT" => DataType::Text,
                    "BOOL" => DataType::Bool,
                    other => return Err(bad(&format!("unknown type `{other}`"))),
                };
                cols.push(Column::new(*name, dt));
            }
            (["end"], slot @ Some(_)) => {
                let Some((name, cols)) = slot.take() else {
                    return Err(bad("`end` without an open table"));
                };
                db.create_table(&name, Schema::new(cols)?)?;
                let file = fs::File::open(dir.join(format!("{name}.csv")))
                    .map_err(|e| persist_err(format!("open `{name}.csv`: {e}")))?;
                load_into_with_ids(&mut db.catalog, &name, BufReader::new(file))?;
            }
            (["policy", subject, purpose, beta], None) => {
                let beta: f64 = beta.parse().map_err(|_| bad("bad threshold"))?;
                let policy = match (*subject, *purpose) {
                    ("*", "*") => ConfidencePolicy::default_floor(beta)?,
                    ("*", pu) => ConfidencePolicy::for_purpose(pu, beta)?,
                    (r, "*") => ConfidencePolicy::for_role(r, beta)?,
                    (r, pu) => ConfidencePolicy::new(r, pu, beta)?,
                };
                db.add_policy(policy);
            }
            (["inherit", senior, junior], None) => {
                db.add_role_inheritance(&Role::new(*senior), &Role::new(*junior))?;
            }
            (["specialise", specialised, general], None) => {
                db.add_purpose_specialisation(
                    &pcqe_policy::Purpose::new(*specialised),
                    &pcqe_policy::Purpose::new(*general),
                )?;
            }
            (["cost", id, rest @ ..], None) => {
                let id: u64 = id.parse().map_err(|_| bad("bad tuple id"))?;
                let cost = decode_cost(rest).ok_or_else(|| bad("bad cost function"))?;
                db.set_cost(TupleId(id), cost)?;
            }
            _ => return Err(bad("unexpected record")),
        }
    }
    if pending_columns.is_some() {
        return Err(persist_err("manifest ended inside a table definition"));
    }
    Ok(db)
}

fn encode_cost(cost: &CostFn) -> Result<String> {
    Ok(match cost {
        CostFn::Linear { rate } => format!("linear\t{rate}"),
        CostFn::Polynomial { coeff, degree } => format!("poly\t{coeff}\t{degree}"),
        CostFn::Exponential { coeff, rate } => format!("exp\t{coeff}\t{rate}"),
        CostFn::Logarithmic { coeff, scale } => format!("log\t{coeff}\t{scale}"),
        CostFn::Piecewise { points } => {
            let encoded: Vec<String> = points.iter().map(|(p, g)| format!("{p}:{g}")).collect();
            format!("piecewise\t{}", encoded.join(";"))
        }
    })
}

fn decode_cost(fields: &[&str]) -> Option<CostFn> {
    match fields {
        ["linear", rate] => CostFn::linear(rate.parse().ok()?).ok(),
        ["poly", coeff, degree] => {
            CostFn::polynomial(coeff.parse().ok()?, degree.parse().ok()?).ok()
        }
        ["exp", coeff, rate] => CostFn::exponential(coeff.parse().ok()?, rate.parse().ok()?).ok(),
        ["log", coeff, scale] => CostFn::logarithmic(coeff.parse().ok()?, scale.parse().ok()?).ok(),
        ["piecewise", encoded] => {
            let mut points = Vec::new();
            for part in encoded.split(';') {
                let (p, g) = part.split_once(':')?;
                points.push((p.parse().ok()?, g.parse().ok()?));
            }
            CostFn::piecewise(points).ok()
        }
        _ => None,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::database::{QueryRequest, User};
    use pcqe_storage::Value;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pcqe-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> (Database, TupleId) {
        let mut db = Database::new(EngineConfig::default());
        db.create_table(
            "Deals",
            Schema::new(vec![
                Column::new("who", DataType::Text),
                Column::new("amount", DataType::Real),
                Column::new("won", DataType::Bool),
                Column::new("n", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        db.insert(
            "Deals",
            vec![
                Value::text("acme, \"quoted\""),
                Value::Real(10.5),
                Value::Bool(true),
                Value::Int(7),
            ],
            0.9,
        )
        .unwrap();
        let weak = db
            .insert(
                "Deals",
                vec![
                    Value::text("bolt"),
                    Value::Null,
                    Value::Bool(false),
                    Value::Null,
                ],
                0.3,
            )
            .unwrap();
        db.set_cost(weak, CostFn::exponential(5.0, 2.0).unwrap())
            .unwrap();
        db.add_policy(ConfidencePolicy::new("sales", "pipeline", 0.5).unwrap());
        db.add_policy(ConfidencePolicy::default_floor(0.1).unwrap());
        db.add_role_inheritance(&Role::new("vp"), &Role::new("sales"))
            .unwrap();
        db.add_purpose_specialisation(
            &pcqe_policy::Purpose::new("renewal"),
            &pcqe_policy::Purpose::new("pipeline"),
        )
        .unwrap();
        (db, weak)
    }

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let (mut db, weak) = sample_db();
        let dir = temp_dir("roundtrip");
        save(&db, &dir).unwrap();
        let mut restored = load(&dir, EngineConfig::default()).unwrap();

        // Same confidences and ids.
        assert_eq!(restored.confidence(weak), Some(0.3));
        assert_eq!(restored.catalog().total_rows(), 2);

        // Same policy behaviour, including the inherited role and the
        // specialised purpose.
        let user = User::new("v", "vp");
        let request = QueryRequest::new("SELECT who FROM Deals", "renewal");
        let a = db.query(&user, &request).unwrap();
        let b = restored.query(&user, &request).unwrap();
        assert_eq!(a.released.len(), b.released.len());
        assert_eq!(a.threshold, b.threshold);

        // Same improvement proposal (cost function survived).
        let pa = a.proposal.expect("weak row improvable");
        let pb = b.proposal.expect("weak row improvable");
        assert_eq!(pa.increments, pb.increments);
        assert!((pa.cost - pb.cost).abs() < 1e-12);

        // New inserts in the restored database do not collide with ids.
        let next = restored
            .insert(
                "Deals",
                vec![
                    Value::text("new"),
                    Value::Real(1.0),
                    Value::Bool(true),
                    Value::Int(1),
                ],
                0.5,
            )
            .unwrap();
        assert!(next > weak);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_cost_family_round_trips() {
        let costs = [
            CostFn::linear(3.5).unwrap(),
            CostFn::polynomial(2.0, 3.0).unwrap(),
            CostFn::exponential(1.5, 4.0).unwrap(),
            CostFn::logarithmic(2.5, 9.0).unwrap(),
            CostFn::piecewise(vec![(0.0, 0.0), (0.5, 2.0), (1.0, 10.0)]).unwrap(),
        ];
        for cost in costs {
            let encoded = encode_cost(&cost).unwrap();
            let fields: Vec<&str> = encoded.split('\t').collect();
            let decoded = decode_cost(&fields).unwrap();
            assert_eq!(decoded, cost);
        }
    }

    #[test]
    fn load_rejects_corrupt_manifests() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.tsv"), "not a manifest\n").unwrap();
        assert!(load(&dir, EngineConfig::default()).is_err());
        fs::write(
            dir.join("manifest.tsv"),
            "pcqe-manifest\tv1\ntable\tt\ncolumn\tx\tINT\n",
        )
        .unwrap();
        assert!(
            load(&dir, EngineConfig::default()).is_err(),
            "unterminated table"
        );
        fs::write(
            dir.join("manifest.tsv"),
            "pcqe-manifest\tv1\ncost\t0\tmystery\t1\n",
        )
        .unwrap();
        assert!(load(&dir, EngineConfig::default()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rejects_unpersistable_names() {
        let mut db = Database::new(EngineConfig::default());
        db.add_policy(ConfidencePolicy::new("bad\trole", "p", 0.5).unwrap());
        let dir = temp_dir("badname");
        assert!(save(&db, &dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
