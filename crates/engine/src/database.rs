//! The `Database` façade: storage + policies + query pipeline.

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::improve::{self, ProposeOutcome};
use crate::response::{NoProposal, QueryResponse, ReleasedTuple};
use crate::Result;
use pcqe_algebra::{
    execute_physical_profiled, execute_physical_traced, execute_physical_with, execute_profiled,
    execute_traced, execute_vectorized_profiled, execute_vectorized_traced,
    execute_vectorized_with, execute_with, ExecProfile,
};
use pcqe_core::clock::{Clock, SystemClock};
use pcqe_core::estimator::RuntimeEstimator;
use pcqe_cost::CostFn;
use pcqe_par::{ConfidencePath, Decision, ParObserver, TraceSink};
use pcqe_policy::{evaluate_results, ConfidencePolicy, PolicyStore, Purpose, Role};
use pcqe_provenance::{Assigner, ProvenanceRecord};
use pcqe_sql::parse_and_plan;
use pcqe_storage::{Catalog, Schema, TupleId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A user: a name and the role under which policies are selected.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// Display name.
    pub name: String,
    /// RBAC role.
    pub role: Role,
}

impl User {
    /// Create a user with a role.
    pub fn new(name: impl Into<String>, role: impl Into<Role>) -> User {
        User {
            name: name.into(),
            role: role.into(),
        }
    }
}

/// The user's query input ⟨Q, pu, perc⟩ (Section 3.2).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The SQL text `Q`.
    pub sql: String,
    /// The stated purpose `pu`.
    pub purpose: Purpose,
    /// The fraction of results the user expects to receive (`perc`, the
    /// paper's θ). Defaults to 1.0.
    pub min_fraction: f64,
}

impl QueryRequest {
    /// A request expecting every result to be released.
    pub fn new(sql: impl Into<String>, purpose: impl Into<Purpose>) -> QueryRequest {
        QueryRequest {
            sql: sql.into(),
            purpose: purpose.into(),
            min_fraction: 1.0,
        }
    }

    /// Set the expected released fraction θ.
    pub fn expecting(mut self, fraction: f64) -> QueryRequest {
        self.min_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

/// The outcome of a DDL/DML statement executed via [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// A table was created.
    TableCreated,
    /// Rows were inserted, with their new tuple ids.
    Inserted(Vec<TupleId>),
}

/// A PCQE database: confidence-carrying tables, confidence policies, cost
/// functions, and the query/improve/apply loop of Figure 1.
#[derive(Debug)]
pub struct Database {
    pub(crate) catalog: Catalog,
    pub(crate) policies: PolicyStore,
    pub(crate) costs: BTreeMap<TupleId, CostFn>,
    config: EngineConfig,
    estimator: RuntimeEstimator,
    assigner: Assigner,
    audit: Vec<crate::audit::AuditEntry>,
    recorder: pcqe_obs::Recorder,
    /// Causal tracer for [`Database::trace_query`]. Disabled at rest —
    /// every instrumentation point then costs one relaxed atomic load —
    /// and shares the recorder's clock so span timestamps and metric
    /// timings never drift apart.
    tracer: Arc<pcqe_obs::Tracer>,
    version: u64,
    /// Query-scoped circuit pool (see [`EngineConfig::circuit_cache`]).
    /// Probabilities are re-synced from the catalog (or what-if overrides)
    /// before every cached scoring pass, so the pool survives across
    /// queries and `apply` calls without going stale.
    cache: pcqe_lineage::CircuitCache,
}

impl Database {
    /// Create an empty database.
    pub fn new(config: EngineConfig) -> Database {
        Database::with_clock(config, Arc::new(SystemClock))
    }

    /// Create an empty database whose recorder *and* tracer read the given
    /// clock. Tests pass a [`pcqe_core::clock::ManualClock`] here so both
    /// metric timings and trace timestamps are fully scripted — the
    /// byte-stable trace goldens in `tests/golden/` depend on it.
    pub fn with_clock(config: EngineConfig, clock: Arc<dyn Clock + Send + Sync>) -> Database {
        let recorder = pcqe_obs::Recorder::with_clock(clock.clone());
        recorder.set_enabled(config.record_metrics);
        let tracer = Arc::new(pcqe_obs::Tracer::with_clock(
            clock,
            pcqe_obs::trace::DEFAULT_TRACE_CAPACITY,
        ));
        tracer.set_enabled(false);
        let mut cache = pcqe_lineage::CircuitCache::new();
        cache.set_trace(Some(tracer.clone()));
        Database {
            catalog: Catalog::new(),
            policies: PolicyStore::new(),
            costs: BTreeMap::new(),
            config,
            estimator: RuntimeEstimator::new(),
            assigner: Assigner::default(),
            audit: Vec::new(),
            recorder,
            tracer,
            version: 0,
            cache,
        }
    }

    /// Create a table.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        self.catalog.create_table(name, schema)?;
        Ok(())
    }

    /// Insert a row with an explicit confidence (Figure 1's confidence-
    /// assignment component, when the caller already knows the value).
    pub fn insert(&mut self, table: &str, values: Vec<Value>, confidence: f64) -> Result<TupleId> {
        let id = self.catalog.insert(table, values, confidence)?;
        self.version += 1;
        Ok(id)
    }

    /// Create an equality index on `table.column` (INT/TEXT/BOOL columns
    /// only). Indexes are maintained on every insert and change only
    /// *access paths* chosen by the physical planner — never query
    /// results. Returns the indexed column's position. Idempotent.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<usize> {
        Ok(self.catalog.create_index(table, column)?)
    }

    /// Insert a row whose confidence is assessed from provenance records.
    pub fn insert_assessed(
        &mut self,
        table: &str,
        values: Vec<Value>,
        provenance: &[ProvenanceRecord],
    ) -> Result<TupleId> {
        let confidence = self.assigner.assess(provenance)?;
        self.insert(table, values, confidence)
    }

    /// Attach a cost function to a base tuple (tuples without one use
    /// [`EngineConfig::default_cost`]).
    pub fn set_cost(&mut self, id: TupleId, cost: CostFn) -> Result<()> {
        if self.catalog.find_tuple(id).is_none() {
            return Err(pcqe_storage::StorageError::UnknownTuple(id.0).into());
        }
        self.costs.insert(id, cost);
        Ok(())
    }

    /// Add a confidence policy.
    pub fn add_policy(&mut self, policy: ConfidencePolicy) {
        self.policies.add(policy);
    }

    /// Declare that `senior` inherits policies from `junior`.
    pub fn add_role_inheritance(&mut self, senior: &Role, junior: &Role) -> Result<()> {
        self.policies
            .hierarchy_mut()
            .add_inheritance(senior, junior)?;
        Ok(())
    }

    /// Declare that queries for `specialised` fall under policies written
    /// for `general` (purpose specialisation).
    pub fn add_purpose_specialisation(
        &mut self,
        specialised: &Purpose,
        general: &Purpose,
    ) -> Result<()> {
        self.policies
            .purposes_mut()
            .add_specialisation(specialised, general)?;
        Ok(())
    }

    /// The underlying catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current confidence of a base tuple.
    pub fn confidence(&self, id: TupleId) -> Option<f64> {
        self.catalog.confidence(id)
    }

    /// The runtime estimator fed by past strategy-finding runs
    /// (Section 6's advance-time statistics).
    pub fn estimator(&self) -> &RuntimeEstimator {
        &self.estimator
    }

    /// The append-only audit trail of policy decisions and applied
    /// improvements.
    pub fn audit_log(&self) -> &[crate::audit::AuditEntry] {
        &self.audit
    }

    /// The metrics recorder. Recording starts out matching
    /// [`EngineConfig::record_metrics`] and can be toggled at runtime with
    /// [`pcqe_obs::Recorder::set_enabled`]; it never changes query
    /// answers, proposals, or the audit trail.
    pub fn recorder(&self) -> &pcqe_obs::Recorder {
        &self.recorder
    }

    /// The causal tracer behind [`Database::trace_query`]. Disabled at
    /// rest; enabling it by hand records events from ordinary
    /// [`Database::query`] calls too (drain with
    /// [`pcqe_obs::Tracer::drain`]). Like the recorder, it is write-only:
    /// toggling it never changes query answers, proposals, or the audit
    /// trail.
    pub fn tracer(&self) -> &pcqe_obs::Tracer {
        &self.tracer
    }

    /// A point-in-time snapshot of every metric recorded so far. The
    /// `policy.released` / `policy.withheld` counters are running totals
    /// of exactly the per-query counts in [`Database::audit_log`], and
    /// `improvement.applied` / `improvement.tuples` mirror its
    /// improvement entries (while recording is enabled).
    pub fn metrics_snapshot(&self) -> pcqe_obs::MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// True when metric recording is active.
    fn recording(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Push a query audit entry and mirror its counts into the recorder,
    /// so `metrics_snapshot()` and `audit_log()` agree by construction.
    fn record_query_decision(
        &mut self,
        user: &User,
        request: &QueryRequest,
        threshold: f64,
        released: usize,
        withheld: usize,
        proposed: bool,
    ) {
        self.record_cache_activity();
        if self.recording() {
            self.recorder.counter_add("query.total", 1);
            self.recorder
                .counter_add("policy.released", released as u64);
            self.recorder
                .counter_add("policy.withheld", withheld as u64);
            if proposed {
                self.recorder.counter_add("query.proposals", 1);
            }
        }
        self.audit.push(crate::audit::AuditEntry::Query {
            user: user.name.clone(),
            role: user.role.name().to_owned(),
            purpose: request.purpose.name().to_owned(),
            threshold,
            released,
            withheld,
            proposed,
        });
    }

    /// Drain the circuit cache's activity counters into the recorder as
    /// `lineage.*` metric deltas. Called from the same helpers that write
    /// the audit log (and after what-if previews), so cache activity is
    /// attributed to the decision that caused it. Draining happens even
    /// with recording off — the deltas are simply discarded — so toggling
    /// metrics never changes what a later snapshot attributes to a query.
    /// Zero deltas are not emitted, so an engine that never touched the
    /// pool (cache off, or no scoring) records no `lineage.*` counters.
    fn record_cache_activity(&mut self) {
        let stats = self.cache.take_stats();
        if !self.recording() {
            return;
        }
        let emit = |name: &str, delta: u64| {
            if delta > 0 {
                self.recorder.counter_add(name, delta);
            }
        };
        emit("lineage.circuit_compiled", stats.compiled);
        emit("lineage.cache_hit", stats.hits());
        emit("lineage.cache_invalidated", stats.invalidated);
    }

    /// Push an improvement audit entry and mirror it into the recorder.
    fn record_improvement(&mut self, tuples: usize, cost: f64) {
        if self.recording() {
            self.recorder.counter_add("improvement.applied", 1);
            self.recorder
                .counter_add("improvement.tuples", tuples as u64);
            self.recorder.histogram_record("improvement.cost", cost);
        }
        self.audit
            .push(crate::audit::AuditEntry::Improvement { tuples, cost });
    }

    /// Fold an execution profile into the recorder as `exec.*` counters.
    fn record_exec_profile(&self, profile: &ExecProfile) {
        self.recorder
            .counter_add("exec.operators", profile.operators.len() as u64);
        for op in &profile.operators {
            self.recorder.counter_add("exec.rows_out", op.rows_out);
            self.recorder
                .counter_add("exec.lineage_nodes", op.lineage_nodes);
        }
    }

    /// Execute a DDL/DML statement (`CREATE TABLE` or
    /// `INSERT … [WITH CONFIDENCE c]`). Queries must go through
    /// [`Database::query`] since they need a user and purpose; passing one
    /// here returns an error.
    pub fn execute(&mut self, sql: &str) -> Result<StatementOutcome> {
        match pcqe_sql::parse_statement(sql)? {
            pcqe_sql::Statement::CreateTable { name, columns } => {
                let cols = columns
                    .into_iter()
                    .map(|c| pcqe_storage::Column::new(c.name, c.data_type))
                    .collect();
                self.create_table(name, Schema::new(cols)?)?;
                Ok(StatementOutcome::TableCreated)
            }
            pcqe_sql::Statement::Insert {
                table,
                rows,
                confidence,
            } => {
                let confidence = confidence.unwrap_or(1.0);
                let mut ids = Vec::with_capacity(rows.len());
                for row in &rows {
                    let values = pcqe_sql::literal_row(row)?;
                    ids.push(self.insert(&table, values, confidence)?);
                }
                Ok(StatementOutcome::Inserted(ids))
            }
            pcqe_sql::Statement::Query(_) => Err(EngineError::Sql(pcqe_sql::SqlError::Parse {
                pos: 0,
                message: "queries need a user and purpose; use Database::query".into(),
            })),
        }
    }

    /// Render the (optimised, when enabled) plan for a query — an
    /// `EXPLAIN` facility for debugging and teaching.
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.plan_sql(sql)?.to_string())
    }

    /// Render the logical and physical plans side by side — the shell's
    /// `.plan` view. The physical column names the join strategy
    /// (`HashJoin` vs `NestedLoopJoin`), the access path (`TableScan` vs
    /// `IndexScan`) and every pushed-down predicate.
    pub fn explain_physical(&self, sql: &str) -> Result<String> {
        let plan = self.plan_sql(sql)?;
        let phys = pcqe_algebra::lower(&plan, &self.catalog)?;
        Ok(pcqe_algebra::render_side_by_side(&plan, &phys))
    }

    /// Execute a query and render its plan annotated with observed
    /// per-operator `rows_in` / `rows_out` / `lineage_nodes` counts — an
    /// `EXPLAIN ANALYZE` facility. Runs the plan for real (read-only) but
    /// skips scoring and policy checking. With
    /// [`EngineConfig::physical_planning`] enabled (the default) the
    /// annotated operators are the *physical* ones, so index-scan savings
    /// and join-strategy fan-out are directly visible.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let par = self.config.parallelism();
        let plan = self.plan_sql(sql)?;
        if self.config.physical_planning {
            let phys = pcqe_algebra::lower(&plan, &self.catalog)?;
            let (_result, profile) = if self.config.vectorized_execution {
                execute_vectorized_profiled(&phys, &self.catalog, &par, None)?
            } else {
                execute_physical_profiled(&phys, &self.catalog, &par, None)?
            };
            Ok(profile.render())
        } else {
            let (_result, profile) = execute_profiled(&plan, &self.catalog, &par, None)?;
            Ok(profile.render())
        }
    }

    /// Parse and plan a SQL query, running the optimiser when enabled.
    fn plan_sql(&self, sql: &str) -> Result<pcqe_algebra::Plan> {
        let plan = parse_and_plan(sql, &self.catalog)?;
        if self.config.optimize_plans {
            Ok(pcqe_algebra::optimize(&plan, &self.catalog)?)
        } else {
            Ok(plan)
        }
    }

    /// Execute a planned query — physically when
    /// [`EngineConfig::physical_planning`] is set — recording an execution
    /// profile when metrics are on. The two paths produce bit-identical
    /// result sets for every query (see [`pcqe_algebra::physical`]), so
    /// the flag never changes which tuples a policy sees.
    fn run_plan(
        &self,
        plan: &pcqe_algebra::Plan,
        par: &pcqe_par::Parallelism,
        recording: bool,
    ) -> Result<pcqe_algebra::ResultSet> {
        let tracing = self.tracer.is_enabled();
        let trace: Option<&dyn TraceSink> = if tracing {
            Some(self.tracer.as_ref())
        } else {
            None
        };
        // While tracing, scheduler telemetry fans out to both sinks: the
        // recorder keeps its metrics (it no-ops when disabled) and the
        // tracer records per-batch worker-lane events.
        let pair;
        let observer: Option<&dyn ParObserver> = if tracing {
            pair = pcqe_obs::trace::ObserverPair::new(&self.recorder, self.tracer.as_ref());
            Some(&pair)
        } else if recording {
            Some(&self.recorder)
        } else {
            None
        };
        if self.config.physical_planning {
            let phys = pcqe_algebra::lower(plan, &self.catalog)?;
            let vectorized = self.config.vectorized_execution;
            if recording || tracing {
                let (result_set, profile) = if vectorized {
                    execute_vectorized_traced(&phys, &self.catalog, par, observer, trace)?
                } else {
                    execute_physical_traced(&phys, &self.catalog, par, observer, trace)?
                };
                if recording {
                    self.record_exec_profile(&profile);
                }
                Ok(result_set)
            } else if vectorized {
                Ok(execute_vectorized_with(&phys, &self.catalog, par)?)
            } else {
                Ok(execute_physical_with(&phys, &self.catalog, par)?)
            }
        } else if recording || tracing {
            let (result_set, profile) = execute_traced(plan, &self.catalog, par, observer, trace)?;
            if recording {
                self.record_exec_profile(&profile);
            }
            Ok(result_set)
        } else {
            Ok(execute_with(plan, &self.catalog, par)?)
        }
    }

    /// Run the full pipeline: evaluate, score, policy-check, and — when
    /// fewer than `perc` of the results survive — find the cheapest
    /// confidence-increment strategy and attach it as a proposal.
    pub fn query(&mut self, user: &User, request: &QueryRequest) -> Result<QueryResponse> {
        let par = self.config.parallelism();
        let recording = self.recording();
        let tracing = self.tracer.is_enabled();
        // Select the policy before scoring: β-gated scoring needs the
        // threshold up front, and selection is independent of the rows.
        let policy = self.policies.select(&user.role, &request.purpose)?.clone();
        let span = self.recorder.span("query");
        let t_query = self.tracer.span_begin("query");
        let plan = {
            let _plan_span = span.child("plan");
            let t_plan = self.tracer.span_begin("plan");
            self.tracer.instant("parse", &request.sql);
            let plan = self.plan_sql(&request.sql)?;
            self.tracer.span_end(t_plan);
            plan
        };
        let result_set = {
            let _exec_span = span.child("execute");
            let t_exec = self.tracer.span_begin("execute");
            let result_set = self.run_plan(&plan, &par, recording)?;
            self.tracer.span_end(t_exec);
            result_set
        };
        let probs = |v: pcqe_lineage::VarId| self.catalog.confidence(TupleId(v.0));
        let pair;
        let observer: Option<&dyn ParObserver> = if tracing {
            pair = pcqe_obs::trace::ObserverPair::new(&self.recorder, self.tracer.as_ref());
            Some(&pair)
        } else if recording {
            Some(&self.recorder)
        } else {
            None
        };
        let trace_sink: Option<&dyn TraceSink> = if tracing {
            Some(self.tracer.as_ref())
        } else {
            None
        };
        // β-aware short-circuit: rows whose confidence upper bound is
        // already ≤ β are withheld without exact Shannon/Monte-Carlo
        // evaluation. `skipped` remembers which rows carry a bound so the
        // strategy-finding path below can restore exact values first.
        // `paths` tags every row with how its gate-facing confidence was
        // obtained — the causal record behind each trace `Decision`.
        let use_cache = self.config.circuit_cache;
        let (mut scored, skipped, paths) = {
            let _score_span = span.child("score");
            let t_score = self.tracer.span_begin("score");
            let out = if use_cache {
                // Cached scoring: one sequential memoized pass over the
                // shared circuit pool, bit-identical to the parallel
                // uncached pass at any thread count (DESIGN.md §10).
                sync_cache_probs(&mut self.cache, result_set.rows(), &probs);
                if self.config.beta_short_circuit {
                    // With vectorized execution the scoring pass is chunked
                    // by morsel so scheduler telemetry (`par.batch`) covers
                    // scoring too; the scored values are bit-identical.
                    let (gated, paths) =
                        if self.config.vectorized_execution && self.config.physical_planning {
                            result_set.score_gated_cached_morsels_traced(
                                &mut self.cache,
                                &self.config.evaluator,
                                policy.threshold,
                                observer,
                                trace_sink,
                            )?
                        } else {
                            result_set.score_gated_cached_traced(
                                &mut self.cache,
                                &self.config.evaluator,
                                policy.threshold,
                                trace_sink,
                            )?
                        };
                    if recording {
                        self.recorder
                            .counter_add("lineage.exact_skipped", gated.exact_skipped as u64);
                    }
                    (gated.scored, Some(gated.skipped), paths)
                } else {
                    let (scored, paths) =
                        result_set.score_cached_traced(&mut self.cache, &self.config.evaluator)?;
                    (scored, None, paths)
                }
            } else if self.config.beta_short_circuit {
                let gated = result_set.score_gated_traced(
                    &probs,
                    &self.config.evaluator,
                    policy.threshold,
                    &par,
                    observer,
                    trace_sink,
                )?;
                if recording {
                    self.recorder
                        .counter_add("lineage.exact_skipped", gated.exact_skipped as u64);
                }
                let paths: Vec<ConfidencePath> = gated
                    .skipped
                    .iter()
                    .map(|&s| {
                        if s {
                            ConfidencePath::BetaSkipped
                        } else {
                            ConfidencePath::Exact
                        }
                    })
                    .collect();
                (gated.scored, Some(gated.skipped), paths)
            } else {
                let scored = result_set.score_par_observed(
                    &probs,
                    &self.config.evaluator,
                    &par,
                    observer,
                )?;
                let paths = vec![ConfidencePath::Exact; scored.len()];
                (scored, None, paths)
            };
            self.tracer.span_end(t_score);
            out
        };

        let confidences: Vec<f64> = scored.iter().map(|s| s.confidence).collect();
        let t_gate = self.tracer.span_begin("gate");
        let decision = evaluate_results(&policy, &confidences);
        if tracing {
            // One Decision per scored row, in row order (deterministic):
            // the released flags partition exactly as the audit entry's
            // released/withheld counts.
            for (i, s) in scored.iter().enumerate() {
                self.tracer.decision(&Decision {
                    tuple: i as u64,
                    released: decision.released.contains(&i),
                    path: paths.get(i).copied().unwrap_or(ConfidencePath::Exact),
                    beta: policy.threshold,
                    confidence: s.confidence,
                    lineage_size: s.lineage.size(),
                });
            }
        }
        self.tracer.span_end(t_gate);

        let released = released_tuples(&scored, &decision.released);
        let n = scored.len();
        let requested = (request.min_fraction * n as f64).ceil() as usize;

        let mut response = QueryResponse {
            schema: result_set.schema().clone(),
            released,
            withheld: decision.withheld.len(),
            threshold: policy.threshold,
            proposal: None,
            no_proposal: None,
        };

        if response.released.len() >= requested {
            response.no_proposal = Some(NoProposal::NotNeeded);
            drop(span);
            self.tracer.span_end(t_query);
            self.record_query_decision(
                user,
                request,
                response.threshold,
                response.released.len(),
                response.withheld,
                false,
            );
            return Ok(response);
        }

        // Strategy finding (Figure 1, steps 5–6). The θ path is exempt
        // from β-gating: improvement inputs must be *exact* confidences,
        // so any short-circuited rows are re-scored first. (Released rows
        // are never skipped — a skipped row's bound is ≤ β, which can
        // never admit — so only withheld rows are touched here.)
        if let Some(skipped) = &skipped {
            let rescored = if use_cache {
                // Probabilities were synced before gating and nothing has
                // changed them since, so the memoized exact values are
                // still current.
                pcqe_algebra::ResultSet::rescore_exact_cached(
                    &mut scored,
                    skipped,
                    &mut self.cache,
                    &self.config.evaluator,
                )?
            } else {
                pcqe_algebra::ResultSet::rescore_exact(
                    &mut scored,
                    skipped,
                    &probs,
                    &self.config.evaluator,
                    &par,
                )?
            };
            if recording {
                self.recorder
                    .counter_add("lineage.exact_rescored", rescored as u64);
            }
        }
        let withheld = withheld_tuples(&scored, &decision.withheld);
        let needed = requested - response.released.len();
        let ctx = improve::ProposeContext {
            catalog: &self.catalog,
            costs: &self.costs,
            config: &self.config,
            beta: policy.threshold,
            needed,
            already_released: response.released.len(),
            requested,
            version: self.version,
        };
        let (outcome, stats) = {
            let _propose_span = span.child("propose");
            let t_propose = self.tracer.span_begin("propose");
            let cache = use_cache.then_some(&mut self.cache);
            let out = improve::propose(&ctx, &withheld, &self.recorder, cache)?;
            self.tracer.span_end(t_propose);
            out
        };
        drop(span);
        self.tracer.span_end(t_query);
        if let Some(s) = stats {
            self.estimator.record(s.problem_size, s.elapsed);
        }
        match outcome {
            ProposeOutcome::Proposal(p) => response.proposal = Some(p),
            ProposeOutcome::No(reason) => response.no_proposal = Some(reason),
        }
        self.record_query_decision(
            user,
            request,
            response.threshold,
            response.released.len(),
            response.withheld,
            response.proposal.is_some(),
        );
        Ok(response)
    }

    /// [`Database::query`] with the causal tracer enabled for exactly this
    /// call: returns the response alongside the drained [`QueryTrace`] —
    /// lifecycle spans (`query` > `plan`/`execute`/`score`/`gate`, plus
    /// `propose` when strategy finding runs), per-operator `op:*` spans,
    /// circuit-cache `cache.*` events, β-gate `beta.skip`/`score.exact`
    /// instants, and one [`pcqe_par::Decision`] per result row.
    ///
    /// Tracing is write-only: the response (and any audit entry) is
    /// bit-identical to an untraced [`Database::query`] of the same
    /// request. On error the buffered events are discarded so the next
    /// trace starts clean.
    pub fn trace_query(
        &mut self,
        user: &User,
        request: &QueryRequest,
    ) -> Result<(QueryResponse, pcqe_obs::QueryTrace)> {
        self.tracer.set_enabled(true);
        let result = self.query(user, request);
        self.tracer.set_enabled(false);
        let trace = self.tracer.drain();
        Ok((result?, trace))
    }

    /// Run several queries as one batch (the multiple-query extension at
    /// the end of the paper's Section 4): each query is evaluated and
    /// policy-checked individually, and a *single* combined improvement
    /// strategy is computed over the union of their base tuples so that
    /// every query's requested fraction is met at once — shared tuples
    /// are paid for once.
    pub fn query_batch(
        &mut self,
        user: &User,
        requests: &[QueryRequest],
    ) -> Result<crate::response::BatchResponse> {
        use pcqe_core::greedy::GreedyOptions;
        use pcqe_core::multi::{solve_greedy, MultiQueryProblem};

        let par = self.config.parallelism();
        let recording = self.recording();
        let mut responses = Vec::with_capacity(requests.len());
        let mut instances = Vec::new();
        let mut non_monotone = false;
        for request in requests {
            // Evaluate without per-query proposals (done jointly below).
            // Scoring stays exact here: every withheld row may feed the
            // combined improvement instance, so β-gating would only add a
            // re-scoring pass.
            let plan = self.plan_sql(&request.sql)?;
            let result_set = self.run_plan(&plan, &par, recording)?;
            let probs = |v: pcqe_lineage::VarId| self.catalog.confidence(TupleId(v.0));
            let scored = if self.config.circuit_cache {
                sync_cache_probs(&mut self.cache, result_set.rows(), &probs);
                result_set.score_cached(&mut self.cache, &self.config.evaluator)?
            } else if recording {
                result_set.score_par_observed(
                    &probs,
                    &self.config.evaluator,
                    &par,
                    Some(&self.recorder),
                )?
            } else {
                result_set.score_par(&probs, &self.config.evaluator, &par)?
            };
            let policy = self.policies.select(&user.role, &request.purpose)?.clone();
            let confidences: Vec<f64> = scored.iter().map(|s| s.confidence).collect();
            let decision = evaluate_results(&policy, &confidences);
            let released = released_tuples(&scored, &decision.released);
            let requested = (request.min_fraction * scored.len() as f64).ceil() as usize;
            let shortfall = requested.saturating_sub(released.len());
            if shortfall > 0 {
                let withheld = withheld_tuples(&scored, &decision.withheld);
                let cache = self.config.circuit_cache.then_some(&mut self.cache);
                match improve::build_instance(
                    &self.catalog,
                    &self.costs,
                    &self.config,
                    &withheld,
                    policy.threshold,
                    shortfall,
                    cache,
                )? {
                    Some(instance) => instances.push(instance),
                    None => non_monotone = true,
                }
            }
            // Audit each query's policy decision, exactly as single-query
            // evaluation does (the combined proposal is audited when it is
            // applied; per-query `proposed` is therefore always false).
            self.record_query_decision(
                user,
                request,
                policy.threshold,
                released.len(),
                decision.withheld.len(),
                false,
            );
            responses.push(QueryResponse {
                schema: result_set.schema().clone(),
                released,
                withheld: decision.withheld.len(),
                threshold: policy.threshold,
                proposal: None,
                no_proposal: None,
            });
        }

        let mut batch = crate::response::BatchResponse {
            responses,
            proposal: None,
            no_proposal: None,
        };
        if non_monotone {
            batch.no_proposal = Some(NoProposal::NonMonotone);
            return Ok(batch);
        }
        if instances.is_empty() {
            batch.no_proposal = Some(NoProposal::NotNeeded);
            return Ok(batch);
        }
        let multi = MultiQueryProblem::merge(&instances)?;
        let greedy_opts = GreedyOptions {
            parallelism: self.config.parallelism(),
            ..GreedyOptions::default()
        };
        match solve_greedy(&multi, &greedy_opts) {
            Ok(out) => {
                if recording {
                    out.stats.emit_as("solver.multi", &self.recorder);
                }
                let mut increments: Vec<crate::response::ProposedIncrement> = out
                    .solution
                    .levels
                    .iter()
                    .zip(&multi.bases)
                    .filter(|(l, b)| **l > b.initial + 1e-12)
                    .map(|(l, b)| crate::response::ProposedIncrement {
                        tuple_id: TupleId(b.id),
                        from: b.initial,
                        to: *l,
                        cost: b.cost.cost(b.initial, *l),
                    })
                    .collect();
                increments.sort_by_key(|i| i.tuple_id);
                let requested: usize = instances.iter().map(|i| i.required).sum();
                batch.proposal = Some(crate::response::ImprovementProposal {
                    cost: out.solution.cost,
                    increments,
                    projected_released: batch
                        .responses
                        .iter()
                        .map(|r| r.released.len())
                        .sum::<usize>()
                        + out.solution.satisfied.len(),
                    requested,
                    version: self.version,
                });
            }
            Err(pcqe_core::CoreError::Infeasible {
                achievable,
                required,
            }) => {
                batch.no_proposal = Some(NoProposal::Infeasible {
                    achievable,
                    requested: required,
                });
            }
            Err(pcqe_core::CoreError::GaveUp(m)) => {
                batch.no_proposal = Some(NoProposal::SolverGaveUp(m));
            }
            Err(e) => return Err(e.into()),
        }
        Ok(batch)
    }

    /// Preview a proposal without applying it: re-evaluate the query with
    /// the proposal's confidences substituted in, returning what the user
    /// *would* see after accepting. Nothing observable in the database
    /// changes — this is the "report the cost and the data to the manager"
    /// step of Section 3.1, with the outcome made inspectable. (With the
    /// circuit cache enabled the preview warms/invalidates pool memos,
    /// which is why the receiver is `&mut`; the next scoring pass re-syncs
    /// probabilities from the catalog, so answers are unaffected.)
    ///
    /// This is the incremental-re-scoring fast path: overriding one base
    /// tuple's confidence invalidates only the pool nodes whose var-set
    /// intersects it, so repeated what-if probes re-evaluate a sliver of
    /// each circuit instead of re-expanding every formula.
    pub fn what_if(
        &mut self,
        user: &User,
        request: &QueryRequest,
        proposal: &crate::response::ImprovementProposal,
    ) -> Result<QueryResponse> {
        let par = self.config.parallelism();
        let plan = self.plan_sql(&request.sql)?;
        let result_set = self.run_plan(&plan, &par, false)?;
        let overrides: BTreeMap<TupleId, f64> = proposal
            .increments
            .iter()
            .map(|i| (i.tuple_id, i.to))
            .collect();
        let probs = |v: pcqe_lineage::VarId| {
            let id = TupleId(v.0);
            overrides
                .get(&id)
                .copied()
                .or_else(|| self.catalog.confidence(id))
        };
        let scored = if self.config.circuit_cache {
            sync_cache_probs(&mut self.cache, result_set.rows(), &probs);
            let scored = result_set.score_cached(&mut self.cache, &self.config.evaluator)?;
            self.record_cache_activity();
            scored
        } else {
            result_set.score_par(&probs, &self.config.evaluator, &par)?
        };
        let policy = self.policies.select(&user.role, &request.purpose)?;
        let confidences: Vec<f64> = scored.iter().map(|s| s.confidence).collect();
        let decision = evaluate_results(policy, &confidences);
        Ok(QueryResponse {
            schema: result_set.schema().clone(),
            released: released_tuples(&scored, &decision.released),
            withheld: decision.withheld.len(),
            threshold: policy.threshold,
            proposal: None,
            no_proposal: Some(NoProposal::NotNeeded),
        })
    }

    /// Accept a proposal: apply its increments to the database (Figure 1,
    /// steps 8–9, the data-quality improvement component). Rejects
    /// proposals computed against an older database version.
    pub fn apply(&mut self, proposal: &crate::response::ImprovementProposal) -> Result<()> {
        if proposal.version != self.version {
            return Err(EngineError::StaleProposal);
        }
        for inc in &proposal.increments {
            self.catalog.raise_confidence(inc.tuple_id, inc.to)?;
        }
        self.version += 1;
        self.record_improvement(proposal.increments.len(), proposal.cost);
        Ok(())
    }

    /// Convenience: query, and if a proposal comes back, accept it and
    /// re-run the query (the full loop of Figure 1).
    pub fn query_with_improvement(
        &mut self,
        user: &User,
        request: &QueryRequest,
    ) -> Result<QueryResponse> {
        let first = self.query(user, request)?;
        match &first.proposal {
            Some(p) => {
                let p = p.clone();
                self.apply(&p)?;
                self.query(user, request)
            }
            None => Ok(first),
        }
    }
}

/// Materialize the released-tuple payload for the indices a policy
/// decision selected. `PolicyDecision` indices are in-bounds by
/// construction, but the query path must stay panic-free (PCQE-P002), so
/// this goes through checked `get` — an impossible out-of-range index is
/// dropped instead of unwinding mid-release.
fn released_tuples(scored: &[pcqe_algebra::ScoredTuple], indices: &[usize]) -> Vec<ReleasedTuple> {
    indices
        .iter()
        .filter_map(|&i| scored.get(i))
        .map(|s| ReleasedTuple {
            tuple: s.tuple.clone(),
            lineage: s.lineage.clone(),
            confidence: s.confidence,
        })
        .collect()
}

/// Borrow the withheld scored tuples for strategy finding, with the same
/// checked-indexing discipline as [`released_tuples`].
fn withheld_tuples<'a>(
    scored: &'a [pcqe_algebra::ScoredTuple],
    indices: &[usize],
) -> Vec<&'a pcqe_algebra::ScoredTuple> {
    indices.iter().filter_map(|&i| scored.get(i)).collect()
}

/// Push the current probability of every variable the result set reads
/// into the circuit cache before a cached scoring pass. `set_prob` is a
/// bitwise-compared no-op for unchanged values, so this only invalidates
/// memos for tuples whose confidence actually moved (an `apply`, or a
/// what-if override) — the incremental-re-scoring entry point. Variables
/// the source does not know are left unset so cached scoring fails with
/// the same `UnknownVar` the uncached evaluator reports.
fn sync_cache_probs<F: Fn(pcqe_lineage::VarId) -> Option<f64>>(
    cache: &mut pcqe_lineage::CircuitCache,
    rows: &[pcqe_algebra::DerivedTuple],
    prob_of: &F,
) {
    for row in rows {
        for v in row.lineage.vars() {
            if let Some(p) = prob_of(v) {
                cache.set_prob(v, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_storage::{Column, DataType};

    /// The paper's running example, end to end.
    fn paper_db() -> Database {
        paper_db_with(EngineConfig::default())
    }

    /// The paper's running example under an explicit configuration.
    fn paper_db_with(config: EngineConfig) -> Database {
        let mut db = Database::new(config);
        db.create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("proposal", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        // Tuple 02 (p=0.3, +0.1 costs 100) and tuple 03 (p=0.4, +0.1
        // costs 10), as in Section 3.1.
        let t02 = db
            .insert(
                "Proposal",
                vec![
                    Value::text("SkyCam"),
                    Value::text("drone v1"),
                    Value::Real(800_000.0),
                ],
                0.3,
            )
            .unwrap();
        let t03 = db
            .insert(
                "Proposal",
                vec![
                    Value::text("SkyCam"),
                    Value::text("drone v2"),
                    Value::Real(900_000.0),
                ],
                0.4,
            )
            .unwrap();
        let t13 = db
            .insert(
                "CompanyInfo",
                vec![Value::text("SkyCam"), Value::Real(500_000.0)],
                0.1,
            )
            .unwrap();
        db.set_cost(t02, CostFn::linear(1000.0).unwrap()).unwrap();
        db.set_cost(t03, CostFn::linear(100.0).unwrap()).unwrap();
        // Make raising t13 expensive so the optimal fix is t03, as in the
        // paper's narrative.
        db.set_cost(t13, CostFn::linear(10_000.0).unwrap()).unwrap();
        db.add_policy(ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap());
        db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
        db
    }

    const QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
        FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
        WHERE funding < 1000000.0";

    #[test]
    fn secretary_sees_the_result() {
        let mut db = paper_db();
        let resp = db
            .query(
                &User::new("sue", "Secretary"),
                &QueryRequest::new(QUERY, "analysis"),
            )
            .unwrap();
        assert_eq!(resp.released.len(), 1);
        assert!((resp.released[0].confidence - 0.058).abs() < 1e-12);
        assert!(matches!(resp.no_proposal, Some(NoProposal::NotNeeded)));
    }

    #[test]
    fn manager_gets_a_proposal_choosing_the_cheap_tuple() {
        let mut db = paper_db();
        let resp = db
            .query(
                &User::new("mark", "Manager"),
                &QueryRequest::new(QUERY, "investment"),
            )
            .unwrap();
        assert!(resp.released.is_empty(), "0.058 < β = 0.06");
        assert_eq!(resp.withheld, 1);
        let proposal = resp.proposal.expect("a strategy exists");
        // Optimal fix: raise t03 from 0.4 to 0.5, cost 10 (Section 3.1).
        assert!(
            (proposal.cost - 10.0).abs() < 1e-9,
            "cost {}",
            proposal.cost
        );
        assert_eq!(proposal.increments.len(), 1);
        let inc = &proposal.increments[0];
        assert!((inc.from - 0.4).abs() < 1e-12);
        assert!((inc.to - 0.5).abs() < 1e-12);
        assert_eq!(proposal.projected_released, 1);
    }

    #[test]
    fn applying_the_proposal_releases_the_result() {
        let mut db = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query_with_improvement(&user, &request).unwrap();
        assert_eq!(resp.released.len(), 1);
        // p38 after the fix: (0.3 + 0.5 − 0.15) · 0.1 = 0.065.
        assert!((resp.released[0].confidence - 0.065).abs() < 1e-12);
    }

    #[test]
    fn stale_proposals_are_rejected() {
        let mut db = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query(&user, &request).unwrap();
        let proposal = resp.proposal.unwrap();
        // Any write invalidates the proposal.
        db.insert(
            "CompanyInfo",
            vec![Value::text("Other"), Value::Real(1.0)],
            0.5,
        )
        .unwrap();
        assert_eq!(db.apply(&proposal), Err(EngineError::StaleProposal));
    }

    #[test]
    fn partial_fraction_requests_no_proposal_when_met() {
        let mut db = paper_db();
        // Add a second, certain result so half the results already pass.
        db.insert(
            "Proposal",
            vec![
                Value::text("SureThing"),
                Value::text("app"),
                Value::Real(100.0),
            ],
            0.9,
        )
        .unwrap();
        db.insert(
            "CompanyInfo",
            vec![Value::text("SureThing"), Value::Real(5.0)],
            0.9,
        )
        .unwrap();
        let resp = db
            .query(
                &User::new("mark", "Manager"),
                &QueryRequest::new(QUERY, "investment").expecting(0.5),
            )
            .unwrap();
        assert_eq!(resp.released.len(), 1, "only the certain pair passes");
        assert!(matches!(resp.no_proposal, Some(NoProposal::NotNeeded)));
    }

    #[test]
    fn infeasible_improvement_reported() {
        let mut db = Database::new(EngineConfig::default());
        db.create_table(
            "t",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        db.insert("t", vec![Value::Int(1)], 0.2).unwrap();
        // β = 1.0 can never be strictly exceeded.
        db.add_policy(ConfidencePolicy::new("r", "p", 1.0).unwrap());
        let resp = db
            .query(
                &User::new("u", "r"),
                &QueryRequest::new("SELECT x FROM t", "p"),
            )
            .unwrap();
        assert!(resp.released.is_empty());
        assert!(matches!(
            resp.no_proposal,
            Some(NoProposal::Infeasible { .. })
        ));
    }

    #[test]
    fn negated_lineage_is_not_improvable() {
        let mut db = Database::new(EngineConfig::default());
        db.create_table(
            "a",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        db.create_table(
            "b",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        db.insert("a", vec![Value::Int(1)], 0.4).unwrap();
        db.insert("b", vec![Value::Int(1)], 0.4).unwrap();
        db.add_policy(ConfidencePolicy::new("r", "p", 0.5).unwrap());
        let resp = db
            .query(
                &User::new("u", "r"),
                &QueryRequest::new("SELECT x FROM a EXCEPT SELECT x FROM b", "p"),
            )
            .unwrap();
        assert!(resp.released.is_empty());
        assert!(matches!(resp.no_proposal, Some(NoProposal::NonMonotone)));
    }

    #[test]
    fn missing_policy_is_an_error() {
        let mut db = paper_db();
        assert!(matches!(
            db.query(
                &User::new("x", "Intern"),
                &QueryRequest::new(QUERY, "analysis")
            ),
            Err(EngineError::Policy(_))
        ));
    }

    #[test]
    fn estimator_collects_samples_from_proposals() {
        let mut db = paper_db();
        assert!(db.estimator().is_empty());
        let _ = db
            .query(
                &User::new("mark", "Manager"),
                &QueryRequest::new(QUERY, "investment"),
            )
            .unwrap();
        assert_eq!(db.estimator().len(), 1);
    }

    #[test]
    fn audit_log_records_queries_and_improvements() {
        use crate::audit::AuditEntry;
        let mut db = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query(&user, &request).unwrap();
        db.apply(&resp.proposal.unwrap()).unwrap();
        let _ = db.query(&user, &request).unwrap();
        let log = db.audit_log();
        assert_eq!(log.len(), 3);
        assert!(matches!(
            &log[0],
            AuditEntry::Query { user, released: 0, withheld: 1, proposed: true, .. }
                if user == "mark"
        ));
        assert!(matches!(
            &log[1],
            AuditEntry::Improvement { tuples: 1, cost } if (cost - 10.0).abs() < 1e-9
        ));
        assert!(matches!(
            &log[2],
            AuditEntry::Query {
                released: 1,
                proposed: false,
                ..
            }
        ));
    }

    #[test]
    fn metrics_snapshot_mirrors_the_audit_log() {
        use crate::audit::AuditEntry;
        let mut db = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query(&user, &request).unwrap();
        db.apply(&resp.proposal.unwrap()).unwrap();
        let _ = db.query(&user, &request).unwrap();
        let _ = db
            .query(
                &User::new("sue", "Secretary"),
                &QueryRequest::new(QUERY, "analysis"),
            )
            .unwrap();

        let (mut queries, mut released, mut withheld, mut improvements, mut tuples) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for entry in db.audit_log() {
            match entry {
                AuditEntry::Query {
                    released: r,
                    withheld: w,
                    ..
                } => {
                    queries += 1;
                    released += *r as u64;
                    withheld += *w as u64;
                }
                AuditEntry::Improvement { tuples: t, .. } => {
                    improvements += 1;
                    tuples += *t as u64;
                }
            }
        }
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("query.total"), queries);
        assert_eq!(snap.counter("policy.released"), released);
        assert_eq!(snap.counter("policy.withheld"), withheld);
        assert_eq!(snap.counter("improvement.applied"), improvements);
        assert_eq!(snap.counter("improvement.tuples"), tuples);
        // Solver and execution instrumentation fired too.
        assert_eq!(snap.counter("query.proposals"), 1);
        assert!(snap.counter("exec.operators") > 0);
        assert!(snap.counter("solver.quota.required") > 0);
        assert!(!snap.spans.is_empty(), "query spans were recorded");
    }

    #[test]
    fn batch_queries_are_audited_like_single_queries() {
        use crate::audit::AuditEntry;
        let mut db = paper_db();
        let user = User::new("sue", "Secretary");
        let requests = [
            QueryRequest::new(QUERY, "analysis"),
            QueryRequest::new(QUERY, "analysis"),
        ];
        let _ = db.query_batch(&user, &requests).unwrap();
        let log = db.audit_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|e| matches!(
            e,
            AuditEntry::Query {
                released: 1,
                withheld: 0,
                proposed: false,
                ..
            }
        )));
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("query.total"), 2);
        assert_eq!(snap.counter("policy.released"), 2);
    }

    #[test]
    fn recording_off_is_result_neutral_and_records_nothing() {
        let mut on = paper_db();
        let mut off = paper_db_with(EngineConfig {
            record_metrics: false,
            ..EngineConfig::default()
        });
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let r_on = on.query(&user, &request).unwrap();
        let r_off = off.query(&user, &request).unwrap();
        assert_eq!(r_on.released.len(), r_off.released.len());
        assert_eq!(r_on.withheld, r_off.withheld);
        assert_eq!(r_on.proposal, r_off.proposal);
        assert!(off.metrics_snapshot().is_empty(), "recording off is silent");
        assert!(!on.metrics_snapshot().is_empty());
        // Audit entries are identical either way.
        assert_eq!(on.audit_log(), off.audit_log());
    }

    #[test]
    fn explain_analyze_annotates_observed_row_counts() {
        let db = paper_db();
        let text = db.explain_analyze(QUERY).unwrap();
        // Physical operators with true observed sizes: the pushed-down σ
        // keeps both sub-million proposals, the join emits 2 SkyCam pairs,
        // and DISTINCT merges them into 1.
        assert!(text.contains("TableScan Proposal [filter:"), "got:\n{text}");
        assert!(text.contains("(rows_in=2 rows_out=2"), "got:\n{text}");
        assert!(
            text.contains("TableScan CompanyInfo (rows_in=1 rows_out=1"),
            "got:\n{text}"
        );
        assert!(
            text.contains("NestedLoopJoin") && text.contains("(rows_in=3 rows_out=2"),
            "got:\n{text}"
        );
        assert!(
            text.contains("Project DISTINCT [company, income] (rows_in=2 rows_out=1"),
            "got:\n{text}"
        );
        // EXPLAIN ANALYZE is read-only: no audit entry, no policy metrics.
        assert!(db.audit_log().is_empty());
        assert_eq!(db.metrics_snapshot().counter("query.total"), 0);
    }

    #[test]
    fn explain_analyze_surfaces_batch_counts_only_when_vectorized() {
        // The default (vectorized) profile annotates batch-producing
        // operators; scans materialise one morsel batch here.
        let db = paper_db();
        let text = db.explain_analyze(QUERY).unwrap();
        assert!(text.contains("batches=1"), "got:\n{text}");
        // Tuple-at-a-time execution never mentions batches — the
        // rendering is unchanged from before the vectorized executor.
        let db = paper_db_with(EngineConfig {
            vectorized_execution: false,
            ..EngineConfig::default()
        });
        let text = db.explain_analyze(QUERY).unwrap();
        assert!(!text.contains("batches="), "got:\n{text}");
    }

    #[test]
    fn explain_analyze_logical_fallback_keeps_logical_labels() {
        let db = paper_db_with(EngineConfig {
            physical_planning: false,
            ..EngineConfig::default()
        });
        let text = db.explain_analyze(QUERY).unwrap();
        assert!(
            text.contains("Select (rows_in=2 rows_out=2"),
            "got:\n{text}"
        );
        assert!(text.contains("Scan Proposal (rows_in=2 rows_out=2"));
        assert!(text.contains("Scan CompanyInfo (rows_in=1 rows_out=1"));
        assert!(text.contains("Join (rows_in=3 rows_out=2"));
    }

    #[test]
    fn explain_physical_shows_both_plans() {
        let db = paper_db();
        let text = db.explain_physical(QUERY).unwrap();
        assert!(text.contains("LOGICAL"), "got:\n{text}");
        assert!(text.contains("PHYSICAL"), "got:\n{text}");
        assert!(text.contains("NestedLoopJoin"), "got:\n{text}");
        assert!(text.contains("TableScan Proposal [filter:"), "got:\n{text}");
    }

    #[test]
    fn physical_planning_off_is_result_identical() {
        let mut physical = paper_db();
        let mut logical = paper_db_with(EngineConfig {
            physical_planning: false,
            ..EngineConfig::default()
        });
        for (user, purpose) in [
            (User::new("sue", "Secretary"), "analysis"),
            (User::new("mark", "Manager"), "investment"),
        ] {
            let request = QueryRequest::new(QUERY, purpose);
            let a = physical.query(&user, &request).unwrap();
            let b = logical.query(&user, &request).unwrap();
            assert_eq!(a.released, b.released);
            assert_eq!(a.withheld, b.withheld);
            assert_eq!(a.proposal, b.proposal);
        }
        assert_eq!(physical.audit_log(), logical.audit_log());
    }

    #[test]
    fn beta_short_circuit_preserves_release_and_audit() {
        let mut gated = paper_db();
        let mut exact = paper_db_with(EngineConfig {
            beta_short_circuit: false,
            ..EngineConfig::default()
        });
        let secretary = User::new("sue", "Secretary");
        let manager = User::new("mark", "Manager");
        for db in [&mut gated, &mut exact] {
            let s = db
                .query(&secretary, &QueryRequest::new(QUERY, "analysis"))
                .unwrap();
            assert_eq!(s.released.len(), 1);
            let m = db
                .query(&manager, &QueryRequest::new(QUERY, "investment"))
                .unwrap();
            assert!(m.released.is_empty());
            // The θ path is exempt from gating: the proposal is built
            // from exact confidences either way.
            let p = m.proposal.expect("a strategy exists");
            assert!((p.cost - 10.0).abs() < 1e-9);
        }
        // Released/withheld counters and audit entries are identical.
        assert_eq!(gated.audit_log(), exact.audit_log());
        let gs = gated.metrics_snapshot();
        let es = exact.metrics_snapshot();
        assert_eq!(gs.counter("policy.released"), es.counter("policy.released"));
        assert_eq!(gs.counter("policy.withheld"), es.counter("policy.withheld"));
        // On the paper example the union bound (0.2) exceeds both β
        // values, so the gated run skips nothing — and must say so.
        assert_eq!(gs.counter("lineage.exact_skipped"), 0);
        assert_eq!(es.counter("lineage.exact_skipped"), 0);
    }

    #[test]
    fn beta_gating_skips_exact_evaluation_for_hopeless_rows() {
        fn build(config: EngineConfig) -> Database {
            let mut db = Database::new(config);
            db.create_table(
                "a",
                Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
            )
            .unwrap();
            db.create_table(
                "b",
                Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
            )
            .unwrap();
            // Row 1: AND-lineage with upper bound min(0.2, 0.9) = 0.2 ≤ β
            // but exact 0.18 — the short-circuit case.
            db.insert("a", vec![Value::Int(1)], 0.2).unwrap();
            db.insert("b", vec![Value::Int(1)], 0.9).unwrap();
            // Row 2: bound 0.9 > β, exact 0.855 > β — released.
            db.insert("a", vec![Value::Int(2)], 0.9).unwrap();
            db.insert("b", vec![Value::Int(2)], 0.95).unwrap();
            db.add_policy(ConfidencePolicy::new("r", "p", 0.5).unwrap());
            db
        }
        let sql = "SELECT a.x FROM a JOIN b ON a.x = b.x";
        let user = User::new("u", "r");

        let mut db = build(EngineConfig::default());
        // θ = 0.5 is met by the released row: the hopeless row's exact
        // confidence is never computed.
        let resp = db
            .query(&user, &QueryRequest::new(sql, "p").expecting(0.5))
            .unwrap();
        assert_eq!(resp.released.len(), 1);
        assert!((resp.released[0].confidence - 0.855).abs() < 1e-12);
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("lineage.exact_skipped"), 1);
        assert_eq!(snap.counter("lineage.exact_rescored"), 0);

        // θ = 1.0 pulls the withheld row into strategy finding, which is
        // exempt from gating: the row is re-scored exactly first.
        let resp = db.query(&user, &QueryRequest::new(sql, "p")).unwrap();
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("lineage.exact_skipped"), 2);
        assert_eq!(snap.counter("lineage.exact_rescored"), 1);
        let proposal = resp.proposal.expect("a strategy exists");

        // The proposal is identical to a never-gated engine's.
        let mut exact = build(EngineConfig {
            beta_short_circuit: false,
            ..EngineConfig::default()
        });
        let expected = exact
            .query(&user, &QueryRequest::new(sql, "p"))
            .unwrap()
            .proposal
            .expect("a strategy exists");
        assert_eq!(proposal, expected);
    }

    #[test]
    fn index_changes_access_path_but_not_results() {
        let mut db = paper_db();
        let user = User::new("sue", "Secretary");
        let sql = "SELECT proposal FROM Proposal WHERE company = 'SkyCam'";
        let before = db
            .query(&user, &QueryRequest::new(sql, "analysis"))
            .unwrap();
        let col = db.create_index("Proposal", "company").unwrap();
        assert_eq!(col, 0);
        let text = db.explain_physical(sql).unwrap();
        assert!(
            text.contains("IndexScan Proposal (company = 'SkyCam')"),
            "got:\n{text}"
        );
        let after = db
            .query(&user, &QueryRequest::new(sql, "analysis"))
            .unwrap();
        assert_eq!(before.released, after.released);
        assert_eq!(before.withheld, after.withheld);
    }

    #[test]
    fn trace_query_is_result_neutral_and_decisions_match_audit() {
        use pcqe_obs::trace::TraceEventKind;
        let mut traced = paper_db();
        let mut plain = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let (resp, trace) = traced.trace_query(&user, &request).unwrap();
        let expected = plain.query(&user, &request).unwrap();
        // Tracing is write-only: same release decision, same proposal,
        // same audit trail as an untraced run.
        assert_eq!(resp.released, expected.released);
        assert_eq!(resp.withheld, expected.withheld);
        assert_eq!(resp.proposal, expected.proposal);
        assert_eq!(traced.audit_log(), plain.audit_log());
        // Exactly one Decision per scored row, matching the audit entry's
        // released/withheld accounting.
        let decisions = trace.decisions();
        assert_eq!(decisions.len(), resp.released.len() + resp.withheld);
        assert!(decisions.iter().all(|d| !d.released));
        assert!((decisions[0].beta - 0.06).abs() < 1e-12);
        assert!((decisions[0].confidence - 0.058).abs() < 1e-12);
        assert!(decisions[0].lineage_size > 0);
        // Lifecycle and operator spans are present.
        let begins: Vec<&str> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::SpanBegin { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        for name in ["query", "plan", "execute", "score", "gate", "propose"] {
            assert!(begins.contains(&name), "missing span {name}: {begins:?}");
        }
        assert!(
            begins.iter().any(|n| n.starts_with("op:")),
            "operator spans missing: {begins:?}"
        );
        // The tracer is disabled again afterwards and its buffer drained.
        assert!(!traced.tracer().is_enabled());
        assert!(traced.tracer().drain().events.is_empty());
    }

    #[test]
    fn what_if_previews_without_mutating() {
        let mut db = paper_db();
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query(&user, &request).unwrap();
        let proposal = resp.proposal.unwrap();
        let preview = db.what_if(&user, &request, &proposal).unwrap();
        assert_eq!(preview.released.len(), 1);
        assert!((preview.released[0].confidence - 0.065).abs() < 1e-12);
        // The real database is untouched: the manager still sees nothing.
        let again = db.query(&user, &request).unwrap();
        assert!(again.released.is_empty());
        // And the original proposal is still applicable afterwards.
        db.apply(&proposal).unwrap();
    }

    #[test]
    fn batch_queries_share_one_strategy() {
        // Two tables whose rows derive from... actually two queries over
        // the same table: improving the shared base tuples once must
        // satisfy both queries.
        let mut db = Database::new(EngineConfig::default());
        db.create_table(
            "m",
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("grp", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        let shared = db
            .insert("m", vec![Value::Int(1), Value::text("both")], 0.3)
            .unwrap();
        db.insert("m", vec![Value::Int(2), Value::text("a")], 0.3)
            .unwrap();
        db.insert("m", vec![Value::Int(3), Value::text("b")], 0.9)
            .unwrap();
        db.set_cost(shared, CostFn::linear(10.0).unwrap()).unwrap();
        db.add_policy(ConfidencePolicy::new("r", "p", 0.5).unwrap());
        let user = User::new("u", "r");
        let q1 = QueryRequest::new("SELECT x FROM m WHERE grp = 'both' OR grp = 'a'", "p")
            .expecting(0.5);
        let q2 = QueryRequest::new("SELECT x FROM m WHERE grp = 'both' OR grp = 'b'", "p");
        let batch = db.query_batch(&user, &[q1.clone(), q2.clone()]).unwrap();
        assert_eq!(batch.responses.len(), 2);
        let proposal = batch.proposal.clone().expect("a combined strategy exists");
        // The shared cheap tuple is raised once and serves both queries.
        assert!(proposal.increments.iter().any(|i| i.tuple_id == shared));
        db.apply(&proposal).unwrap();
        let r1 = db.query(&user, &q1).unwrap();
        let r2 = db.query(&user, &q2).unwrap();
        assert!(!r1.released.is_empty());
        assert_eq!(r2.released.len(), 2);
    }

    #[test]
    fn batch_with_nothing_to_do_reports_not_needed() {
        let mut db = paper_db();
        let user = User::new("sue", "Secretary");
        let batch = db
            .query_batch(&user, &[QueryRequest::new(QUERY, "analysis")])
            .unwrap();
        assert!(batch.proposal.is_none());
        assert!(matches!(batch.no_proposal, Some(NoProposal::NotNeeded)));
    }

    #[test]
    fn ddl_and_dml_statements() {
        let mut db = Database::new(EngineConfig::default());
        assert_eq!(
            db.execute("CREATE TABLE t (x INT, label TEXT)").unwrap(),
            StatementOutcome::TableCreated
        );
        let out = db
            .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b') WITH CONFIDENCE 0.7")
            .unwrap();
        let StatementOutcome::Inserted(ids) = out else {
            panic!("expected inserted rows");
        };
        assert_eq!(ids.len(), 2);
        assert_eq!(db.confidence(ids[0]), Some(0.7));
        // Default confidence is 1.0.
        let StatementOutcome::Inserted(ids) = db.execute("INSERT INTO t VALUES (3, 'c')").unwrap()
        else {
            panic!()
        };
        assert_eq!(db.confidence(ids[0]), Some(1.0));
        // Queries are rejected through execute.
        assert!(db.execute("SELECT * FROM t").is_err());
        // Type errors surface.
        assert!(db.execute("INSERT INTO t VALUES ('wrong', 1)").is_err());
    }

    #[test]
    fn provenance_backed_inserts() {
        use pcqe_provenance::{CollectionMethod, ProvenanceRecord, Source};
        let mut db = Database::new(EngineConfig::default());
        db.create_table(
            "t",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        let id = db
            .insert_assessed(
                "t",
                vec![Value::Int(1)],
                &[ProvenanceRecord::new(
                    Source::new("registry", 0.9).unwrap(),
                    CollectionMethod::Audited,
                )],
            )
            .unwrap();
        assert!((db.confidence(id).unwrap() - 0.9).abs() < 1e-12);
    }
}
