//! An audit trail of policy decisions.
//!
//! Confidence policies are an access-control mechanism, and access-control
//! decisions should be accountable: every query records who asked, under
//! which role and purpose, which threshold governed, and how many results
//! were released versus withheld — plus every accepted improvement with
//! its cost. The log is in-memory and append-only; inspect it with
//! [`crate::Database::audit_log`].

use std::fmt;

/// One entry in the audit trail.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEntry {
    /// A query was evaluated and policy-checked.
    Query {
        /// Requesting user name.
        user: String,
        /// Role under which the policy was selected.
        role: String,
        /// Stated purpose.
        purpose: String,
        /// The governing threshold β.
        threshold: f64,
        /// Results released.
        released: usize,
        /// Results withheld.
        withheld: usize,
        /// Whether an improvement proposal was attached.
        proposed: bool,
    },
    /// An improvement proposal was accepted and applied.
    Improvement {
        /// Number of base tuples raised.
        tuples: usize,
        /// Total cost paid.
        cost: f64,
    },
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEntry::Query {
                user,
                role,
                purpose,
                threshold,
                released,
                withheld,
                proposed,
            } => write!(
                f,
                "query by {user} ({role}, {purpose}): β={threshold}, {released} released, {withheld} withheld{}",
                if *proposed { ", proposal attached" } else { "" }
            ),
            AuditEntry::Improvement { tuples, cost } => {
                write!(f, "improvement applied: {tuples} tuple(s), cost {cost}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render() {
        let q = AuditEntry::Query {
            user: "mark".into(),
            role: "Manager".into(),
            purpose: "investment".into(),
            threshold: 0.06,
            released: 0,
            withheld: 1,
            proposed: true,
        };
        let text = q.to_string();
        assert!(text.contains("mark"));
        assert!(text.contains("proposal attached"));
        let i = AuditEntry::Improvement {
            tuples: 1,
            cost: 10.0,
        };
        assert!(i.to_string().contains("cost 10"));
    }
}
