//! Strategy finding on behalf of the engine: build the confidence-
//! increment problem from withheld results, dispatch a solver, translate
//! the solution into an [`ImprovementProposal`].

use crate::config::{EngineConfig, SolverChoice};
use crate::response::{ImprovementProposal, NoProposal, ProposedIncrement};
use crate::Result;
use pcqe_algebra::ScoredTuple;
use pcqe_core::dnc::{self, DncOptions};
use pcqe_core::greedy::{self, GreedyOptions};
use pcqe_core::heuristic::{self, HeuristicOptions};
use pcqe_core::problem::{ProblemBuilder, ProblemInstance};
use pcqe_core::sink::SolverSink;
use pcqe_core::{CoreError, Solution};
use pcqe_cost::CostFn;
use pcqe_storage::{Catalog, TupleId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// The outcome of a propose run: a proposal, or a reason there is none.
pub(crate) enum ProposeOutcome {
    /// A strategy was found.
    Proposal(ImprovementProposal),
    /// No strategy is possible/needed; see the reason.
    No(NoProposal),
}

/// Statistics handed back for the runtime estimator.
pub(crate) struct ProposeStats {
    /// Problem size (distinct base tuples), the estimator's x-axis.
    pub problem_size: usize,
    /// Solve time.
    pub elapsed: Duration,
}

/// Everything the strategy finder needs besides the withheld rows.
pub(crate) struct ProposeContext<'a> {
    /// The catalog supplying current confidences.
    pub catalog: &'a Catalog,
    /// Per-tuple cost functions.
    pub costs: &'a BTreeMap<TupleId, CostFn>,
    /// Engine configuration (δ, solver, default cost).
    pub config: &'a EngineConfig,
    /// The governing threshold β.
    pub beta: f64,
    /// Additional results that must pass.
    pub needed: usize,
    /// Results already released.
    pub already_released: usize,
    /// Total results the user asked for.
    pub requested: usize,
    /// Database version the proposal is valid against.
    pub version: u64,
}

/// Compute an improvement proposal that pushes `ctx.needed` more of the
/// withheld results above β.
///
/// Solver statistics (nodes expanded, prune counts, phase timings, quota
/// progress) are emitted into `sink`; pass [`pcqe_core::sink::NullSink`]
/// to discard them. The sink never influences the outcome.
pub(crate) fn propose(
    ctx: &ProposeContext<'_>,
    withheld: &[&ScoredTuple],
    sink: &dyn SolverSink,
    cache: Option<&mut pcqe_lineage::CircuitCache>,
) -> Result<(ProposeOutcome, Option<ProposeStats>)> {
    let ProposeContext {
        catalog,
        costs,
        config,
        beta,
        needed,
        already_released,
        requested,
        version,
    } = *ctx;
    // Results with negated lineage are not monotone in base confidences;
    // raising a base tuple could *lower* them. They are excluded from the
    // improvable pool.
    let Some(problem) = build_instance(catalog, costs, config, withheld, beta, needed, cache)?
    else {
        return Ok((ProposeOutcome::No(NoProposal::NonMonotone), None));
    };
    let size = problem.bases.len();
    sink.count("solver.problem_bases", size as u64);
    sink.count("solver.quota.required", needed as u64);

    let solved = dispatch(&problem, &config.solver, &config.parallelism(), sink);
    match solved {
        Ok((solution, elapsed)) => {
            sink.count("solver.quota.satisfied", solution.satisfied.len() as u64);
            let mut increments: Vec<ProposedIncrement> = solution
                .increments(&problem)
                .into_iter()
                .map(|inc| ProposedIncrement {
                    tuple_id: TupleId(inc.id),
                    from: inc.from,
                    to: inc.to,
                    cost: inc.cost,
                })
                .collect();
            increments.sort_by_key(|i| i.tuple_id);
            let proposal = ImprovementProposal {
                cost: solution.cost,
                increments,
                projected_released: already_released + solution.satisfied.len(),
                requested,
                version,
            };
            Ok((
                ProposeOutcome::Proposal(proposal),
                Some(ProposeStats {
                    problem_size: size,
                    elapsed,
                }),
            ))
        }
        Err(CoreError::Infeasible { achievable, .. }) => Ok((
            ProposeOutcome::No(NoProposal::Infeasible {
                achievable: already_released + achievable,
                requested,
            }),
            None,
        )),
        Err(CoreError::GaveUp(m)) => Ok((ProposeOutcome::No(NoProposal::SolverGaveUp(m)), None)),
        Err(e) => Err(e.into()),
    }
}

/// Build one query's confidence-increment instance from its withheld
/// results; `None` when too few of them are improvable (negated lineage).
///
/// With a [`pcqe_lineage::CircuitCache`] supplied, result circuits are
/// compiled through the shared pool: formulas (and subformulas) already
/// expanded while scoring this query are reused via their `Arc` instead of
/// re-running Shannon expansion. The greedy/anneal/exhaustive/heuristic/
/// dnc/multi solvers all evaluate [`pcqe_core::problem::ConfFn::Compiled`]
/// circuits, so every one of them routes through the pooled circuits — and
/// the compiled arithmetic is identical either way, so solver outcomes are
/// bit-identical.
pub(crate) fn build_instance(
    catalog: &Catalog,
    costs: &BTreeMap<TupleId, CostFn>,
    config: &EngineConfig,
    withheld: &[&ScoredTuple],
    beta: f64,
    needed: usize,
    cache: Option<&mut pcqe_lineage::CircuitCache>,
) -> Result<Option<ProblemInstance>> {
    let improvable: Vec<&&ScoredTuple> = withheld
        .iter()
        .filter(|s| !s.lineage.contains_not())
        .collect();
    if improvable.len() < needed {
        return Ok(None);
    }
    let mut builder = ProblemBuilder::new(beta, config.delta).lineage_budget(config.lineage_budget);
    let mut seen = BTreeSet::new();
    for s in &improvable {
        for v in s.lineage.vars() {
            if seen.insert(v.0) {
                let id = TupleId(v.0);
                let initial = catalog.confidence(id).ok_or_else(|| {
                    CoreError::InvalidProblem(format!("lineage references unknown tuple {id}"))
                })?;
                let cost = costs
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| config.default_cost.clone());
                builder.base(v.0, initial, cost);
            }
        }
    }
    match cache {
        Some(cache) => {
            for s in &improvable {
                builder.result_from_lineage_cached(&s.lineage, cache)?;
            }
        }
        None => {
            for s in &improvable {
                builder.result_from_lineage(&s.lineage)?;
            }
        }
    }
    Ok(Some(builder.require(needed).build()?))
}

/// Run the configured solver; `Auto` picks by problem size, mirroring the
/// crossovers measured in Figure 11(c). The engine's parallelism policy is
/// injected into solvers the user configured with defaults (explicit
/// per-solver options are honoured as given). Each solver's statistics are
/// emitted into `sink` as `solver.*` metrics.
fn dispatch(
    problem: &ProblemInstance,
    choice: &SolverChoice,
    par: &pcqe_par::Parallelism,
    sink: &dyn SolverSink,
) -> std::result::Result<(Solution, Duration), CoreError> {
    let greedy_opts = GreedyOptions {
        parallelism: par.clone(),
        ..GreedyOptions::default()
    };
    match choice {
        SolverChoice::Heuristic(opts) => {
            let out = heuristic::solve(problem, opts)?;
            out.stats.emit(sink);
            Ok((out.solution, out.stats.elapsed))
        }
        SolverChoice::Greedy(opts) => {
            let out = greedy::solve(problem, opts)?;
            out.stats.emit(sink);
            Ok((out.solution, out.stats.elapsed))
        }
        SolverChoice::Dnc(opts) => {
            let out = dnc::solve(problem, opts)?;
            out.stats.emit(sink);
            Ok((out.solution, out.stats.elapsed))
        }
        SolverChoice::Auto => {
            if problem.bases.len() <= 12 {
                // Tiny: exact search, seeded by greedy for a tight bound.
                let seed = greedy::solve(problem, &greedy_opts)?;
                seed.stats.emit(sink);
                let opts = HeuristicOptions {
                    node_limit: Some(2_000_000),
                    ..HeuristicOptions::all().with_seed(seed.solution)
                };
                let out = heuristic::solve(problem, &opts)?;
                out.stats.emit(sink);
                Ok((out.solution, out.stats.elapsed))
            } else if problem.results.len() > 64 {
                let opts = DncOptions {
                    greedy: greedy_opts,
                    ..DncOptions::default()
                };
                let out = dnc::solve(problem, &opts)?;
                out.stats.emit(sink);
                Ok((out.solution, out.stats.elapsed))
            } else {
                let out = greedy::solve(problem, &greedy_opts)?;
                out.stats.emit(sink);
                Ok((out.solution, out.stats.elapsed))
            }
        }
    }
}
