//! The PCQE framework — the end-to-end pipeline of the paper's Figure 1.
//!
//! Five components cooperate:
//!
//! 1. **confidence assignment** — base tuples get confidences, either
//!    directly or assessed from provenance (`pcqe-provenance`);
//! 2. **query evaluation** — SQL is parsed, planned and executed with
//!    lineage propagation (`pcqe-sql`, `pcqe-algebra`), and each result is
//!    scored (`pcqe-lineage`);
//! 3. **policy evaluation** — the confidence policy for the user's role
//!    and purpose filters the scored results (`pcqe-policy`);
//! 4. **strategy finding** — when fewer than the requested fraction of
//!    results survive, the cheapest confidence increments are computed
//!    (`pcqe-core`) and reported as an [`ImprovementProposal`];
//! 5. **data-quality improvement** — accepting the proposal applies the
//!    increments to the database and re-evaluates the query.
//!
//! ```
//! use pcqe_engine::{Database, EngineConfig, QueryRequest, User};
//! use pcqe_policy::ConfidencePolicy;
//! use pcqe_storage::{Column, DataType, Schema, Value};
//!
//! let mut db = Database::new(EngineConfig::default());
//! db.create_table("t", Schema::new(vec![
//!     Column::new("x", DataType::Int),
//! ]).unwrap()).unwrap();
//! db.insert("t", vec![Value::Int(1)], 0.9).unwrap();
//! db.add_policy(ConfidencePolicy::new("analyst", "report", 0.5).unwrap());
//!
//! let user = User::new("alice", "analyst");
//! let resp = db.query(&user, &QueryRequest::new("SELECT x FROM t", "report")).unwrap();
//! assert_eq!(resp.released.len(), 1);
//! ```

pub mod audit;
pub mod config;
pub mod database;
pub mod error;
pub mod improve;
pub mod persist;
pub mod response;

pub use audit::AuditEntry;
pub use config::{EngineConfig, SolverChoice};
pub use database::{Database, QueryRequest, StatementOutcome, User};
pub use error::EngineError;
pub use response::{
    BatchResponse, ImprovementProposal, NoProposal, ProposedIncrement, QueryResponse, ReleasedTuple,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
