#!/usr/bin/env bash
# Continuous-integration entry point. Everything runs OFFLINE: the
# default workspace depends only on sibling path crates (enforced by
# pcqe-lint rule PCQE-H001 and tests/hermetic_guard.rs), so a
# network-less runner with an empty cargo registry builds and tests the
# whole repository.
#
# Usage: ./ci.sh [--no-clippy]
set -euo pipefail
cd "$(dirname "$0")"

NO_CLIPPY=0
for arg in "$@"; do
  case "$arg" in
    --no-clippy) NO_CLIPPY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==> %s\n' "$*"; }

step "formatting (cargo fmt --check)"
cargo fmt --all --check

if [ "$NO_CLIPPY" -eq 0 ]; then
  step "lints (cargo clippy -D warnings)"
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

step "static invariants (cargo run -p pcqe-lint)"
# One analyzer replaces the old awk dependency mirror and extends it.
# Token layer: PCQE-D001/D002/D003/D004 (determinism), PCQE-C001
# (concurrency containment), PCQE-P001 (panic-safety), PCQE-T001 (wall
# clock), PCQE-H001 (hermetic manifests — subsumes the former awk
# guard). Graph layer: PCQE-P002 (panic-reachability from guarded public
# API) and PCQE-G001 (rows released only below the policy gate).
# Hygiene: PCQE-A001 (stale allowlist entries), PCQE-A002 (unreasoned
# entries). Exceptions live in lint-allow.toml with reasons; see
# DESIGN.md § "Static invariants".
cargo run -q -p pcqe-lint --offline

step "static invariants artifact (results/lint.json)"
# The same analysis as a machine-readable CI artifact, then validated
# with the in-repo JSON parser — exporter and parser agree end to end
# without external tooling, mirroring the metrics smoke check below.
mkdir -p results
cargo run -q -p pcqe-lint --offline -- --format json > results/lint.json
cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- --schema lint results/lint.json

step "release build (offline)"
cargo build --release --offline

step "tests (offline, whole workspace)"
cargo test -q --offline --workspace

step "observability smoke export (quickstart -> results/metrics.json)"
# The quickstart example ends by exporting its metrics snapshot; the
# in-repo JSON parser then validates the document, proving the exporter
# and parser agree end to end without any external tooling.
cargo run -q --offline --example quickstart > /dev/null
cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- results/metrics.json

step "EXPLAIN smoke (.plan on the § 3.1 running example)"
# Pipe the paper's running-example schema and query through the shell
# and assert the physical planner's choices show up in the side-by-side
# plan: the residual filter is pushed into the Proposal scan and the
# small build side makes the join a nested loop.
PLAN_OUT="$(cargo run -q --offline --example shell <<'EOF'
CREATE TABLE Proposal (company TEXT, proposal TEXT, funding REAL);
CREATE TABLE CompanyInfo (company TEXT, income REAL);
INSERT INTO Proposal VALUES ('ABC', 'p7', 500000.0) WITH CONFIDENCE 0.8;
INSERT INTO CompanyInfo VALUES ('ABC', 900000.0) WITH CONFIDENCE 0.9;
.plan SELECT DISTINCT CompanyInfo.company, income FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company WHERE funding < 1000000.0
.quit
EOF
)"
echo "$PLAN_OUT" | grep -q "NestedLoopJoin" || {
  echo "EXPLAIN smoke: expected NestedLoopJoin in .plan output" >&2
  echo "$PLAN_OUT" >&2
  exit 1
}
echo "$PLAN_OUT" | grep -q "TableScan Proposal \[filter:" || {
  echo "EXPLAIN smoke: expected pushed filter on the Proposal scan" >&2
  echo "$PLAN_OUT" >&2
  exit 1
}
echo "EXPLAIN smoke OK (nested-loop join, pushed residual filter)"

step "bench workspace builds (offline, detached)"
( cd crates/bench && cargo build --offline && cargo test -q --offline )

step "physical planning bench export (results/physical_planning.json)"
# The bench asserts logical/physical bit-identity, β-gated audit parity,
# and that the low-β workload actually skips exact expansions, then
# exports its measurements; the in-repo parser validates the document.
( cd crates/bench \
  && cargo bench -q --offline --bench physical_planning -- \
    ../../results/physical_planning.json )
cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
  results/physical_planning.json

step "ci.sh: all stages passed"
