#!/usr/bin/env bash
# Continuous-integration entry point. Everything runs OFFLINE: the
# default workspace depends only on sibling path crates (enforced by
# tests/hermetic_guard.rs and re-checked here), so a network-less runner
# with an empty cargo registry builds and tests the whole repository.
#
# Usage: ./ci.sh [--no-clippy]
set -euo pipefail
cd "$(dirname "$0")"

NO_CLIPPY=0
for arg in "$@"; do
  case "$arg" in
    --no-clippy) NO_CLIPPY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==> %s\n' "$*"; }

step "formatting (cargo fmt --check)"
cargo fmt --all --check

if [ "$NO_CLIPPY" -eq 0 ]; then
  step "lints (cargo clippy -D warnings)"
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

step "non-path dependency guard"
# Fast shell-level mirror of tests/hermetic_guard.rs: no dependency table
# in the default workspace may name a crate without `path =` (workspace
# pcqe-* entries resolve to path deps declared at the root).
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  case "$manifest" in crates/bench/*) continue ;; esac
  bad=$(awk '
    /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
    in_deps && NF && $0 !~ /^#/ && $0 ~ /=/ {
      if ($0 !~ /path *=/ && $0 !~ /^ *pcqe[-_]/) print "  " FILENAME ": " $0
    }
  ' "$manifest")
  if [ -n "$bad" ]; then
    echo "non-path dependencies found:" >&2
    echo "$bad" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1
echo "all default-workspace dependencies are path dependencies"

step "release build (offline)"
cargo build --release --offline

step "tests (offline)"
cargo test -q --offline

step "bench workspace builds (offline, detached)"
( cd crates/bench && cargo build --offline && cargo test -q --offline )

step "ci.sh: all stages passed"
