#!/usr/bin/env bash
# Continuous-integration entry point. Everything runs OFFLINE: the
# default workspace depends only on sibling path crates (enforced by
# pcqe-lint rule PCQE-H001 and tests/hermetic_guard.rs), so a
# network-less runner with an empty cargo registry builds and tests the
# whole repository.
#
# Usage: ./ci.sh [--no-clippy]
set -euo pipefail
cd "$(dirname "$0")"

NO_CLIPPY=0
for arg in "$@"; do
  case "$arg" in
    --no-clippy) NO_CLIPPY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n==> %s\n' "$*"; }

step "formatting (cargo fmt --check)"
cargo fmt --all --check

if [ "$NO_CLIPPY" -eq 0 ]; then
  step "lints (cargo clippy -D warnings)"
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

step "static invariants (cargo run -p pcqe-lint)"
# One analyzer replaces the old awk dependency mirror and extends it.
# Token layer: PCQE-D001/D002/D003/D004 (determinism), PCQE-C001
# (concurrency containment), PCQE-P001 (panic-safety), PCQE-T001 (wall
# clock), PCQE-H001 (hermetic manifests — subsumes the former awk
# guard). Graph layer: PCQE-P002 (panic-reachability from guarded public
# API) and PCQE-G001 (rows released only below the policy gate).
# Hygiene: PCQE-A001 (stale allowlist entries), PCQE-A002 (unreasoned
# entries). Exceptions live in lint-allow.toml with reasons; see
# DESIGN.md § "Static invariants".
cargo run -q -p pcqe-lint --offline

step "static invariants artifact (results/lint.json)"
# The same analysis as a machine-readable CI artifact, then validated
# with the in-repo JSON parser — exporter and parser agree end to end
# without external tooling, mirroring the metrics smoke check below.
mkdir -p results
cargo run -q -p pcqe-lint --offline -- --format json > results/lint.json
cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- --schema lint results/lint.json

step "release build (offline)"
cargo build --release --offline

step "tests (offline, whole workspace)"
cargo test -q --offline --workspace

step "observability smoke export (quickstart -> results/metrics.json)"
# The quickstart example ends by exporting its metrics snapshot; the
# in-repo JSON parser then validates the document, proving the exporter
# and parser agree end to end without any external tooling.
cargo run -q --offline --example quickstart > /dev/null
cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- results/metrics.json

step "bench workspace builds (offline, detached)"
( cd crates/bench && cargo build --offline && cargo test -q --offline )

step "ci.sh: all stages passed"
