#!/usr/bin/env bash
# Continuous-integration entry point. Everything runs OFFLINE: the
# default workspace depends only on sibling path crates (enforced by
# pcqe-lint rule PCQE-H001 and tests/hermetic_guard.rs), so a
# network-less runner with an empty cargo registry builds and tests the
# whole repository.
#
# Usage: ./ci.sh [--no-clippy] [--stage <name>]...
#
# With no --stage arguments every stage runs in registry order; each
# --stage selects one stage by name (repeatable, run in the order
# given), which is how .github/workflows/ci.yml fans the pipeline out
# across parallel jobs. `./ci.sh --list` prints the registry. A
# wall-time summary table is printed at the end of every run — including
# failed ones, so slow or broken stages are visible at a glance.
set -euo pipefail
cd "$(dirname "$0")"

# ---------------------------------------------------------------------------
# Stage registry. Names are the --stage vocabulary; keep ci.yml in sync.

STAGES=(
  fmt
  clippy
  lint
  lint-artifact
  lint-sarif
  gate-lint
  build
  test
  smoke-metrics
  smoke-explain
  trace-smoke
  gate-trace
  bench-build
  bench-physical
  bench-cache
  gate-cache
  bench-vectorized
  gate-vectorized
)

stage_fmt() { # formatting (cargo fmt --check)
  cargo fmt --all --check
}

stage_clippy() { # lints (cargo clippy -D warnings)
  if [ "$NO_CLIPPY" -eq 1 ]; then
    echo "clippy skipped (--no-clippy)"
    return 0
  fi
  cargo clippy --workspace --all-targets --offline -- -D warnings
}

stage_lint() { # static invariants (cargo run -p pcqe-lint)
  # One analyzer, four layers, twenty-three rules.
  # Token layer: PCQE-D001/D002/D003/D004 (determinism), PCQE-C002
  # (capability coverage against lint-capabilities.toml; PCQE-C001 is
  # the legacy built-in table for trees without a manifest), PCQE-P001
  # (panic-safety), PCQE-T001 (wall clock), PCQE-H001 (hermetic
  # manifests — subsumes the former awk guard). Graph layer: PCQE-P002
  # (panic-reachability from guarded public API) and PCQE-G001 (rows
  # released only below the policy gate). Concurrency layer: PCQE-C003
  # (lock-order cycles), PCQE-C004 (lock held across a result-affecting
  # call), PCQE-C005 (shared-state escape into the result set),
  # PCQE-C006 (relaxed-atomic reads feeding released rows). Dataflow
  # layer: PCQE-F001 (suppressed tuples into error sinks), PCQE-F002
  # (β/θ thresholds outside the audit/Decision channels), PCQE-F003
  # (pre-gate confidence into trace/metrics), with PCQE-F004/F005
  # keeping lint-flows.toml itself honest. Hygiene: PCQE-A001 (stale
  # allowlist entries), PCQE-A002 (unreasoned or id-less entries),
  # PCQE-A003 (stale capability grants). Exceptions live in
  # lint-allow.toml with reasons, capability grants in
  # lint-capabilities.toml, flow sources/sinks/sanctions in
  # lint-flows.toml; see DESIGN.md § "Static invariants".
  cargo run -q -p pcqe-lint --offline
}

stage_lint_artifact() { # static invariants artifact (results/lint.json)
  # The same analysis as a machine-readable CI artifact, then validated
  # with the in-repo JSON parser — exporter and parser agree end to end
  # without external tooling, mirroring the metrics smoke check below.
  mkdir -p results
  cargo run -q -p pcqe-lint --offline -- --format json > results/lint.json
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- --schema lint results/lint.json
}

stage_lint_sarif() { # static invariants as SARIF (results/lint.sarif)
  # The same analysis in the 2.1.0 interchange format — code editors and
  # review tooling ingest it directly, and the witness flow paths from
  # the dataflow layer ride along as SARIF code flows. Validated
  # hermetically, then gated per-rule against the checked-in baseline
  # exactly like the JSON report.
  mkdir -p results
  cargo run -q -p pcqe-lint --offline -- --format sarif > results/lint.sarif
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- --schema sarif results/lint.sarif
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --schema sarif --gate results/baseline_lint.sarif results/lint.sarif
}

stage_gate_lint() { # lint-regression gate (results/lint.json vs checked-in baseline)
  # Every count in the baseline is a ceiling the fresh report must stay
  # under: total errors and suppressions, plus the per-rule counts from
  # the report's `rules` section. New violations and new suppressions
  # both fail CI even when the totals happen to stay flat.
  if [ ! -f results/lint.json ]; then
    echo "gate-lint: results/lint.json missing; run the lint-artifact stage first" >&2
    return 1
  fi
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --schema lint --gate results/baseline_lint.json results/lint.json
}

stage_build() { # release build (offline)
  cargo build --release --offline
}

stage_test() { # tests (offline, whole workspace)
  cargo test -q --offline --workspace
}

stage_smoke_metrics() { # observability smoke export (quickstart -> results/metrics.json)
  # The quickstart example ends by exporting its metrics snapshot; the
  # in-repo JSON parser then validates the document, proving the
  # exporter and parser agree end to end without any external tooling.
  cargo run -q --offline --example quickstart > /dev/null
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- results/metrics.json
}

stage_smoke_explain() { # EXPLAIN smoke (.plan on the § 3.1 running example)
  # Pipe the paper's running-example schema and query through the shell
  # and assert the physical planner's choices show up in the
  # side-by-side plan: the residual filter is pushed into the Proposal
  # scan and the small build side makes the join a nested loop. The
  # shell's stderr is captured and surfaced on failure — a panic in the
  # heredoc must be reported as itself, not as a grep miss.
  local plan_out stderr_file status=0
  stderr_file="$(mktemp)"
  plan_out="$(cargo run -q --offline --example shell 2>"$stderr_file" <<'EOF'
CREATE TABLE Proposal (company TEXT, proposal TEXT, funding REAL);
CREATE TABLE CompanyInfo (company TEXT, income REAL);
INSERT INTO Proposal VALUES ('ABC', 'p7', 500000.0) WITH CONFIDENCE 0.8;
INSERT INTO CompanyInfo VALUES ('ABC', 900000.0) WITH CONFIDENCE 0.9;
.plan SELECT DISTINCT CompanyInfo.company, income FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company WHERE funding < 1000000.0
.quit
EOF
)" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "EXPLAIN smoke: shell exited with status $status; stderr follows" >&2
    cat "$stderr_file" >&2
    rm -f "$stderr_file"
    return 1
  fi
  rm -f "$stderr_file"
  echo "$plan_out" | grep -q "NestedLoopJoin" || {
    echo "EXPLAIN smoke: expected NestedLoopJoin in .plan output" >&2
    echo "$plan_out" >&2
    return 1
  }
  echo "$plan_out" | grep -q "TableScan Proposal \[filter:" || {
    echo "EXPLAIN smoke: expected pushed filter on the Proposal scan" >&2
    echo "$plan_out" >&2
    return 1
  }
  echo "EXPLAIN smoke OK (nested-loop join, pushed residual filter)"
}

stage_trace_smoke() { # causal-trace smoke (.trace on the § 3.1 example -> results/trace_chrome.json)
  # Pipe the paper's running example through the shell, trace the query
  # and validate the exported Chrome trace-event document with the
  # in-repo parser. The interactive prompt interleaves with piped
  # output, so the prompt prefixes are stripped and the JSON document is
  # cut out of the session transcript before validation.
  local out stderr_file status=0
  mkdir -p results
  stderr_file="$(mktemp)"
  out="$(cargo run -q --offline --example shell 2>"$stderr_file" <<'EOF'
CREATE TABLE Proposal (company TEXT, proposal TEXT, funding REAL);
CREATE TABLE CompanyInfo (company TEXT, income REAL);
INSERT INTO Proposal VALUES ('SkyCam', 'drone v1', 800000.0) WITH CONFIDENCE 0.3;
INSERT INTO Proposal VALUES ('SkyCam', 'drone v2', 900000.0) WITH CONFIDENCE 0.4;
INSERT INTO CompanyInfo VALUES ('SkyCam', 500000.0) WITH CONFIDENCE 0.1;
.policy Manager investment 0.06
.user mark Manager
.purpose investment
.trace SELECT DISTINCT CompanyInfo.company, income FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company WHERE funding < 1000000.0 json
.quit
EOF
)" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "trace smoke: shell exited with status $status; stderr follows" >&2
    cat "$stderr_file" >&2
    rm -f "$stderr_file"
    return 1
  fi
  rm -f "$stderr_file"
  echo "$out" | sed -e 's/^\(pcqe> \)*//' \
    | awk '/^\{$/{f=1} f{print} /^\}$/{f=0}' > results/trace_chrome.json
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --schema trace results/trace_chrome.json
  echo "$out" | grep -q '"name": "decision"' || {
    echo "trace smoke: expected a per-tuple decision event in the trace" >&2
    return 1
  }
  echo "trace smoke OK (Chrome trace validated, decision event present)"
}

stage_gate_trace() { # trace-regression gate (trace_chrome.json vs checked-in baseline)
  # Every distinct event name in the baseline is a floor on the fresh
  # trace's per-name event count: a refactor that silently drops a
  # lifecycle span, a cache event or a per-tuple decision fails CI.
  if [ ! -f results/trace_chrome.json ]; then
    echo "gate-trace: results/trace_chrome.json missing; run the trace-smoke stage first" >&2
    return 1
  fi
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --schema trace --gate results/baseline_trace.json results/trace_chrome.json
}

stage_bench_build() { # bench workspace builds (offline, detached)
  ( cd crates/bench && cargo build --offline && cargo test -q --offline )
}

stage_bench_physical() { # physical planning bench export (results/physical_planning.json)
  # The bench asserts logical/physical bit-identity, β-gated audit
  # parity, and that the low-β workload actually skips exact expansions,
  # then exports its measurements; the in-repo parser validates the
  # document.
  mkdir -p results
  ( cd crates/bench \
    && cargo bench -q --offline --bench physical_planning -- \
      ../../results/physical_planning.json )
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    results/physical_planning.json
}

stage_bench_cache() { # circuit-cache bench export (results/confidence_cache.json)
  # The bench asserts cache-on/cache-off bit-identity over the repeated
  # what-if workload, nonzero memo hits and invalidations, and the ≥5x
  # speedup contract, then exports its measurements.
  mkdir -p results
  ( cd crates/bench \
    && cargo bench -q --offline --bench confidence_cache -- \
      ../../results/confidence_cache.json )
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    results/confidence_cache.json
}

stage_gate_cache() { # bench-regression gate (confidence_cache vs checked-in baseline)
  # Every counter and gauge named in the baseline is a floor the fresh
  # export must clear: cache hit counts, invalidations and the cache-on
  # speedup may only regress by failing CI.
  if [ ! -f results/confidence_cache.json ]; then
    echo "gate-cache: results/confidence_cache.json missing; run the bench-cache stage first" >&2
    return 1
  fi
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --gate results/baseline_confidence_cache.json results/confidence_cache.json
}

stage_bench_vectorized() { # vectorized-execution bench export (results/vectorized_exec.json)
  # The bench asserts vectorized/tuple bit-identity on every workload at
  # 1, 2 and 4 worker threads and the ≥2x scan-workload speedup
  # contract, then exports the full thread-count curve.
  mkdir -p results
  ( cd crates/bench \
    && cargo bench -q --offline --bench vectorized_exec -- \
      ../../results/vectorized_exec.json )
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    results/vectorized_exec.json
}

stage_gate_vectorized() { # bench-regression gate (vectorized_exec vs checked-in baseline)
  # The baseline pins the deterministic workload row counts and a 2.0
  # floor on the scan-workload vectorized-vs-tuple speedup (measured at
  # the same thread count, so the bar holds on single-core runners).
  if [ ! -f results/vectorized_exec.json ]; then
    echo "gate-vectorized: results/vectorized_exec.json missing; run the bench-vectorized stage first" >&2
    return 1
  fi
  cargo run -q --offline -p pcqe-obs --bin pcqe-obs-validate -- \
    --gate results/baseline_vectorized.json results/vectorized_exec.json
}

# ---------------------------------------------------------------------------
# Driver: argument parsing, per-stage timing, summary table.

NO_CLIPPY=0
SELECTED=()
while [ $# -gt 0 ]; do
  case "$1" in
    --no-clippy) NO_CLIPPY=1 ;;
    --stage)
      shift
      [ $# -gt 0 ] || { echo "--stage needs a name (see ./ci.sh --list)" >&2; exit 2; }
      SELECTED+=("$1")
      ;;
    --list)
      printf '%s\n' "${STAGES[@]}"
      exit 0
      ;;
    -h|--help)
      echo "usage: ./ci.sh [--no-clippy] [--stage <name>]... [--list]"
      exit 0
      ;;
    *) echo "unknown argument: $1 (try --help)" >&2; exit 2 ;;
  esac
  shift
done

known_stage() {
  local name
  for name in "${STAGES[@]}"; do
    [ "$name" = "$1" ] && return 0
  done
  return 1
}

for name in ${SELECTED[@]+"${SELECTED[@]}"}; do
  if ! known_stage "$name"; then
    echo "unknown stage: $name (available: ${STAGES[*]})" >&2
    exit 2
  fi
done
if [ "${#SELECTED[@]}" -eq 0 ]; then
  SELECTED=("${STAGES[@]}")
fi

SUMMARY_NAMES=()
SUMMARY_NANOS=()
SUMMARY_STATUS=()
CURRENT_STAGE=""
CURRENT_T0=0
PIPELINE_T0=$(date +%s%N)

print_summary() {
  local code=$?
  # A stage that was entered but never recorded is the one that failed.
  if [ -n "$CURRENT_STAGE" ]; then
    SUMMARY_NAMES+=("$CURRENT_STAGE")
    SUMMARY_NANOS+=($(($(date +%s%N) - CURRENT_T0)))
    SUMMARY_STATUS+=("FAILED")
  fi
  if [ "${#SUMMARY_NAMES[@]}" -eq 0 ]; then
    return "$code"
  fi
  printf '\n%-18s %-8s %10s\n' "stage" "status" "time"
  printf '%-18s %-8s %10s\n' "-----" "------" "----"
  local i total=0
  for i in "${!SUMMARY_NAMES[@]}"; do
    total=$((total + SUMMARY_NANOS[i]))
    printf '%-18s %-8s %9s.%02ds\n' "${SUMMARY_NAMES[$i]}" "${SUMMARY_STATUS[$i]}" \
      "$((SUMMARY_NANOS[i] / 1000000000))" "$((SUMMARY_NANOS[i] % 1000000000 / 10000000))"
  done
  printf '%-18s %-8s %9s.%02ds\n' "total" "" \
    "$((total / 1000000000))" "$((total % 1000000000 / 10000000))"
  return "$code"
}
trap print_summary EXIT

for name in "${SELECTED[@]}"; do
  printf '\n==> stage: %s\n' "$name"
  CURRENT_STAGE="$name"
  CURRENT_T0=$(date +%s%N)
  "stage_${name//-/_}"
  SUMMARY_NAMES+=("$name")
  SUMMARY_NANOS+=($(($(date +%s%N) - CURRENT_T0)))
  SUMMARY_STATUS+=("ok")
  CURRENT_STAGE=""
done

printf '\n==> ci.sh: all selected stages passed (%d of %d in the registry)\n' \
  "${#SELECTED[@]}" "${#STAGES[@]}"
