//! Quickstart: a five-minute tour of PCQE.
//!
//! Run with `cargo run --example quickstart`.

use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A database whose rows carry confidence values.
    let mut db = Database::new(EngineConfig::default());
    db.create_table(
        "Customers",
        Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("region", DataType::Text),
            Column::new("revenue", DataType::Real),
        ])?,
    )?;

    let rows: [(&str, &str, f64, f64); 4] = [
        ("Acme", "west", 1_200_000.0, 0.9), // verified account
        ("Bolt", "west", 800_000.0, 0.35),  // stale record
        ("Crux", "east", 950_000.0, 0.4),   // unverified import
        ("Dyno", "west", 400_000.0, 0.85),  // verified account
    ];
    let mut ids = Vec::new();
    for (name, region, revenue, confidence) in rows {
        let id = db.insert(
            "Customers",
            vec![Value::text(name), Value::text(region), Value::Real(revenue)],
            confidence,
        )?;
        ids.push(id);
    }
    // Re-verifying Bolt is cheap (a phone call); Crux needs a paid report.
    db.set_cost(ids[1], CostFn::linear(50.0)?)?;
    db.set_cost(ids[2], CostFn::linear(400.0)?)?;

    // 2. Confidence policies: analysts exploring need little assurance,
    //    account managers committing budget need much more.
    db.add_policy(ConfidencePolicy::new("analyst", "exploration", 0.2)?);
    db.add_policy(ConfidencePolicy::new("account-manager", "renewal", 0.6)?);

    // 3. An analyst sees almost everything.
    let analyst = User::new("amy", "analyst");
    let request = QueryRequest::new(
        "SELECT name, revenue FROM Customers WHERE region = 'west'",
        "exploration",
    );
    let resp = db.query(&analyst, &request)?;
    println!(
        "analyst sees {} of {} west-region rows:",
        resp.released.len(),
        resp.released.len() + resp.withheld
    );
    for row in &resp.released {
        println!("  {} (confidence {:.2})", row.tuple, row.confidence);
    }

    // 4. The account manager is blocked on the stale Bolt row — and gets
    //    a costed improvement proposal instead of silence.
    let manager = User::new("max", "account-manager");
    let request = QueryRequest::new(
        "SELECT name, revenue FROM Customers WHERE region = 'west'",
        "renewal",
    );
    let resp = db.query(&manager, &request)?;
    println!(
        "\naccount manager sees {} rows, {} withheld by the β={} policy",
        resp.released.len(),
        resp.withheld,
        resp.threshold
    );
    let proposal = resp.proposal.expect("a strategy exists");
    println!("proposal: spend {:.0} to verify:", proposal.cost);
    for inc in &proposal.increments {
        println!(
            "  tuple {}: confidence {:.2} -> {:.2} (cost {:.0})",
            inc.tuple_id, inc.from, inc.to, inc.cost
        );
    }

    // 5. Accept the proposal; the data-quality improvement is applied and
    //    the query now returns the full picture.
    db.apply(&proposal)?;
    let resp = db.query(&manager, &request)?;
    println!(
        "\nafter improvement the manager sees {} rows:",
        resp.released.len()
    );
    for row in &resp.released {
        println!("  {} (confidence {:.2})", row.tuple, row.confidence);
    }
    assert_eq!(resp.released.len(), 3);

    // 6. EXPLAIN ANALYZE: the plan annotated with observed per-operator
    //    row and lineage counts.
    println!("\nEXPLAIN ANALYZE:");
    print!(
        "{}",
        db.explain_analyze("SELECT name, revenue FROM Customers WHERE region = 'west'")?
    );

    // 7. Every query above was metered. Export the metrics as JSON (for
    //    the CI smoke check) and show the Prometheus rendering.
    let snapshot = db.metrics_snapshot();
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/metrics.json",
        pcqe::obs::export::to_json(&snapshot),
    )?;
    println!("\nwrote results/metrics.json; Prometheus excerpt:");
    for line in pcqe::obs::export::to_prometheus(&snapshot)
        .lines()
        .filter(|l| l.contains("pcqe_policy_") || l.contains("pcqe_improvement_applied"))
    {
        println!("  {line}");
    }
    Ok(())
}
