//! An interactive PCQE shell: type SQL (DDL, DML with confidences, and
//! policy-checked queries) against an in-memory database.
//!
//! Run with `cargo run --example shell`, or pipe a script:
//!
//! ```text
//! cargo run --example shell <<'EOF'
//! CREATE TABLE t (x INT, label TEXT);
//! INSERT INTO t VALUES (1, 'low') WITH CONFIDENCE 0.3;
//! INSERT INTO t VALUES (2, 'high') WITH CONFIDENCE 0.9;
//! .policy analyst report 0.5
//! .user alice analyst
//! .purpose report
//! SELECT x, label FROM t;
//! .accept
//! SELECT x, label FROM t;
//! EOF
//! ```
//!
//! Dot-commands: `.user <name> <role>`, `.purpose <p>`,
//! `.policy <role> <purpose> <beta>`, `.cost <tuple-id> <rate>`,
//! `.expecting <fraction>`, `.accept`, `.tables`, `.plan <query>`
//! (logical and chosen physical plan side by side), `.analyze <query>`,
//! `.trace <query> [json|chrome|folded]` (causal trace export),
//! `.metrics [json|prom]`, `.lint [json] [RULE-ID]` (run the static invariant
//! analyzer over the workspace), `.help`, `.quit`. The full list, with
//! one-line descriptions, comes from the [`COMMANDS`] table `.help`
//! renders — the same table `dispatch` consults, so they cannot drift.

use pcqe::cost::CostFn;
use pcqe::engine::{
    Database, EngineConfig, ImprovementProposal, QueryRequest, StatementOutcome, User,
};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::TupleId;
use std::io::{self, BufRead, Write};

struct Shell {
    db: Database,
    user: User,
    purpose: String,
    expecting: f64,
    pending: Option<ImprovementProposal>,
}

/// Every dot-command as `(name, arguments, one-line description)` — the
/// single source of truth: `.help` renders this table, and `dispatch`
/// rejects any `.name` not in it, so the help text and the dispatchable
/// set agree by construction (a unit test below pins it).
const COMMANDS: &[(&str, &str, &str)] = &[
    ("user", "<name> <role>", "set the querying user and role"),
    ("purpose", "<purpose>", "set the stated query purpose"),
    (
        "policy",
        "<role> <purpose> <beta>",
        "add a confidence policy",
    ),
    (
        "cost",
        "<tuple-id> <rate>",
        "attach a linear cost to a tuple",
    ),
    (
        "expecting",
        "<fraction>",
        "set the expected released fraction",
    ),
    ("accept", "", "apply the pending improvement proposal"),
    ("tables", "", "list tables and row counts"),
    ("explain", "<query>", "show the optimised logical plan"),
    (
        "plan",
        "<query>",
        "show logical and physical plans side by side",
    ),
    (
        "analyze",
        "<query>",
        "run the plan, annotate observed row counts",
    ),
    (
        "trace",
        "<query> [json|chrome|folded]",
        "trace a query's causal timeline",
    ),
    ("metrics", "[json|prom]", "export recorded metrics"),
    (
        "lint",
        "[json] [RULE-ID]",
        "run the static invariant analyzer",
    ),
    ("save", "<dir>", "persist the database to a directory"),
    ("load", "<dir>", "load a database from a directory"),
    ("help", "", "show this help"),
    ("quit", "", "exit the shell (also .exit)"),
];

/// True iff `.name` is a dispatchable dot-command.
fn is_known_command(name: &str) -> bool {
    COMMANDS.iter().any(|(n, _, _)| *n == name)
}

/// The `.help` screen, rendered from [`COMMANDS`].
fn help_text() -> String {
    let mut out = String::from(
        "SQL: CREATE TABLE t (col TYPE, ...); INSERT INTO t VALUES (...) \
         [WITH CONFIDENCE c]; SELECT ...\ndot-commands:\n",
    );
    for (name, args, desc) in COMMANDS {
        let usage = if args.is_empty() {
            format!(".{name}")
        } else {
            format!(".{name} {args}")
        };
        out.push_str(&format!("  {usage:<36} {desc}\n"));
    }
    out
}

fn main() -> io::Result<()> {
    let mut shell = Shell {
        db: Database::new(EngineConfig::default()),
        user: User::new("anon", "public"),
        purpose: "browsing".into(),
        expecting: 1.0,
        pending: None,
    };
    // A permissive default policy so the shell works out of the box.
    shell
        .db
        .add_policy(ConfidencePolicy::default_floor(0.0).expect("valid"));

    let stdin = io::stdin();
    let mut out = io::stdout();
    print!("pcqe> ");
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            if trimmed.eq_ignore_ascii_case(".quit") || trimmed.eq_ignore_ascii_case(".exit") {
                break;
            }
            if let Err(e) = shell.dispatch(trimmed) {
                println!("error: {e}");
            }
        }
        print!("pcqe> ");
        out.flush()?;
    }
    println!();
    Ok(())
}

impl Shell {
    fn dispatch(&mut self, line: &str) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(rest) = line.strip_prefix('.') {
            self.dot_command(rest)
        } else {
            self.sql(line)
        }
    }

    fn dot_command(&mut self, rest: &str) -> Result<(), Box<dyn std::error::Error>> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        // Gate on the COMMANDS table first: a match arm below without a
        // table entry is unreachable, so `.help` can never under-report.
        match parts.first() {
            None => {
                println!("empty command (try .help)");
                return Ok(());
            }
            Some(name) if !is_known_command(name) => {
                println!("unknown command `.{rest}` (try .help)");
                return Ok(());
            }
            Some(_) => {}
        }
        match parts.as_slice() {
            ["help"] => {
                print!("{}", help_text());
            }
            ["user", name, role] => {
                self.user = User::new(*name, *role);
                println!("now querying as {name} ({role})");
            }
            ["purpose", p] => {
                self.purpose = (*p).to_owned();
                println!("purpose set to {p}");
            }
            ["policy", role, purpose, beta] => {
                let beta: f64 = beta.parse()?;
                self.db
                    .add_policy(ConfidencePolicy::new(*role, *purpose, beta)?);
                println!("policy ⟨{role}, {purpose}, {beta}⟩ added");
            }
            ["cost", id, rate] => {
                let id = TupleId(id.trim_start_matches('t').parse()?);
                let rate: f64 = rate.parse()?;
                self.db.set_cost(id, CostFn::linear(rate)?)?;
                println!("cost of {id} set to linear(rate={rate})");
            }
            ["expecting", fraction] => {
                self.expecting = fraction.parse()?;
                println!("expecting {}% of results", self.expecting * 100.0);
            }
            ["accept"] => match self.pending.take() {
                Some(p) => {
                    self.db.apply(&p)?;
                    println!(
                        "applied {} increment(s), total cost {:.2}",
                        p.increments.len(),
                        p.cost
                    );
                }
                None => println!("no pending proposal"),
            },
            ["tables"] => {
                for name in self.db.catalog().table_names() {
                    let t = self.db.catalog().table(name).expect("listed table");
                    println!("{name} ({} rows)", t.len());
                }
            }
            ["explain", rest @ ..] if !rest.is_empty() => {
                print!("{}", self.db.explain(&rest.join(" "))?);
            }
            ["plan", rest @ ..] if !rest.is_empty() => {
                // Logical plan and the cost-chosen physical plan side by
                // side: join strategy (hash vs nested-loop), access path
                // (table scan vs index scan) and pushed-down predicates
                // are all visible in the right-hand column.
                print!("{}", self.db.explain_physical(&rest.join(" "))?);
            }
            ["analyze", rest @ ..] if !rest.is_empty() => {
                // EXPLAIN ANALYZE: run the plan and annotate it with the
                // observed per-operator row and lineage counts.
                print!("{}", self.db.explain_analyze(&rest.join(" "))?);
            }
            ["trace", rest @ ..] if !rest.is_empty() => {
                // Run the query with the causal tracer on and print the
                // timeline. A trailing `json`/`chrome` (the default)
                // selects Chrome trace-event JSON for chrome://tracing,
                // `folded` the collapsed-stack flamegraph text. The query
                // itself behaves exactly like typing the SQL: same policy
                // gate, same audit entry, same pending proposal.
                let (format, sql_parts) = match rest.split_last() {
                    Some((last, head))
                        if !head.is_empty() && ["json", "chrome", "folded"].contains(last) =>
                    {
                        (*last, head)
                    }
                    _ => ("chrome", rest),
                };
                let request = QueryRequest::new(sql_parts.join(" "), self.purpose.as_str())
                    .expecting(self.expecting);
                let (resp, trace) = self.db.trace_query(&self.user, &request)?;
                match format {
                    "folded" => print!("{}", pcqe::obs::trace_export::to_folded(&trace)),
                    _ => print!("{}", pcqe::obs::trace_export::to_chrome_json(&trace)),
                }
                self.pending = resp.proposal;
            }
            ["lint", rest @ ..] if rest.len() <= 2 => {
                // Run the in-repo static analyzer over the workspace the
                // shell was built from — the same analysis as
                // `cargo run -p pcqe-lint`, inside the session. Optional
                // args: `json` picks the machine format, a rule id
                // (e.g. PCQE-C003 or C003) narrows the display to that
                // rule — mirroring the CLI's `--rule`, the narrowed view
                // never changes what the full analysis found.
                let mut as_json = false;
                let mut rule = None;
                let mut bad = None;
                for arg in rest {
                    if *arg == "json" {
                        as_json = true;
                    } else if let Some(r) = pcqe_lint::rules::Rule::parse(arg) {
                        rule = Some(r);
                    } else {
                        bad = Some(*arg);
                    }
                }
                if let Some(arg) = bad {
                    println!("unknown rule id `{arg}` (usage: .lint [json] [RULE-ID])");
                } else {
                    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
                    let analysis = pcqe_lint::analyze(root, None)?;
                    let display = match rule {
                        Some(r) => analysis.filtered(r),
                        None => analysis,
                    };
                    if as_json {
                        print!("{}", pcqe_lint::report::json(&display));
                    } else {
                        print!("{}", pcqe_lint::report::human(&display));
                    }
                }
            }
            ["metrics"] | ["metrics", "prom"] => {
                print!(
                    "{}",
                    pcqe::obs::export::to_prometheus(&self.db.metrics_snapshot())
                );
            }
            ["metrics", "json"] => {
                print!(
                    "{}",
                    pcqe::obs::export::to_json(&self.db.metrics_snapshot())
                );
            }
            ["save", dir] => {
                pcqe::engine::persist::save(&self.db, std::path::Path::new(dir))?;
                println!("saved to {dir}");
            }
            ["load", dir] => {
                self.db = pcqe::engine::persist::load(
                    std::path::Path::new(dir),
                    EngineConfig::default(),
                )?;
                self.pending = None;
                println!("loaded from {dir}");
            }
            // The command name is known (checked above) but the arguments
            // did not match its arm: show the usage line from the table.
            _ => match parts
                .first()
                .and_then(|n| COMMANDS.iter().find(|(name, _, _)| name == n))
            {
                Some((name, args, _)) => println!("usage: .{name} {args}"),
                None => println!("unknown command `.{rest}` (try .help)"),
            },
        }
        Ok(())
    }

    fn sql(&mut self, line: &str) -> Result<(), Box<dyn std::error::Error>> {
        let upper = line.trim_start().to_ascii_uppercase();
        if upper.starts_with("CREATE") || upper.starts_with("INSERT") {
            match self.db.execute(line)? {
                StatementOutcome::TableCreated => println!("table created"),
                StatementOutcome::Inserted(ids) => {
                    let rendered: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                    println!("inserted {} row(s): {}", ids.len(), rendered.join(", "));
                }
            }
            return Ok(());
        }
        let request = QueryRequest::new(line, self.purpose.as_str()).expecting(self.expecting);
        let resp = self.db.query(&self.user, &request)?;
        for row in &resp.released {
            println!("{}  [confidence {:.3}]", row.tuple, row.confidence);
        }
        println!(
            "{} row(s) released, {} withheld (β = {})",
            resp.released.len(),
            resp.withheld,
            resp.threshold
        );
        match resp.proposal {
            Some(p) => {
                println!(
                    "improvement available: cost {:.2} raises {} tuple(s) — type .accept",
                    p.cost,
                    p.increments.len()
                );
                for inc in &p.increments {
                    println!(
                        "  {}: {:.2} -> {:.2} (cost {:.2})",
                        inc.tuple_id, inc.from, inc.to, inc.cost
                    );
                }
                self.pending = Some(p);
            }
            None => self.pending = None,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Shell {
        let mut sh = Shell {
            db: Database::new(EngineConfig::default()),
            user: User::new("anon", "public"),
            purpose: "browsing".into(),
            expecting: 1.0,
            pending: None,
        };
        sh.db
            .add_policy(ConfidencePolicy::default_floor(0.0).expect("valid"));
        sh
    }

    /// `.help` renders exactly the COMMANDS table, and `dispatch`
    /// recognises exactly the same names — the two cannot disagree.
    #[test]
    fn help_and_dispatch_agree_on_the_command_set() {
        let help = help_text();
        for (name, _, desc) in COMMANDS {
            assert!(
                help.contains(&format!(".{name}")),
                "`.{name}` missing from help:\n{help}"
            );
            assert!(help.contains(desc), "description of `.{name}` missing");
            assert!(is_known_command(name), "`.{name}` not dispatchable");
        }
        // One line per command plus the two header lines, so every entry
        // gets a consistent one-line description.
        assert_eq!(help.lines().count(), COMMANDS.len() + 2);
        assert!(!is_known_command("bogus"));
    }

    /// A scripted session through `dispatch` exercises the table-gated
    /// commands end to end (slow or filesystem-touching ones — `.lint`,
    /// `.save`, `.load` — are covered by the known-name gate above).
    #[test]
    fn scripted_session_dispatches_cleanly() {
        let mut sh = shell();
        for line in [
            "CREATE TABLE t (x INT)",
            "INSERT INTO t VALUES (1) WITH CONFIDENCE 0.9",
            ".policy analyst report 0.5",
            ".user alice analyst",
            ".purpose report",
            ".expecting 1.0",
            ".cost t0 10",
            ".tables",
            ".explain SELECT x FROM t",
            ".plan SELECT x FROM t",
            ".analyze SELECT x FROM t",
            ".trace SELECT x FROM t folded",
            ".trace SELECT x FROM t",
            ".metrics",
            ".metrics json",
            ".accept",
            ".help",
            "SELECT x FROM t",
        ] {
            sh.dispatch(line)
                .unwrap_or_else(|e| panic!("`{line}` failed: {e}"));
        }
        // Unknown names and bad arity fall through politely.
        sh.dispatch(".bogus").unwrap();
        sh.dispatch(".user onlyname").unwrap();
    }
}
