//! An interactive PCQE shell: type SQL (DDL, DML with confidences, and
//! policy-checked queries) against an in-memory database.
//!
//! Run with `cargo run --example shell`, or pipe a script:
//!
//! ```text
//! cargo run --example shell <<'EOF'
//! CREATE TABLE t (x INT, label TEXT);
//! INSERT INTO t VALUES (1, 'low') WITH CONFIDENCE 0.3;
//! INSERT INTO t VALUES (2, 'high') WITH CONFIDENCE 0.9;
//! .policy analyst report 0.5
//! .user alice analyst
//! .purpose report
//! SELECT x, label FROM t;
//! .accept
//! SELECT x, label FROM t;
//! EOF
//! ```
//!
//! Dot-commands: `.user <name> <role>`, `.purpose <p>`,
//! `.policy <role> <purpose> <beta>`, `.cost <tuple-id> <rate>`,
//! `.expecting <fraction>`, `.accept`, `.tables`, `.plan <query>`
//! (logical and chosen physical plan side by side), `.analyze <query>`,
//! `.metrics [json|prom]`, `.lint [json] [RULE-ID]` (run the static invariant
//! analyzer over the workspace), `.help`, `.quit`.

use pcqe::cost::CostFn;
use pcqe::engine::{
    Database, EngineConfig, ImprovementProposal, QueryRequest, StatementOutcome, User,
};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::TupleId;
use std::io::{self, BufRead, Write};

struct Shell {
    db: Database,
    user: User,
    purpose: String,
    expecting: f64,
    pending: Option<ImprovementProposal>,
}

fn main() -> io::Result<()> {
    let mut shell = Shell {
        db: Database::new(EngineConfig::default()),
        user: User::new("anon", "public"),
        purpose: "browsing".into(),
        expecting: 1.0,
        pending: None,
    };
    // A permissive default policy so the shell works out of the box.
    shell
        .db
        .add_policy(ConfidencePolicy::default_floor(0.0).expect("valid"));

    let stdin = io::stdin();
    let mut out = io::stdout();
    print!("pcqe> ");
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            if trimmed.eq_ignore_ascii_case(".quit") || trimmed.eq_ignore_ascii_case(".exit") {
                break;
            }
            if let Err(e) = shell.dispatch(trimmed) {
                println!("error: {e}");
            }
        }
        print!("pcqe> ");
        out.flush()?;
    }
    println!();
    Ok(())
}

impl Shell {
    fn dispatch(&mut self, line: &str) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(rest) = line.strip_prefix('.') {
            self.dot_command(rest)
        } else {
            self.sql(line)
        }
    }

    fn dot_command(&mut self, rest: &str) -> Result<(), Box<dyn std::error::Error>> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["help"] => {
                println!(
                    "SQL: CREATE TABLE t (col TYPE, ...); INSERT INTO t VALUES (...) \
                     [WITH CONFIDENCE c]; SELECT ...\n\
                     dot-commands: .user <name> <role> | .purpose <p> | \
                     .policy <role> <purpose> <beta> | .cost <tuple-id> <rate> | \
                     .expecting <fraction> | .accept | .tables | \
                     .explain <query> | .plan <query> | .analyze <query> | \
                     .metrics [json|prom] | \
                     .lint [json] [RULE-ID] | .save <dir> | .load <dir> | .quit\n\
                     .plan shows the logical plan and the cost-chosen \
                     physical plan side by side (join strategy, access \
                     path, pushed predicates)"
                );
            }
            ["user", name, role] => {
                self.user = User::new(*name, *role);
                println!("now querying as {name} ({role})");
            }
            ["purpose", p] => {
                self.purpose = (*p).to_owned();
                println!("purpose set to {p}");
            }
            ["policy", role, purpose, beta] => {
                let beta: f64 = beta.parse()?;
                self.db
                    .add_policy(ConfidencePolicy::new(*role, *purpose, beta)?);
                println!("policy ⟨{role}, {purpose}, {beta}⟩ added");
            }
            ["cost", id, rate] => {
                let id = TupleId(id.trim_start_matches('t').parse()?);
                let rate: f64 = rate.parse()?;
                self.db.set_cost(id, CostFn::linear(rate)?)?;
                println!("cost of {id} set to linear(rate={rate})");
            }
            ["expecting", fraction] => {
                self.expecting = fraction.parse()?;
                println!("expecting {}% of results", self.expecting * 100.0);
            }
            ["accept"] => match self.pending.take() {
                Some(p) => {
                    self.db.apply(&p)?;
                    println!(
                        "applied {} increment(s), total cost {:.2}",
                        p.increments.len(),
                        p.cost
                    );
                }
                None => println!("no pending proposal"),
            },
            ["tables"] => {
                for name in self.db.catalog().table_names() {
                    let t = self.db.catalog().table(name).expect("listed table");
                    println!("{name} ({} rows)", t.len());
                }
            }
            ["explain", rest @ ..] if !rest.is_empty() => {
                print!("{}", self.db.explain(&rest.join(" "))?);
            }
            ["plan", rest @ ..] if !rest.is_empty() => {
                // Logical plan and the cost-chosen physical plan side by
                // side: join strategy (hash vs nested-loop), access path
                // (table scan vs index scan) and pushed-down predicates
                // are all visible in the right-hand column.
                print!("{}", self.db.explain_physical(&rest.join(" "))?);
            }
            ["analyze", rest @ ..] if !rest.is_empty() => {
                // EXPLAIN ANALYZE: run the plan and annotate it with the
                // observed per-operator row and lineage counts.
                print!("{}", self.db.explain_analyze(&rest.join(" "))?);
            }
            ["lint", rest @ ..] if rest.len() <= 2 => {
                // Run the in-repo static analyzer over the workspace the
                // shell was built from — the same analysis as
                // `cargo run -p pcqe-lint`, inside the session. Optional
                // args: `json` picks the machine format, a rule id
                // (e.g. PCQE-C003 or C003) narrows the display to that
                // rule — mirroring the CLI's `--rule`, the narrowed view
                // never changes what the full analysis found.
                let mut as_json = false;
                let mut rule = None;
                let mut bad = None;
                for arg in rest {
                    if *arg == "json" {
                        as_json = true;
                    } else if let Some(r) = pcqe_lint::rules::Rule::parse(arg) {
                        rule = Some(r);
                    } else {
                        bad = Some(*arg);
                    }
                }
                if let Some(arg) = bad {
                    println!("unknown rule id `{arg}` (usage: .lint [json] [RULE-ID])");
                } else {
                    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
                    let analysis = pcqe_lint::analyze(root, None)?;
                    let display = match rule {
                        Some(r) => analysis.filtered(r),
                        None => analysis,
                    };
                    if as_json {
                        print!("{}", pcqe_lint::report::json(&display));
                    } else {
                        print!("{}", pcqe_lint::report::human(&display));
                    }
                }
            }
            ["metrics"] | ["metrics", "prom"] => {
                print!(
                    "{}",
                    pcqe::obs::export::to_prometheus(&self.db.metrics_snapshot())
                );
            }
            ["metrics", "json"] => {
                print!(
                    "{}",
                    pcqe::obs::export::to_json(&self.db.metrics_snapshot())
                );
            }
            ["save", dir] => {
                pcqe::engine::persist::save(&self.db, std::path::Path::new(dir))?;
                println!("saved to {dir}");
            }
            ["load", dir] => {
                self.db = pcqe::engine::persist::load(
                    std::path::Path::new(dir),
                    EngineConfig::default(),
                )?;
                self.pending = None;
                println!("loaded from {dir}");
            }
            _ => println!("unknown command `.{rest}` (try .help)"),
        }
        Ok(())
    }

    fn sql(&mut self, line: &str) -> Result<(), Box<dyn std::error::Error>> {
        let upper = line.trim_start().to_ascii_uppercase();
        if upper.starts_with("CREATE") || upper.starts_with("INSERT") {
            match self.db.execute(line)? {
                StatementOutcome::TableCreated => println!("table created"),
                StatementOutcome::Inserted(ids) => {
                    let rendered: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                    println!("inserted {} row(s): {}", ids.len(), rendered.join(", "));
                }
            }
            return Ok(());
        }
        let request = QueryRequest::new(line, self.purpose.as_str()).expecting(self.expecting);
        let resp = self.db.query(&self.user, &request)?;
        for row in &resp.released {
            println!("{}  [confidence {:.3}]", row.tuple, row.confidence);
        }
        println!(
            "{} row(s) released, {} withheld (β = {})",
            resp.released.len(),
            resp.withheld,
            resp.threshold
        );
        match resp.proposal {
            Some(p) => {
                println!(
                    "improvement available: cost {:.2} raises {} tuple(s) — type .accept",
                    p.cost,
                    p.increments.len()
                );
                for inc in &p.increments {
                    println!(
                        "  {}: {:.2} -> {:.2} (cost {:.2})",
                        inc.tuple_id, inc.from, inc.to, inc.cost
                    );
                }
                self.pending = Some(p);
            }
            None => self.pending = None,
        }
        Ok(())
    }
}
