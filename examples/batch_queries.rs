//! The multi-query extension (end of Section 4) and the advance-time
//! statistics (Section 6): a user issues several queries in a short
//! period; one strategy must satisfy all of them, and past solve times
//! predict how far in advance the next batch should be submitted.
//!
//! Run with `cargo run --example batch_queries`.

use pcqe::core::clock::Stopwatch;
use pcqe::core::estimator::RuntimeEstimator;
use pcqe::core::greedy::GreedyOptions;
use pcqe::core::multi::{solve_greedy, MultiQueryProblem};
use pcqe::core::problem::ProblemBuilder;
use pcqe::cost::CostFn;
use pcqe::lineage::Lineage;
use pcqe::workload::{generate, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Two queries sharing base tuples --------------------------------
    // Query 1 (audit, β = 0.5) and query 2 (forecast, β = 0.6) both touch
    // supplier records 10 and 11.
    let mut q1 = ProblemBuilder::new(0.5, 0.1);
    q1.base(10, 0.2, CostFn::linear(100.0)?);
    q1.base(11, 0.15, CostFn::linear(60.0)?);
    q1.base(12, 0.1, CostFn::linear(40.0)?);
    q1.result_from_lineage(&Lineage::or(vec![Lineage::var(10), Lineage::var(12)]))?;
    q1.result_from_lineage(&Lineage::var(11))?;
    let q1 = q1.require(2).build()?;

    let mut q2 = ProblemBuilder::new(0.6, 0.1);
    q2.base(10, 0.2, CostFn::linear(100.0)?);
    q2.base(11, 0.15, CostFn::linear(60.0)?);
    q2.base(20, 0.1, CostFn::linear(30.0)?);
    q2.result_from_lineage(&Lineage::and(vec![Lineage::var(10), Lineage::var(20)]))?;
    q2.result_from_lineage(&Lineage::var(11))?;
    let q2 = q2.require(1).build()?;

    let multi = MultiQueryProblem::merge(&[q1, q2])?;
    println!(
        "merged batch: {} distinct base tuples across {} results in {} queries",
        multi.bases.len(),
        multi.results.len(),
        multi.queries.len()
    );

    let out = solve_greedy(&multi, &GreedyOptions::default())?;
    println!(
        "one strategy satisfies every quota: cost {:.1}, {} tuples raised",
        out.solution.cost,
        out.solution
            .levels
            .iter()
            .zip(&multi.bases)
            .filter(|(l, b)| **l > b.initial + 1e-9)
            .count()
    );
    for (level, base) in out.solution.levels.iter().zip(&multi.bases) {
        if *level > base.initial + 1e-9 {
            println!("  tuple {}: {:.2} -> {:.2}", base.id, base.initial, level);
        }
    }

    // --- Advance-time estimation ----------------------------------------
    // Record solve times at a few sizes, then predict the lead time for a
    // larger batch (Section 6's future-work sketch).
    let mut estimator = RuntimeEstimator::new();
    for size in [200usize, 400, 800, 1600] {
        let problem = generate(&WorkloadParams::scalability_point(size).with_seed(1))?;
        let watch = Stopwatch::start();
        let _ = pcqe::core::greedy::solve(&problem, &GreedyOptions::default())?;
        estimator.record(size, watch.elapsed());
    }
    let fit = estimator.fit().expect("four samples fit a line");
    println!(
        "\nruntime model: seconds ≈ {:.2e} · size^{:.2}",
        fit.a, fit.b
    );
    let lead = estimator
        .lead_time(10_000, 2.0)
        .expect("prediction available");
    println!(
        "a 10K-tuple improvement should be requested ≈ {:.1?} in advance (2x safety)",
        lead
    );
    Ok(())
}
