//! A confidence-gated analytics dashboard: GROUP BY aggregation over
//! uncertain rows, where each aggregate row's confidence is the
//! probability its group is non-empty, and a picky executive policy
//! triggers a verification plan for the shakiest regions.
//!
//! Run with `cargo run --example sales_dashboard`.

use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(EngineConfig::default());
    db.create_table(
        "Sales",
        Schema::new(vec![
            Column::new("region", DataType::Text),
            Column::new("rep", DataType::Text),
            Column::new("amount", DataType::Real),
        ])?,
    )?;

    // West: two CRM-verified deals. East: two self-reported deals the
    // reps never confirmed. South: one old import.
    let rows: [(&str, &str, f64, f64); 5] = [
        ("west", "ana", 120_000.0, 0.95),
        ("west", "bo", 80_000.0, 0.9),
        ("east", "cy", 200_000.0, 0.35),
        ("east", "dee", 50_000.0, 0.4),
        ("south", "ed", 75_000.0, 0.45),
    ];
    let mut ids = Vec::new();
    for (region, rep, amount, confidence) in rows {
        ids.push(db.insert(
            "Sales",
            vec![Value::text(region), Value::text(rep), Value::Real(amount)],
            confidence,
        )?);
    }
    // Confirming a deal with the rep is cheap; re-auditing the old South
    // import is not.
    db.set_cost(ids[2], CostFn::linear(40.0)?)?;
    db.set_cost(ids[3], CostFn::linear(60.0)?)?;
    db.set_cost(ids[4], CostFn::exponential(30.0, 3.0)?)?;

    db.add_policy(ConfidencePolicy::new("analyst", "weekly-report", 0.3)?);
    db.add_policy(ConfidencePolicy::new("cfo", "board-deck", 0.55)?);

    let dashboard = "SELECT region, COUNT(*) AS deals, SUM(amount) AS pipeline \
                     FROM Sales GROUP BY region ORDER BY region";

    // The analyst's weekly report shows every region.
    let analyst = User::new("ana-lyst", "analyst");
    let resp = db.query(&analyst, &QueryRequest::new(dashboard, "weekly-report"))?;
    println!("analyst dashboard (β=0.3):");
    for row in &resp.released {
        println!("  {}  [confidence {:.2}]", row.tuple, row.confidence);
    }

    // The CFO's board deck drops the unverified regions — and gets the
    // cheapest verification plan to win them back.
    let cfo = User::new("c-f-o", "cfo");
    let request = QueryRequest::new(dashboard, "board-deck");
    let resp = db.query(&cfo, &request)?;
    println!(
        "\nCFO board deck (β=0.55): {} of 3 regions visible",
        resp.released.len()
    );
    let proposal = resp.proposal.expect("regions are verifiable");
    println!("verification plan, cost {:.0}:", proposal.cost);
    for inc in &proposal.increments {
        println!(
            "  confirm tuple {}: {:.2} -> {:.2} (cost {:.0})",
            inc.tuple_id, inc.from, inc.to, inc.cost
        );
    }

    // Preview before committing (what-if), then accept.
    let preview = db.what_if(&cfo, &request, &proposal)?;
    println!(
        "\npreview after verification: {} regions visible",
        preview.released.len()
    );
    db.apply(&proposal)?;
    let resp = db.query(&cfo, &request)?;
    assert_eq!(resp.released.len(), 3);
    println!("\nafter verification the CFO sees all regions:");
    for row in &resp.released {
        println!("  {}  [confidence {:.2}]", row.tuple, row.confidence);
    }
    Ok(())
}
