//! The paper's running example (Section 3.1), reproduced end to end:
//! Tables 1–2, the Candidate query with p38 = 0.058 (Table 3), policies
//! P1/P2, and the cheapest confidence increment (raise tuple 03, cost 10).
//!
//! Run with `cargo run --example venture_capital`.

use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};

const QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(EngineConfig::default());

    // Table 1: Proposal(Company, Proposal, Funding) with confidences.
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])?,
    )?;
    // Table 2: CompanyInfo(Company, Income) with confidences.
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])?,
    )?;

    // Tuple 01: filtered out by the funding predicate.
    db.insert(
        "Proposal",
        vec![
            Value::text("MegaWatt"),
            Value::text("grid expansion"),
            Value::Real(3_000_000.0),
        ],
        0.8,
    )?;
    // Tuples 02 (p02 = 0.3) and 03 (p03 = 0.4): two SkyCam proposals under
    // one million — the projection merges them with OR lineage.
    let t02 = db.insert(
        "Proposal",
        vec![
            Value::text("SkyCam"),
            Value::text("drone v1"),
            Value::Real(800_000.0),
        ],
        0.3,
    )?;
    let t03 = db.insert(
        "Proposal",
        vec![
            Value::text("SkyCam"),
            Value::text("drone v2"),
            Value::Real(900_000.0),
        ],
        0.4,
    )?;
    // Tuple 13 (p13 = 0.1): SkyCam's financials.
    let t13 = db.insert(
        "CompanyInfo",
        vec![Value::text("SkyCam"), Value::Real(500_000.0)],
        0.1,
    )?;

    // Section 3.1: "the costs of incrementing the confidence level by 0.1
    // for each of the tuples 02 and 03 are 100 and 10".
    db.set_cost(t02, CostFn::linear(1_000.0)?)?;
    db.set_cost(t03, CostFn::linear(100.0)?)?;
    // Improving the audited financials is prohibitively expensive.
    db.set_cost(t13, CostFn::linear(10_000.0)?)?;

    // Policies P1 and P2.
    db.add_policy(ConfidencePolicy::new("Secretary", "analysis", 0.05)?);
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06)?);

    println!("Query: {QUERY}\n");

    // The secretary's analysis passes P1 (0.058 > 0.05).
    let secretary = User::new("sue", "Secretary");
    let resp = db.query(&secretary, &QueryRequest::new(QUERY, "analysis"))?;
    println!("Secretary (P1, β=0.05): {} row(s)", resp.released.len());
    for r in &resp.released {
        println!(
            "  {}  confidence {:.3}  lineage {}",
            r.tuple, r.confidence, r.lineage
        );
    }
    assert_eq!(resp.released.len(), 1);
    assert!((resp.released[0].confidence - 0.058).abs() < 1e-12);

    // The manager's investment decision fails P2 (0.058 < 0.06) — the
    // strategy finder proposes the cheapest fix.
    let manager = User::new("mark", "Manager");
    let resp = db.query(&manager, &QueryRequest::new(QUERY, "investment"))?;
    println!(
        "\nManager (P2, β=0.06): {} row(s), {} withheld",
        resp.released.len(),
        resp.withheld
    );
    let proposal = resp.proposal.expect("an improvement strategy exists");
    println!("Proposal (cost {:.0}):", proposal.cost);
    for inc in &proposal.increments {
        println!(
            "  raise tuple {} from {:.1} to {:.1} (cost {:.0})",
            inc.tuple_id, inc.from, inc.to, inc.cost
        );
    }
    // Exactly the paper's conclusion: 0.4 → 0.5 on tuple 03 for cost 10,
    // not 0.3 → 0.4 on tuple 02 for cost 100.
    assert!((proposal.cost - 10.0).abs() < 1e-9);
    assert_eq!(proposal.increments.len(), 1);
    assert_eq!(proposal.increments[0].tuple_id, t03);

    // Accept: the data-quality improvement runs and the manager now sees
    // the candidate with p38 = 0.065 > 0.06.
    db.apply(&proposal)?;
    let resp = db.query(&manager, &QueryRequest::new(QUERY, "investment"))?;
    println!("\nAfter improvement: {} row(s)", resp.released.len());
    for r in &resp.released {
        println!("  {}  confidence {:.3}", r.tuple, r.confidence);
    }
    assert_eq!(resp.released.len(), 1);
    assert!((resp.released[0].confidence - 0.065).abs() < 1e-12);
    println!("\nMatches Section 3.1: p25 = 0.65, p38 = 0.065 > 0.06.");
    Ok(())
}
