//! The paper's health-care motivation (Section 1, after Malin et al.):
//! "cancer registry and administrative data are often readily available at
//! reasonable costs; patient and physician survey data are more expensive,
//! while medical record data are often the most expensive to collect and
//! are typically quite accurate" — and the required confidence depends on
//! the purpose: hypothesis generation tolerates noisy data, treatment
//! evaluation does not.
//!
//! This example assigns tuple confidences from *provenance* (source trust,
//! collection method, freshness, corroboration) rather than by hand, and
//! shows the same query released for research but gated — with a costed
//! improvement plan — for clinical evaluation.
//!
//! Run with `cargo run --example clinical_registry`.

use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::policy::ConfidencePolicy;
use pcqe::provenance::{Agent, CollectionMethod, ProvenanceRecord, Source};
use pcqe::storage::{Column, DataType, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(EngineConfig::default());
    db.create_table(
        "Outcomes",
        Schema::new(vec![
            Column::new("patient", DataType::Text),
            Column::new("treatment", DataType::Text),
            Column::new("response", DataType::Text),
        ])?,
    )?;

    // Provenance sources of decreasing trust and cost.
    let registry = Source::new("state-cancer-registry", 0.92)?;
    let claims = Source::new("insurance-claims", 0.75)?;
    let survey = Source::new("patient-survey", 0.55)?;
    let etl = Agent::new("registry-etl", 0.98)?;

    // Patient A: registry-backed, automated, fresh — high confidence.
    let a = db.insert_assessed(
        "Outcomes",
        vec![
            Value::text("A"),
            Value::text("regimen-1"),
            Value::text("remission"),
        ],
        &[ProvenanceRecord::new(registry.clone(), CollectionMethod::Automated).via(etl.clone())],
    )?;

    // Patient B: survey only — low confidence, cheap to improve (pull the
    // chart).
    let b = db.insert_assessed(
        "Outcomes",
        vec![
            Value::text("B"),
            Value::text("regimen-1"),
            Value::text("remission"),
        ],
        &[ProvenanceRecord::new(survey.clone(), CollectionMethod::Survey).aged(400.0)],
    )?;

    // Patient C: survey corroborated by claims — middling confidence,
    // expensive to improve further (full medical-record abstraction).
    let c = db.insert_assessed(
        "Outcomes",
        vec![
            Value::text("C"),
            Value::text("regimen-1"),
            Value::text("progression"),
        ],
        &[
            ProvenanceRecord::new(survey, CollectionMethod::Survey),
            ProvenanceRecord::new(claims, CollectionMethod::ThirdPartyFeed),
        ],
    )?;

    println!("assessed confidences:");
    for (label, id) in [
        ("A (registry)", a),
        ("B (survey)", b),
        ("C (survey+claims)", c),
    ] {
        println!("  {label}: {:.3}", db.confidence(id).unwrap());
    }

    // Improvement costs mirror the paper's cost ladder: chart pulls are
    // cheap, record abstraction is not.
    db.set_cost(b, CostFn::linear(20.0)?)?;
    db.set_cost(c, CostFn::exponential(40.0, 4.0)?)?;

    // Purpose-dependent thresholds (the Malin et al. guideline).
    db.add_policy(ConfidencePolicy::new(
        "researcher",
        "hypothesis-generation",
        0.30,
    )?);
    db.add_policy(ConfidencePolicy::new(
        "clinician",
        "treatment-evaluation",
        0.60,
    )?);

    let query = "SELECT patient, response FROM Outcomes WHERE treatment = 'regimen-1'";

    // Research use: everything but the stale survey row flows through.
    let researcher = User::new("rhea", "researcher");
    let resp = db.query(
        &researcher,
        &QueryRequest::new(query, "hypothesis-generation"),
    )?;
    println!(
        "\nresearcher (β=0.30): {} of 3 rows released",
        resp.released.len()
    );

    // Clinical use: only the registry row clears β = 0.6; asking for 100 %
    // of results triggers strategy finding.
    let clinician = User::new("cleo", "clinician");
    let request = QueryRequest::new(query, "treatment-evaluation");
    let resp = db.query(&clinician, &request)?;
    println!(
        "clinician (β=0.60): {} released, {} withheld",
        resp.released.len(),
        resp.withheld
    );
    let proposal = resp.proposal.expect("the withheld rows are improvable");
    println!(
        "improvement plan costs {:.1} across {} tuples:",
        proposal.cost,
        proposal.increments.len()
    );
    for inc in &proposal.increments {
        println!(
            "  verify tuple {}: {:.3} -> {:.3} (cost {:.1})",
            inc.tuple_id, inc.from, inc.to, inc.cost
        );
    }

    db.apply(&proposal)?;
    let resp = db.query(&clinician, &request)?;
    println!(
        "after verification the clinician sees {} of 3 rows",
        resp.released.len()
    );
    assert_eq!(resp.released.len(), 3);
    Ok(())
}
