//! # PCQE — Policy-Compliant Query Evaluation
//!
//! A faithful, from-scratch reproduction of *"Query Processing Techniques
//! for Compliance with Data Confidence Policies"* (Dai, Lin, Kantarcioglu,
//! Bertino, Celikel, Thuraisingham; SDM 2009, co-located with VLDB).
//!
//! The facade crate re-exports every subsystem:
//!
//! * [`storage`] — confidence-carrying in-memory tables.
//! * [`lineage`] — boolean lineage and confidence computation.
//! * [`algebra`] — lineage-propagating relational algebra.
//! * [`sql`] — SQL-subset front-end.
//! * [`provenance`] — confidence assignment from provenance.
//! * [`policy`] — confidence policies ⟨role, purpose, β⟩.
//! * [`cost`] — per-tuple confidence-increment cost models.
//! * [`core`] — the paper's strategy-finding algorithms (heuristic
//!   branch-and-bound, two-phase greedy, divide-and-conquer).
//! * [`engine`] — the end-to-end PCQE framework of the paper's Figure 1.
//! * [`workload`] — the synthetic evaluation workloads of Section 5.
//! * [`obs`] — hermetic observability: metrics, spans, `EXPLAIN
//!   ANALYZE` plumbing, JSON/Prometheus exporters.
//! * [`par`] — the deterministic chunked scheduler.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use pcqe_algebra as algebra;
pub use pcqe_core as core;
pub use pcqe_cost as cost;
pub use pcqe_engine as engine;
pub use pcqe_lineage as lineage;
pub use pcqe_obs as obs;
pub use pcqe_par as par;
pub use pcqe_policy as policy;
pub use pcqe_provenance as provenance;
pub use pcqe_sql as sql;
pub use pcqe_storage as storage;
pub use pcqe_workload as workload;
