//! Property-based tests for the cost models and the policy store.

use pcqe::cost::CostFn;
use pcqe::policy::{ConfidencePolicy, PolicyStore, Purpose, Role};
use proptest::prelude::*;

/// A random cost function from every family with valid parameters.
fn cost_fn_strategy() -> impl Strategy<Value = CostFn> {
    prop_oneof![
        (0.1f64..1000.0).prop_map(|r| CostFn::linear(r).expect("valid")),
        (0.1f64..500.0, 1.0f64..4.0)
            .prop_map(|(c, d)| CostFn::polynomial(c, d).expect("valid")),
        (0.1f64..100.0, 0.5f64..6.0)
            .prop_map(|(c, r)| CostFn::exponential(c, r).expect("valid")),
        (0.1f64..500.0, 0.5f64..20.0)
            .prop_map(|(c, s)| CostFn::logarithmic(c, s).expect("valid")),
        proptest::collection::vec(0.01f64..10.0, 1..5).prop_map(|increments| {
            // Build monotone breakpoints from positive increments.
            let mut points = vec![(0.0, 0.0)];
            let n = increments.len();
            let mut g = 0.0;
            for (i, inc) in increments.into_iter().enumerate() {
                g += inc;
                let p = (i + 1) as f64 / n as f64;
                points.push((p, g));
            }
            CostFn::piecewise(points).expect("constructed monotone")
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn costs_are_nonnegative_and_monotone(
        cost in cost_fn_strategy(),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c = cost.cost(lo, hi);
        prop_assert!(c >= 0.0);
        prop_assert_eq!(cost.cost(hi, lo), 0.0, "lowering is free");
        // Widening the interval can only cost more.
        let wider = cost.cost((lo - 0.1).max(0.0), (hi + 0.1).min(1.0));
        prop_assert!(wider >= c - 1e-9);
    }

    #[test]
    fn costs_are_additive_along_paths(
        cost in cost_fn_strategy(),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
        c in 0.0f64..=1.0,
    ) {
        let mut points = [a, b, c];
        points.sort_by(f64::total_cmp);
        let [x, y, z] = points;
        let direct = cost.cost(x, z);
        let stepped = cost.cost(x, y) + cost.cost(y, z);
        prop_assert!((direct - stepped).abs() < 1e-6 * (1.0 + direct.abs()),
            "direct {} vs stepped {}", direct, stepped);
    }

    #[test]
    fn step_cost_is_consistent(cost in cost_fn_strategy(), from in 0.0f64..=1.0) {
        let s = cost.step_cost(from, 0.1);
        prop_assert!((s - cost.cost(from, (from + 0.1).min(1.0))).abs() < 1e-12);
    }

    #[test]
    fn selected_policy_is_always_applicable(
        thresholds in proptest::collection::vec(0.0f64..=1.0, 1..6),
        role_pick in 0usize..3,
        purpose_pick in 0usize..3,
    ) {
        let roles = ["analyst", "manager", "auditor"];
        let purposes = ["report", "invest", "audit"];
        let mut store = PolicyStore::new();
        // A deterministic mix of exact and wildcard policies.
        for (i, &beta) in thresholds.iter().enumerate() {
            match i % 3 {
                0 => store.add(
                    ConfidencePolicy::new(roles[i % roles.len()], purposes[i % purposes.len()], beta)
                        .expect("valid"),
                ),
                1 => store.add(ConfidencePolicy::for_role(roles[i % roles.len()], beta).expect("valid")),
                _ => store.add(ConfidencePolicy::default_floor(beta).expect("valid")),
            }
        }
        let role = Role::new(roles[role_pick]);
        let purpose = Purpose::new(purposes[purpose_pick]);
        match store.select(&role, &purpose) {
            Ok(policy) => {
                // The returned threshold must belong to some stored policy.
                prop_assert!(store
                    .policies()
                    .iter()
                    .any(|p| p.threshold == policy.threshold));
            }
            Err(_) => {
                // Only possible when no wildcard floor exists.
                prop_assert!(!thresholds.iter().enumerate().any(|(i, _)| i % 3 == 2));
            }
        }
    }

    #[test]
    fn admits_is_exactly_strictly_greater(beta in 0.0f64..=1.0, conf in 0.0f64..=1.0) {
        let p = ConfidencePolicy::default_floor(beta).expect("valid");
        prop_assert_eq!(p.admits(conf), conf > beta);
    }
}
