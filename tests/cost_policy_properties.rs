//! Seeded property tests for the cost models and the policy store.

#![allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract

mod common;

use common::for_each_case;
use pcqe::cost::CostFn;
use pcqe::lineage::Rng64;
use pcqe::policy::{ConfidencePolicy, PolicyStore, Purpose, Role};

const CASES: u64 = 256;

/// A random cost function from every family with valid parameters.
fn random_cost_fn(rng: &mut Rng64) -> CostFn {
    match rng.below_usize(5) {
        0 => CostFn::linear(rng.range_f64(0.1, 1000.0)).expect("valid"),
        1 => CostFn::polynomial(rng.range_f64(0.1, 500.0), rng.range_f64(1.0, 4.0)).expect("valid"),
        2 => {
            CostFn::exponential(rng.range_f64(0.1, 100.0), rng.range_f64(0.5, 6.0)).expect("valid")
        }
        3 => {
            CostFn::logarithmic(rng.range_f64(0.1, 500.0), rng.range_f64(0.5, 20.0)).expect("valid")
        }
        _ => {
            // Build monotone breakpoints from positive increments.
            let n = rng.range_usize(1, 5);
            let mut points = vec![(0.0, 0.0)];
            let mut g = 0.0;
            for i in 0..n {
                g += rng.range_f64(0.01, 10.0);
                let p = (i + 1) as f64 / n as f64;
                points.push((p, g));
            }
            CostFn::piecewise(points).expect("constructed monotone")
        }
    }
}

#[test]
fn costs_are_nonnegative_and_monotone() {
    for_each_case(CASES, 0xC057_0001, |rng| {
        let cost = random_cost_fn(rng);
        let (a, b) = (rng.next_f64(), rng.next_f64());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c = cost.cost(lo, hi);
        assert!(c >= 0.0);
        assert_eq!(cost.cost(hi, lo), 0.0, "lowering is free");
        // Widening the interval can only cost more.
        let wider = cost.cost((lo - 0.1).max(0.0), (hi + 0.1).min(1.0));
        assert!(wider >= c - 1e-9);
    });
}

#[test]
fn costs_are_additive_along_paths() {
    for_each_case(CASES, 0xC057_0002, |rng| {
        let cost = random_cost_fn(rng);
        let mut points = [rng.next_f64(), rng.next_f64(), rng.next_f64()];
        points.sort_by(f64::total_cmp);
        let [x, y, z] = points;
        let direct = cost.cost(x, z);
        let stepped = cost.cost(x, y) + cost.cost(y, z);
        assert!(
            (direct - stepped).abs() < 1e-6 * (1.0 + direct.abs()),
            "direct {direct} vs stepped {stepped}"
        );
    });
}

#[test]
fn step_cost_is_consistent() {
    for_each_case(CASES, 0xC057_0003, |rng| {
        let cost = random_cost_fn(rng);
        let from = rng.next_f64();
        let s = cost.step_cost(from, 0.1);
        assert!((s - cost.cost(from, (from + 0.1).min(1.0))).abs() < 1e-12);
    });
}

#[test]
fn selected_policy_is_always_applicable() {
    for_each_case(CASES, 0xC057_0004, |rng| {
        let roles = ["analyst", "manager", "auditor"];
        let purposes = ["report", "invest", "audit"];
        let n_policies = rng.range_usize(1, 6);
        let thresholds: Vec<f64> = (0..n_policies).map(|_| rng.next_f64()).collect();
        let role_pick = rng.below_usize(3);
        let purpose_pick = rng.below_usize(3);
        let mut store = PolicyStore::new();
        // A deterministic mix of exact and wildcard policies.
        for (i, &beta) in thresholds.iter().enumerate() {
            match i % 3 {
                0 => store.add(
                    ConfidencePolicy::new(
                        roles[i % roles.len()],
                        purposes[i % purposes.len()],
                        beta,
                    )
                    .expect("valid"),
                ),
                1 => store
                    .add(ConfidencePolicy::for_role(roles[i % roles.len()], beta).expect("valid")),
                _ => store.add(ConfidencePolicy::default_floor(beta).expect("valid")),
            }
        }
        let role = Role::new(roles[role_pick]);
        let purpose = Purpose::new(purposes[purpose_pick]);
        match store.select(&role, &purpose) {
            Ok(policy) => {
                // The returned threshold must belong to some stored policy.
                assert!(store
                    .policies()
                    .iter()
                    .any(|p| p.threshold == policy.threshold));
            }
            Err(_) => {
                // Only possible when no wildcard floor exists.
                assert!(!thresholds.iter().enumerate().any(|(i, _)| i % 3 == 2));
            }
        }
    });
}

#[test]
fn admits_is_exactly_strictly_greater() {
    for_each_case(CASES, 0xC057_0005, |rng| {
        let beta = rng.next_f64();
        let conf = rng.next_f64();
        let p = ConfidencePolicy::default_floor(beta).expect("valid");
        assert_eq!(p.admits(conf), conf > beta);
    });
}
