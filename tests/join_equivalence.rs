//! Hash-join soundness: for random tables (NULL keys included), a Join
//! must return exactly the rows of the equivalent Product + Select, with
//! identical lineage.

use pcqe::algebra::{execute, Plan, ScalarExpr};
use pcqe::storage::{Catalog, Column, DataType, Schema, Value};
use proptest::prelude::*;

fn build(left: &[(Option<i64>, i64)], right: &[(Option<i64>, i64)]) -> Catalog {
    let mut c = Catalog::new();
    for name in ["l", "r"] {
        c.create_table(
            name,
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    for &(k, v) in left {
        let key = k.map(Value::Int).unwrap_or(Value::Null);
        c.insert("l", vec![key, Value::Int(v)], 0.5).unwrap();
    }
    for &(k, v) in right {
        let key = k.map(Value::Int).unwrap_or(Value::Null);
        c.insert("r", vec![key, Value::Int(v)], 0.5).unwrap();
    }
    c
}

fn rows_of(plan: &Plan, c: &Catalog) -> Vec<String> {
    let mut out: Vec<String> = execute(plan, c)
        .unwrap()
        .rows()
        .iter()
        .map(|r| format!("{} | {}", r.tuple, r.lineage))
        .collect();
    out.sort();
    out
}

fn key_strategy() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![4 => (0i64..4).prop_map(Some), 1 => Just(None)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_equals_filtered_product(
        left in proptest::collection::vec((key_strategy(), 0i64..100), 0..8),
        right in proptest::collection::vec((key_strategy(), 0i64..100), 0..8),
        with_residual in any::<bool>(),
    ) {
        let c = build(&left, &right);
        // l.k = r.k [AND l.v < r.v]
        let mut predicate = ScalarExpr::column(0).eq(ScalarExpr::column(2));
        if with_residual {
            predicate = predicate.and(ScalarExpr::column(1).lt(ScalarExpr::column(3)));
        }
        let join = Plan::scan("l").join(Plan::scan("r"), predicate.clone());
        let reference = Plan::scan("l").product(Plan::scan("r")).select(predicate);
        prop_assert_eq!(rows_of(&join, &c), rows_of(&reference, &c));
    }

    #[test]
    fn join_key_multiplicity_is_respected(
        key in 0i64..3,
        left_copies in 1usize..4,
        right_copies in 1usize..4,
    ) {
        // n copies on each side must produce n·m join rows.
        let left: Vec<(Option<i64>, i64)> =
            (0..left_copies).map(|i| (Some(key), i as i64)).collect();
        let right: Vec<(Option<i64>, i64)> =
            (0..right_copies).map(|i| (Some(key), i as i64)).collect();
        let c = build(&left, &right);
        let join = Plan::scan("l").join(
            Plan::scan("r"),
            ScalarExpr::column(0).eq(ScalarExpr::column(2)),
        );
        prop_assert_eq!(execute(&join, &c).unwrap().len(), left_copies * right_copies);
    }
}
