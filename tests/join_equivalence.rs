//! Hash-join soundness: for random tables (NULL keys included), a Join
//! must return exactly the rows of the equivalent Product + Select, with
//! identical lineage.

mod common;

use common::for_each_case;
use pcqe::algebra::{execute, Plan, ScalarExpr};
use pcqe::lineage::Rng64;
use pcqe::storage::{Catalog, Column, DataType, Schema, Value};

const CASES: u64 = 128;

fn build(left: &[(Option<i64>, i64)], right: &[(Option<i64>, i64)]) -> Catalog {
    let mut c = Catalog::new();
    for name in ["l", "r"] {
        c.create_table(
            name,
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
    }
    for &(k, v) in left {
        let key = k.map(Value::Int).unwrap_or(Value::Null);
        c.insert("l", vec![key, Value::Int(v)], 0.5).unwrap();
    }
    for &(k, v) in right {
        let key = k.map(Value::Int).unwrap_or(Value::Null);
        c.insert("r", vec![key, Value::Int(v)], 0.5).unwrap();
    }
    c
}

fn rows_of(plan: &Plan, c: &Catalog) -> Vec<String> {
    let mut out: Vec<String> = execute(plan, c)
        .unwrap()
        .rows()
        .iter()
        .map(|r| format!("{} | {}", r.tuple, r.lineage))
        .collect();
    out.sort();
    out
}

/// A join key: usually a small int, one time in five NULL.
fn random_key(rng: &mut Rng64) -> Option<i64> {
    if rng.below_usize(5) < 4 {
        Some(rng.below_u64(4) as i64)
    } else {
        None
    }
}

fn random_table(rng: &mut Rng64) -> Vec<(Option<i64>, i64)> {
    let n = rng.below_usize(8);
    (0..n)
        .map(|_| (random_key(rng), rng.below_u64(100) as i64))
        .collect()
}

#[test]
fn hash_join_equals_filtered_product() {
    for_each_case(CASES, 0x2011_0001, |rng| {
        let left = random_table(rng);
        let right = random_table(rng);
        let with_residual = rng.chance(0.5);
        let c = build(&left, &right);
        // l.k = r.k [AND l.v < r.v]
        let mut predicate = ScalarExpr::column(0).eq(ScalarExpr::column(2));
        if with_residual {
            predicate = predicate.and(ScalarExpr::column(1).lt(ScalarExpr::column(3)));
        }
        let join = Plan::scan("l").join(Plan::scan("r"), predicate.clone());
        let reference = Plan::scan("l").product(Plan::scan("r")).select(predicate);
        assert_eq!(rows_of(&join, &c), rows_of(&reference, &c));
    });
}

#[test]
fn join_key_multiplicity_is_respected() {
    for_each_case(CASES, 0x2011_0002, |rng| {
        // n copies on each side must produce n·m join rows.
        let key = rng.below_u64(3) as i64;
        let left_copies = rng.range_usize(1, 4);
        let right_copies = rng.range_usize(1, 4);
        let left: Vec<(Option<i64>, i64)> =
            (0..left_copies).map(|i| (Some(key), i as i64)).collect();
        let right: Vec<(Option<i64>, i64)> =
            (0..right_copies).map(|i| (Some(key), i as i64)).collect();
        let c = build(&left, &right);
        let join = Plan::scan("l").join(
            Plan::scan("r"),
            ScalarExpr::column(0).eq(ScalarExpr::column(2)),
        );
        assert_eq!(
            execute(&join, &c).unwrap().len(),
            left_copies * right_copies
        );
    });
}
