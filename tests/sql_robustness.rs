//! Robustness tests for the SQL front-end: the parser must reject garbage
//! with errors (never panic), and valid inputs must round-trip through the
//! grammar's surface forms.

mod common;

use common::{for_each_case, random_char, random_string};
use pcqe::lineage::Rng64;
use pcqe::sql::{parse, parse_statement};

/// Arbitrary character soup: the lexer/parser must return, not panic.
#[test]
fn parser_never_panics_on_arbitrary_strings() {
    for_each_case(512, 0x5901_0001, |rng| {
        let len = rng.below_usize(81);
        let input: String = (0..len).map(|_| random_char(rng)).collect();
        let _ = parse(&input);
        let _ = parse_statement(&input);
    });
}

/// Strings made of SQL-ish fragments: still no panics, and the error
/// position (when any) stays within the input.
#[test]
fn parser_never_panics_on_sql_shaped_strings() {
    const FRAGMENTS: &[&str] = &[
        "SELECT", "DISTINCT", "*", "FROM", "WHERE", "JOIN", "ON", "AND", "OR", "NOT", "UNION",
        "EXCEPT", "(", ")", ",", "=", "<", "t", "x", "1", "2.5", "'s'", "a.b", "AS", "+", "-", "/",
    ];
    for_each_case(512, 0x5901_0002, |rng| {
        let n = rng.below_usize(16);
        let fragments: Vec<&str> = (0..n)
            .map(|_| FRAGMENTS[rng.below_usize(FRAGMENTS.len())])
            .collect();
        let input = fragments.join(" ");
        match parse(&input) {
            Ok(_) => {}
            Err(pcqe::sql::SqlError::Parse { pos, .. })
            | Err(pcqe::sql::SqlError::Lex { pos, .. }) => {
                assert!(pos <= input.len(), "position {pos} outside {input:?}");
            }
            Err(_) => {}
        }
    });
}

/// Every identifier-shaped table/column name parses in a simple query.
#[test]
fn identifier_names_parse() {
    const HEAD: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J',
        'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '_',
    ];
    const TAIL: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J',
        'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '_', '0',
        '1', '2', '3', '4', '5', '6', '7', '8', '9',
    ];
    let random_ident = |rng: &mut Rng64| {
        let mut s = String::new();
        s.push(HEAD[rng.below_usize(HEAD.len())]);
        s.push_str(&random_string(rng, TAIL, 10));
        s
    };
    for_each_case(512, 0x5901_0003, |rng| {
        let table = random_ident(rng);
        let column = random_ident(rng);
        let sql = format!("SELECT {column} FROM {table}");
        match parse(&sql) {
            Ok(_) => {}
            Err(_) => {
                // Only reserved words may be rejected.
                let reserved = [
                    "SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "JOIN", "INNER", "ON", "AS",
                    "AND", "OR", "NOT", "UNION", "EXCEPT", "TRUE", "FALSE", "NULL",
                ];
                let is_reserved = |s: &str| reserved.iter().any(|r| r.eq_ignore_ascii_case(s));
                assert!(
                    is_reserved(&table) || is_reserved(&column),
                    "non-reserved identifiers must parse: {sql}"
                );
            }
        }
    });
}

/// Numeric literals survive the round trip through the lexer.
#[test]
fn numeric_literals_parse() {
    for_each_case(512, 0x5901_0004, |rng| {
        let n = rng.next_u64() as i32;
        let frac = rng.below_u64(1000);
        let sql = format!("SELECT * FROM t WHERE x = {n} AND y = {n}.{frac:03}");
        assert!(parse(&sql).is_ok(), "{sql}");
    });
}

/// String literals with embedded quotes survive escaping.
#[test]
fn string_literals_parse() {
    const ALPHABET: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'M', 'Z', ' ', '\'', 'é', '世',
    ];
    for_each_case(512, 0x5901_0005, |rng| {
        let s = random_string(rng, ALPHABET, 20);
        let escaped = s.replace('\'', "''");
        let sql = format!("SELECT * FROM t WHERE x = '{escaped}'");
        assert!(parse(&sql).is_ok(), "{sql}");
    });
}

#[test]
fn deeply_nested_parentheses_do_not_overflow() {
    let nested = |depth: usize| {
        let mut pred = String::new();
        for _ in 0..depth {
            pred.push('(');
        }
        pred.push_str("x = 1");
        for _ in 0..depth {
            pred.push(')');
        }
        format!("SELECT * FROM t WHERE {pred}")
    };
    // Sane depths parse fine.
    assert!(parse(&nested(100)).is_ok());
    // Absurd depths are rejected with an error, never a stack crash.
    match parse(&nested(5_000)) {
        Err(pcqe::sql::SqlError::Parse { message, .. }) => {
            assert!(message.contains("nesting"), "{message}");
        }
        other => panic!("expected a depth error, got {other:?}"),
    }
}
