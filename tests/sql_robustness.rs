//! Robustness tests for the SQL front-end: the parser must reject garbage
//! with errors (never panic), and valid inputs must round-trip through the
//! grammar's surface forms.

use pcqe::sql::{parse, parse_statement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: the lexer/parser must return, not panic.
    #[test]
    fn parser_never_panics_on_arbitrary_strings(input in ".{0,80}") {
        let _ = parse(&input);
        let _ = parse_statement(&input);
    }

    /// Strings made of SQL-ish fragments: still no panics, and the error
    /// position (when any) stays within the input.
    #[test]
    fn parser_never_panics_on_sql_shaped_strings(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("DISTINCT"), Just("*"), Just("FROM"),
                Just("WHERE"), Just("JOIN"), Just("ON"), Just("AND"),
                Just("OR"), Just("NOT"), Just("UNION"), Just("EXCEPT"),
                Just("("), Just(")"), Just(","), Just("="), Just("<"),
                Just("t"), Just("x"), Just("1"), Just("2.5"), Just("'s'"),
                Just("a.b"), Just("AS"), Just("+"), Just("-"), Just("/"),
            ],
            0..16,
        )
    ) {
        let input = fragments.join(" ");
        match parse(&input) {
            Ok(_) => {}
            Err(pcqe::sql::SqlError::Parse { pos, .. })
            | Err(pcqe::sql::SqlError::Lex { pos, .. }) => {
                prop_assert!(pos <= input.len());
            }
            Err(_) => {}
        }
    }

    /// Every identifier-shaped table/column name parses in a simple query.
    #[test]
    fn identifier_names_parse(
        table in "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
        column in "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
    ) {
        let sql = format!("SELECT {column} FROM {table}");
        match parse(&sql) {
            Ok(_) => {}
            Err(_) => {
                // Only reserved words may be rejected.
                let reserved = [
                    "SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "JOIN", "INNER",
                    "ON", "AS", "AND", "OR", "NOT", "UNION", "EXCEPT", "TRUE",
                    "FALSE", "NULL",
                ];
                let is_reserved = |s: &str| reserved.iter().any(|r| r.eq_ignore_ascii_case(s));
                prop_assert!(is_reserved(&table) || is_reserved(&column),
                    "non-reserved identifiers must parse: {}", sql);
            }
        }
    }

    /// Numeric literals survive the round trip through the lexer.
    #[test]
    fn numeric_literals_parse(n in proptest::num::i32::ANY, frac in 0u32..1000) {
        let sql = format!("SELECT * FROM t WHERE x = {n} AND y = {n}.{frac:03}");
        prop_assert!(parse(&sql).is_ok(), "{}", sql);
    }

    /// String literals with embedded quotes survive escaping.
    #[test]
    fn string_literals_parse(s in "[a-zA-Z '\u{e9}\u{4e16}]{0,20}") {
        let escaped = s.replace('\'', "''");
        let sql = format!("SELECT * FROM t WHERE x = '{escaped}'");
        prop_assert!(parse(&sql).is_ok(), "{}", sql);
    }
}

#[test]
fn deeply_nested_parentheses_do_not_overflow() {
    let nested = |depth: usize| {
        let mut pred = String::new();
        for _ in 0..depth {
            pred.push('(');
        }
        pred.push_str("x = 1");
        for _ in 0..depth {
            pred.push(')');
        }
        format!("SELECT * FROM t WHERE {pred}")
    };
    // Sane depths parse fine.
    assert!(parse(&nested(100)).is_ok());
    // Absurd depths are rejected with an error, never a stack crash.
    match parse(&nested(5_000)) {
        Err(pcqe::sql::SqlError::Parse { message, .. }) => {
            assert!(message.contains("nesting"), "{message}");
        }
        other => panic!("expected a depth error, got {other:?}"),
    }
}
