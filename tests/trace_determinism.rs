//! Causal-tracing acceptance suite.
//!
//! Three contracts from the design of the tracing subsystem:
//!
//! 1. **Result neutrality** — query answers, confidences (bit-for-bit),
//!    proposals and audit entries are identical with tracing on or off,
//!    at any worker-thread count. The tracer is a write-only sink; it
//!    must never feed back into planning, scoring or gating.
//! 2. **Byte-stable exports** — the Chrome trace-event JSON and the
//!    collapsed-stack (flamegraph) renderings of a single-threaded run
//!    under a [`ManualClock`] match golden files exactly.
//! 3. **Decision completeness** — every released or suppressed tuple of
//!    the paper's Section 3.1 example yields exactly one `Decision`
//!    event whose verdict and confidence agree with the audit log.

use pcqe::core::clock::ManualClock;
use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::obs::trace_export::{to_chrome_json, to_folded};
use pcqe::obs::QueryTrace;
use pcqe::par::ConfidencePath;
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};
use std::sync::Arc;

const QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// The paper's Section 3.1 database. With a [`ManualClock`] every
/// timestamp is 0 and the only ordering is the tracer's deterministic
/// sequence counter, so exports are byte-stable.
fn paper_db(worker_threads: Option<usize>) -> Database {
    let config = EngineConfig {
        worker_threads,
        parallel_threshold: 1,
        ..EngineConfig::default()
    };
    let mut db = Database::with_clock(config, Arc::new(ManualClock::new()));
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    let t02 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
    let t03 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
    let t13 = db
        .insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
    db.set_cost(t02, CostFn::linear(1000.0).unwrap()).unwrap();
    db.set_cost(t03, CostFn::linear(100.0).unwrap()).unwrap();
    db.set_cost(t13, CostFn::linear(10_000.0).unwrap()).unwrap();
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
    db
}

/// A fully comparable fingerprint of one query → apply → query cycle:
/// released values, exact confidence bits, withheld counts, proposal
/// increments, and the rendered audit log.
fn run_cycle(worker_threads: Option<usize>, tracing: bool) -> (Vec<String>, Vec<String>) {
    let mut db = paper_db(worker_threads);
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(QUERY, "investment");
    let mut fingerprint = Vec::new();
    for round in 0..2 {
        let resp = if tracing {
            db.trace_query(&user, &request).unwrap().0
        } else {
            db.query(&user, &request).unwrap()
        };
        for r in &resp.released {
            fingerprint.push(format!(
                "round={round} row={:?} conf_bits={:016x}",
                r.tuple,
                r.confidence.to_bits()
            ));
        }
        fingerprint.push(format!(
            "round={round} withheld={} threshold_bits={:016x}",
            resp.withheld,
            resp.threshold.to_bits()
        ));
        if let Some(p) = &resp.proposal {
            for inc in &p.increments {
                fingerprint.push(format!(
                    "round={round} inc tuple={:?} from_bits={:016x} to_bits={:016x} cost_bits={:016x}",
                    inc.tuple_id,
                    inc.from.to_bits(),
                    inc.to.to_bits(),
                    inc.cost.to_bits()
                ));
            }
            if round == 0 {
                db.apply(p).unwrap();
            }
        }
    }
    let audit = db.audit_log().iter().map(|e| e.to_string()).collect();
    (fingerprint, audit)
}

#[test]
fn tracing_and_thread_count_never_change_results() {
    let (baseline_fp, baseline_audit) = run_cycle(Some(1), false);
    assert!(!baseline_fp.is_empty());
    for (threads, tracing) in [
        (Some(1), true),
        (Some(4), false),
        (Some(4), true),
        (None, true),
    ] {
        let (fp, audit) = run_cycle(threads, tracing);
        assert_eq!(
            fp, baseline_fp,
            "results drifted at threads={threads:?} tracing={tracing}"
        );
        assert_eq!(
            audit, baseline_audit,
            "audit drifted at threads={threads:?} tracing={tracing}"
        );
    }
}

/// The Section 3.1 query traced once on a single worker lane — the only
/// configuration whose batch/lane events are deterministic, and the one
/// the goldens pin.
fn golden_trace() -> QueryTrace {
    let mut db = paper_db(Some(1));
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(QUERY, "investment");
    let (_, trace) = db.trace_query(&user, &request).unwrap();
    trace
}

/// Regenerate the golden exports:
/// `PCQE_BLESS=1 cargo test --test trace_determinism bless`.
#[test]
fn bless_trace_goldens_when_requested() {
    if std::env::var_os("PCQE_BLESS").is_none() {
        return;
    }
    let trace = golden_trace();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("trace_chrome.json"), to_chrome_json(&trace)).unwrap();
    std::fs::write(dir.join("trace_folded.txt"), to_folded(&trace)).unwrap();
}

#[test]
fn chrome_export_is_byte_stable_under_a_manual_clock() {
    assert_eq!(
        to_chrome_json(&golden_trace()),
        include_str!("golden/trace_chrome.json"),
        "Chrome trace export drifted from tests/golden/trace_chrome.json \
         (PCQE_BLESS=1 cargo test --test trace_determinism bless to regenerate)"
    );
}

#[test]
fn folded_export_is_byte_stable_under_a_manual_clock() {
    assert_eq!(
        to_folded(&golden_trace()),
        include_str!("golden/trace_folded.txt"),
        "Folded-stack export drifted from tests/golden/trace_folded.txt \
         (PCQE_BLESS=1 cargo test --test trace_determinism bless to regenerate)"
    );
}

#[test]
fn identical_runs_export_identically() {
    let a = golden_trace();
    let b = golden_trace();
    assert_eq!(to_chrome_json(&a), to_chrome_json(&b));
    assert_eq!(to_folded(&a), to_folded(&b));
}

#[test]
fn every_gated_tuple_has_exactly_one_decision_matching_the_audit_log() {
    let mut db = paper_db(Some(1));
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(QUERY, "investment");

    // Round 1: the paper's example suppresses its single result row
    // (confidence 0.058 < β = 0.06).
    let (resp, trace) = db.trace_query(&user, &request).unwrap();
    let decisions = trace.decisions();
    assert_eq!(decisions.len(), resp.released.len() + resp.withheld);
    assert_eq!(decisions.len(), 1);
    let d = decisions[0];
    assert!(!d.released);
    assert_eq!(d.beta.to_bits(), resp.threshold.to_bits());
    assert!(d.confidence < d.beta);
    assert!(d.lineage_size > 0);

    // Apply the improvement; round 2 releases the row. The decision's
    // verdict and confidence must agree with the response bit for bit.
    db.apply(&resp.proposal.unwrap()).unwrap();
    let (resp, trace) = db.trace_query(&user, &request).unwrap();
    let decisions = trace.decisions();
    assert_eq!(decisions.len(), resp.released.len() + resp.withheld);
    assert_eq!(resp.withheld, 0);
    assert_eq!(decisions.len(), resp.released.len());
    for (d, r) in decisions.iter().zip(&resp.released) {
        assert!(d.released);
        assert_eq!(d.confidence.to_bits(), r.confidence.to_bits());
        assert!(matches!(
            d.path,
            ConfidencePath::Exact | ConfidencePath::CacheHit
        ));
    }

    // The audit log's released/withheld totals equal the decision
    // verdicts across both rounds.
    let (mut released, mut withheld) = (0usize, 0usize);
    for e in db.audit_log() {
        if let pcqe::engine::AuditEntry::Query {
            released: r,
            withheld: w,
            ..
        } = e
        {
            released += r;
            withheld += w;
        }
    }
    assert_eq!(released, 1);
    assert_eq!(withheld, 1);
}

#[test]
fn trace_spans_cover_the_query_lifecycle() {
    let trace = golden_trace();
    let names: Vec<&str> = trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            pcqe::obs::trace::TraceEventKind::SpanBegin { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for expected in ["query", "plan", "execute", "score", "gate", "propose"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("op:")),
        "missing operator spans: {names:?}"
    );
    assert_eq!(trace.dropped, 0, "ring buffer must not overflow here");
}
