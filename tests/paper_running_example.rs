//! Cross-crate reproduction of the paper's Section 3.1 running example:
//! Tables 1–2 in storage, the Candidate query through the SQL front-end
//! and algebra, p38 = 0.058 from the lineage evaluator (Table 3), the
//! P1/P2 policies, and both increment alternatives the paper discusses.

use pcqe::algebra::execute;
use pcqe::core::heuristic::{self, HeuristicOptions};
use pcqe::core::problem::ProblemBuilder;
use pcqe::cost::CostFn;
use pcqe::lineage::{Evaluator, Lineage, VarId};
use pcqe::policy::{evaluate_results, ConfidencePolicy};
use pcqe::sql::parse_and_plan;
use pcqe::storage::{Catalog, Column, DataType, Schema, TupleId, Value};

fn build_tables() -> (Catalog, TupleId, TupleId, TupleId) {
    let mut catalog = Catalog::new();
    catalog
        .create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("proposal", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
    catalog
        .create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
    let t02 = catalog
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
    let t03 = catalog
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
    let t13 = catalog
        .insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
    (catalog, t02, t03, t13)
}

const QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

#[test]
fn candidate_query_scores_0_058() {
    let (catalog, ..) = build_tables();
    let plan = parse_and_plan(QUERY, &catalog).unwrap();
    let rs = execute(&plan, &catalog).unwrap();
    assert_eq!(rs.len(), 1);
    let probs = |v: VarId| catalog.confidence(TupleId(v.0));
    let scored = rs.score(&probs, &Evaluator::default()).unwrap();
    // Table 3: p38 = (p02 + p03 − p02·p03) · p13 = 0.58 · 0.1.
    assert!((scored[0].confidence - 0.058).abs() < 1e-12);
}

#[test]
fn policies_p1_and_p2_split_on_the_result() {
    let p1 = ConfidencePolicy::new("Secretary", "analysis", 0.05).unwrap();
    let p2 = ConfidencePolicy::new("Manager", "investment", 0.06).unwrap();
    let confidences = [0.058];
    assert_eq!(evaluate_results(&p1, &confidences).released, vec![0]);
    assert!(evaluate_results(&p2, &confidences).released.is_empty());
}

#[test]
fn both_increment_alternatives_reproduce_the_papers_arithmetic() {
    let evaluator = Evaluator::default();
    let lineage = Lineage::and(vec![
        Lineage::or(vec![Lineage::var(0), Lineage::var(1)]),
        Lineage::var(2),
    ]);
    // Alternative 1: raise p02 from 0.3 to 0.4 ⇒ p25 = 0.64, p38 = 0.064.
    let alt1 = |v: VarId| Some([0.4, 0.4, 0.1][v.0 as usize]);
    let p = evaluator.probability(&lineage, &alt1).unwrap();
    assert!((p - 0.064).abs() < 1e-12);
    // Alternative 2: raise p03 from 0.4 to 0.5 ⇒ p25 = 0.65, p38 = 0.065.
    let alt2 = |v: VarId| Some([0.3, 0.5, 0.1][v.0 as usize]);
    let p = evaluator.probability(&lineage, &alt2).unwrap();
    assert!((p - 0.065).abs() < 1e-12);
}

#[test]
fn exact_strategy_picks_the_cheap_alternative() {
    // Costs per the paper: +0.1 on tuple 02 costs 100, on tuple 03 costs
    // 10; raising the joined financials is costlier still.
    let mut b = ProblemBuilder::new(0.06, 0.1);
    b.base(2, 0.3, CostFn::linear(1000.0).unwrap());
    b.base(3, 0.4, CostFn::linear(100.0).unwrap());
    b.base(13, 0.1, CostFn::linear(10_000.0).unwrap());
    b.result_from_lineage(&Lineage::and(vec![
        Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
        Lineage::var(13),
    ]))
    .unwrap();
    let problem = b.require(1).build().unwrap();
    let out = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
    let incs = out.solution.increments(&problem);
    assert_eq!(incs.len(), 1);
    assert_eq!(incs[0].id, 3, "the paper chooses tuple 03");
    assert!((incs[0].to - 0.5).abs() < 1e-12);
    assert!((out.solution.cost - 10.0).abs() < 1e-9);
}

#[test]
fn lineage_from_sql_matches_the_papers_formula() {
    let (catalog, t02, t03, t13) = build_tables();
    let plan = parse_and_plan(QUERY, &catalog).unwrap();
    let rs = execute(&plan, &catalog).unwrap();
    let got = &rs.rows()[0].lineage;
    let expected = Lineage::and(vec![
        Lineage::or(vec![Lineage::var(t02.0), Lineage::var(t03.0)]),
        Lineage::var(t13.0),
    ]);
    // Same variables and same truth table (the produced DNF is a
    // logically equal form of the paper's factored formula).
    let vars = expected.vars();
    assert_eq!(got.vars(), vars);
    for bits in 0..(1u32 << vars.len()) {
        let assign = |v: VarId| {
            let slot = vars.iter().position(|&x| x == v).unwrap();
            bits & (1 << slot) != 0
        };
        assert_eq!(got.eval(&assign), expected.eval(&assign));
    }
}
