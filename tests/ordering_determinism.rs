//! Regression guard for result ordering.
//!
//! The executor's join build side, GROUP BY index, and DISTINCT/OR merge
//! used to hash-index tuples; iteration over those maps decided the order
//! of emitted rows, so two *identical* databases in the same process
//! could answer the same query in different row orders (each `HashMap`
//! draws a fresh `RandomState`). The indexes are ordered maps now
//! (PCQE-D001), and this suite pins the consequence: rebuilding the same
//! database and re-running the same query yields a bit-identical
//! transcript, row order included — with no ORDER BY to hide behind.

use pcqe::engine::{Database, EngineConfig, QueryRequest, QueryResponse, User};
use pcqe::lineage::Rng64;
use pcqe::storage::{Column, DataType, Schema, Value};

/// Build a fresh database with identically seeded contents each call.
fn populated() -> Database {
    populated_traced().0
}

/// Like [`populated`], also reporting the order in which each region
/// first appears in the insert stream.
fn populated_traced() -> (Database, Vec<String>) {
    let mut db = Database::new(EngineConfig::default());
    db.create_table(
        "orders",
        Schema::new(vec![
            Column::new("region", DataType::Text),
            Column::new("cust", DataType::Int),
            Column::new("amount", DataType::Int),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "regions",
        Schema::new(vec![Column::new("name", DataType::Text)]).unwrap(),
    )
    .unwrap();
    let regions = ["east", "north", "south", "west"];
    let mut first_seen: Vec<String> = Vec::new();
    let mut rng = Rng64::seed_from_u64(0xD001_0806);
    for _ in 0..400 {
        let region = regions[rng.below_u64(regions.len() as u64) as usize];
        if !first_seen.iter().any(|r| r == region) {
            first_seen.push(region.to_owned());
        }
        let cust = rng.below_u64(40) as i64;
        let amount = rng.below_u64(900) as i64;
        db.insert(
            "orders",
            vec![
                Value::Text(region.to_owned()),
                Value::Int(cust),
                Value::Int(amount),
            ],
            rng.range_f64(0.2, 0.99),
        )
        .unwrap();
    }
    for name in regions {
        db.insert(
            "regions",
            vec![Value::Text(name.to_owned())],
            rng.range_f64(0.6, 0.99),
        )
        .unwrap();
    }
    db.add_policy(pcqe::policy::ConfidencePolicy::new("analyst", "report", 0.4).unwrap());
    (db, first_seen)
}

/// Canonical bit-exact transcript of a response, order-sensitive.
fn transcript(resp: &QueryResponse) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "released {} withheld {}",
        resp.released.len(),
        resp.withheld
    );
    for r in &resp.released {
        let _ = writeln!(
            s,
            "{} | {} | {:016x}",
            r.tuple,
            r.lineage,
            r.confidence.to_bits()
        );
    }
    s
}

/// Run `sql` against `runs` independently built databases and demand one
/// transcript.
fn assert_stable_order(sql: &str, runs: usize) {
    let user = User::new("ana", "analyst");
    let request = QueryRequest::new(sql, "report");
    let mut db = populated();
    let reference = db.query(&user, &request).unwrap();
    assert!(
        !reference.released.is_empty(),
        "query `{sql}` released nothing; the ordering check would be vacuous"
    );
    for run in 1..runs {
        let mut db = populated();
        let got = db.query(&user, &request).unwrap();
        assert_eq!(
            transcript(&reference),
            transcript(&got),
            "run {run} of `{sql}` changed row order or content"
        );
    }
}

#[test]
fn group_by_output_order_is_stable_without_order_by() {
    // No ORDER BY: emission order is the aggregate index's iteration
    // order, exactly what the old HashMap made nondeterministic.
    assert_stable_order(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM orders GROUP BY region",
        4,
    );
}

#[test]
fn join_output_order_is_stable_without_order_by() {
    // The hash-join build side indexes `regions` by key; probe emission
    // follows the build index for each key group.
    assert_stable_order(
        "SELECT o.cust, o.amount FROM orders o JOIN regions r ON o.region = r.name \
         WHERE o.amount < 850",
        4,
    );
}

#[test]
fn distinct_merge_order_is_stable_without_order_by() {
    // DISTINCT folds duplicate rows into OR lineage through the merge
    // index; its iteration order decides the emitted row order.
    assert_stable_order("SELECT DISTINCT cust FROM orders", 4);
}

#[test]
fn group_keys_are_emitted_in_first_appearance_order() {
    // Structural pin for the aggregate path: groups are emitted in the
    // order their keys first appear in the input stream. The ordered
    // index makes the key→slot lookup deterministic; emission follows
    // slot creation order. A reintroduced hash index would keep this
    // property only by per-process accident.
    let user = User::new("ana", "analyst");
    let request = QueryRequest::new(
        "SELECT region, COUNT(*) AS n FROM orders GROUP BY region",
        "report",
    );
    let (mut db, first_seen) = populated_traced();
    let resp = db.query(&user, &request).unwrap();
    let keys: Vec<String> = resp
        .released
        .iter()
        .map(|r| {
            let s = r.tuple.to_string();
            // "(south, 101)" → "south"
            s.trim_start_matches('(')
                .split(',')
                .next()
                .unwrap_or("")
                .trim()
                .to_owned()
        })
        .collect();
    assert_eq!(
        keys, first_seen,
        "group emission order diverged from first appearance"
    );
}
