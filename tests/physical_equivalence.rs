//! Physical-planner acceptance suite.
//!
//! The contract of `algebra::physical` is that planning is a pure
//! performance decision: for every query in the grid below, over
//! randomised databases (NULL keys included), the lowered physical plan
//! must produce a **bit-identical** `ResultSet` — same rows, same order,
//! same lineage, same scored confidence bits — as the logical executor,
//! at any worker-thread count, with or without equality indexes.
//!
//! A golden snapshot of the `.plan` rendering (logical and physical plan
//! side by side) for the paper's Section 3.1 running example pins the
//! planner's choices; regenerate with
//! `PCQE_BLESS=1 cargo test --test physical_equivalence bless`.

mod common;

use common::for_each_case;
use pcqe::algebra::{
    execute_physical_with, execute_vectorized_with, execute_with, lower, optimize,
};
use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig};
use pcqe::lineage::{Evaluator, Rng64, VarId};
use pcqe::par::Parallelism;
use pcqe::policy::ConfidencePolicy;
use pcqe::sql::parse_and_plan;
use pcqe::storage::{Catalog, Column, DataType, Schema, TupleId, Value};

const CASES: u64 = 48;

/// The query-shape grid: scans, pushdowns, equi and non-equi joins,
/// cross joins, set operations, sorting, limits and aggregation.
const QUERIES: &[&str] = &[
    "SELECT * FROM orders",
    "SELECT * FROM orders WHERE amount > 2 AND cust = 1",
    "SELECT cust FROM orders WHERE cust = 2",
    "SELECT DISTINCT cust FROM orders WHERE amount > 1",
    "SELECT o.amount FROM orders o JOIN customers c ON o.cust = c.id WHERE o.amount > 2 AND c.id < 3",
    "SELECT o.amount FROM orders o JOIN customers c ON o.cust = c.id AND o.amount > c.id",
    "SELECT o.amount, c.score FROM orders o, customers c WHERE o.cust = c.id AND amount > 1",
    "SELECT o.cust FROM orders o, customers c WHERE o.amount > c.id",
    "SELECT o.cust FROM orders o, customers c",
    "SELECT cust FROM orders WHERE amount > 1 UNION SELECT id FROM customers WHERE id > 0",
    "SELECT cust FROM orders EXCEPT SELECT id FROM customers WHERE id > 1",
    "SELECT cust, amount FROM orders ORDER BY amount DESC LIMIT 2",
    "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING n > 0",
    "SELECT cust FROM orders WHERE amount + 1 > 2 AND NOT (cust = 9)",
];

fn build_catalog(
    orders: &[(Option<i64>, i64, f64)],
    customers: &[(i64, f64, f64)],
    indexed: bool,
) -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "orders",
        Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("amount", DataType::Int),
        ])
        .unwrap(),
    )
    .unwrap();
    c.create_table(
        "customers",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    for &(cust, amount, conf) in orders {
        let key = cust.map(Value::Int).unwrap_or(Value::Null);
        c.insert("orders", vec![key, Value::Int(amount)], conf)
            .unwrap();
    }
    for &(id, score, conf) in customers {
        c.insert("customers", vec![Value::Int(id), Value::Real(score)], conf)
            .unwrap();
    }
    if indexed {
        c.create_index("orders", "cust").unwrap();
        c.create_index("customers", "id").unwrap();
    }
    c
}

fn random_orders(rng: &mut Rng64) -> Vec<(Option<i64>, i64, f64)> {
    let n = rng.below_usize(8);
    (0..n)
        .map(|_| {
            let key = if rng.chance(0.15) {
                None // NULL keys must behave identically on both paths.
            } else {
                Some(rng.below_u64(4) as i64)
            };
            (key, rng.below_u64(6) as i64, rng.range_f64(0.05, 0.95))
        })
        .collect()
}

fn random_customers(rng: &mut Rng64) -> Vec<(i64, f64, f64)> {
    let n = rng.below_usize(5);
    (0..n)
        .map(|_| {
            (
                rng.below_u64(4) as i64,
                rng.range_f64(-2.0, 2.0),
                rng.range_f64(0.05, 0.95),
            )
        })
        .collect()
}

/// Execute one query logically, physically (tuple-at-a-time), and on the
/// vectorized morsel-driven path under `par`; assert all three result
/// sets are bit-identical (rows, order, lineage, score bits).
fn assert_bit_identical(sql: &str, catalog: &Catalog, par: &Parallelism, label: &str) {
    let plan = parse_and_plan(sql, catalog).expect("plans");
    let logical = optimize(&plan, catalog).expect("optimises");
    let physical = lower(&logical, catalog).expect("lowers");
    let a = execute_with(&logical, catalog, par).expect("logical");
    for (b, engine) in [
        (
            execute_physical_with(&physical, catalog, par).expect("physical"),
            "tuple",
        ),
        (
            execute_vectorized_with(&physical, catalog, par).expect("vectorized"),
            "vectorized",
        ),
    ] {
        assert_eq!(
            a.schema(),
            b.schema(),
            "schema diverged for {sql} ({label}, {engine})"
        );
        assert_eq!(
            a.rows().len(),
            b.rows().len(),
            "row count diverged for {sql} ({label}, {engine})\nphysical plan:\n{physical}"
        );
        for (i, (x, y)) in a.rows().iter().zip(b.rows()).enumerate() {
            assert_eq!(
                x, y,
                "row {i} diverged for {sql} ({label}, {engine})\nphysical plan:\n{physical}"
            );
        }
        // Confidence scoring over identical lineage must agree bit for bit.
        let probs = |v: VarId| catalog.confidence(TupleId(v.0));
        let ev = Evaluator::default();
        let sa = a.score(&probs, &ev).expect("scores");
        let sb = b.score(&probs, &ev).expect("scores");
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(
                x.confidence.to_bits(),
                y.confidence.to_bits(),
                "confidence bits diverged for {sql} ({label}, {engine})"
            );
        }
    }
}

#[test]
fn physical_execution_is_bit_identical_to_logical() {
    let sequential = Parallelism::sequential();
    let four = Parallelism {
        worker_threads: Some(4),
        parallel_threshold: 1,
    };
    let host = Parallelism {
        worker_threads: None,
        parallel_threshold: 1,
    };
    for_each_case(CASES, 0x0097_0001, |rng| {
        let orders = random_orders(rng);
        let customers = random_customers(rng);
        for indexed in [false, true] {
            let catalog = build_catalog(&orders, &customers, indexed);
            for sql in QUERIES {
                assert_bit_identical(sql, &catalog, &sequential, "1 thread");
                assert_bit_identical(sql, &catalog, &four, "4 threads");
                assert_bit_identical(sql, &catalog, &host, "host threads");
            }
        }
    });
}

#[test]
fn index_scans_are_planned_and_bit_identical() {
    // A database big enough that the planner prefers the index, with
    // duplicate keys so postings order matters.
    let orders: Vec<(Option<i64>, i64, f64)> = (0..40)
        .map(|i| (Some(i % 4), i % 6, 0.05 + 0.9 * ((i % 9) as f64) / 9.0))
        .collect();
    let catalog = build_catalog(&orders, &[(1, 0.5, 0.9)], true);
    let sql = "SELECT * FROM orders WHERE cust = 2 AND amount > 1";
    let plan = parse_and_plan(sql, &catalog).unwrap();
    let logical = optimize(&plan, &catalog).unwrap();
    let physical = lower(&logical, &catalog).unwrap();
    assert!(
        physical.to_string().contains("IndexScan orders (cust = 2)"),
        "{physical}"
    );
    assert_bit_identical(sql, &catalog, &Parallelism::sequential(), "indexed");
}

// ---------------------------------------------------------------------------
// Golden EXPLAIN snapshot of the paper's running example.

const PAPER_QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// The Section 3.1 database (same fixture as `tests/obs_determinism.rs`).
fn paper_db() -> Database {
    let mut db = Database::new(EngineConfig::default().sequential());
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    let t02 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
    let t03 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
    let t13 = db
        .insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
    db.set_cost(t02, CostFn::linear(1000.0).unwrap()).unwrap();
    db.set_cost(t03, CostFn::linear(100.0).unwrap()).unwrap();
    db.set_cost(t13, CostFn::linear(10_000.0).unwrap()).unwrap();
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
    db
}

/// Regenerate the golden EXPLAIN snapshot:
/// `PCQE_BLESS=1 cargo test --test physical_equivalence bless`.
#[test]
fn bless_golden_explain_when_requested() {
    if std::env::var_os("PCQE_BLESS").is_none() {
        return;
    }
    let text = paper_db().explain_physical(PAPER_QUERY).unwrap();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("explain_paper.txt"), text).unwrap();
}

#[test]
fn paper_example_explain_matches_golden_snapshot() {
    let text = paper_db().explain_physical(PAPER_QUERY).unwrap();
    assert_eq!(
        text,
        include_str!("golden/explain_paper.txt"),
        "EXPLAIN drifted from tests/golden/explain_paper.txt \
         (regenerate with PCQE_BLESS=1 if the change is intended)"
    );
}
