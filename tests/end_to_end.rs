//! End-to-end scenarios across the whole stack: role hierarchies, partial
//! fractions, provenance-backed inserts, union/except queries, and the
//! improvement loop under each solver.

#![allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract

use pcqe::core::dnc::DncOptions;
use pcqe::core::greedy::GreedyOptions;
use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, NoProposal, QueryRequest, SolverChoice, User};
use pcqe::policy::{ConfidencePolicy, Role};
use pcqe::provenance::{CollectionMethod, ProvenanceRecord, Source};
use pcqe::storage::{Column, DataType, Schema, Value};

fn orders_db(config: EngineConfig) -> Database {
    let mut db = Database::new(config);
    db.create_table(
        "Orders",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("region", DataType::Text),
            Column::new("amount", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    for (i, (region, amount, conf)) in [
        ("west", 100.0, 0.9),
        ("west", 200.0, 0.3),
        ("west", 300.0, 0.25),
        ("east", 400.0, 0.35),
        ("east", 500.0, 0.9),
        ("east", 600.0, 0.2),
    ]
    .iter()
    .enumerate()
    {
        let id = db
            .insert(
                "Orders",
                vec![
                    Value::Int(i as i64),
                    Value::text(*region),
                    Value::Real(*amount),
                ],
                *conf,
            )
            .unwrap();
        db.set_cost(id, CostFn::linear(10.0 * (i + 1) as f64).unwrap())
            .unwrap();
    }
    db.add_policy(ConfidencePolicy::new("clerk", "reporting", 0.5).unwrap());
    db
}

#[test]
fn fraction_request_yields_minimal_proposal() {
    let mut db = orders_db(EngineConfig::default());
    let clerk = User::new("carl", "clerk");
    // 2 of 6 rows pass already; ask for two thirds → 2 more needed.
    let request =
        QueryRequest::new("SELECT id, amount FROM Orders", "reporting").expecting(2.0 / 3.0);
    let resp = db.query(&clerk, &request).unwrap();
    assert_eq!(resp.released.len(), 2);
    let proposal = resp.proposal.clone().expect("improvable");
    assert_eq!(proposal.requested, 4);
    assert_eq!(proposal.projected_released, 4);
    db.apply(&proposal).unwrap();
    let resp = db.query(&clerk, &request).unwrap();
    assert!(resp.released.len() >= 4);
    assert!(matches!(resp.no_proposal, Some(NoProposal::NotNeeded)));
}

#[test]
fn all_solver_choices_reach_the_quota() {
    for solver in [
        SolverChoice::Auto,
        SolverChoice::Greedy(GreedyOptions::default()),
        SolverChoice::Greedy(GreedyOptions::incremental()),
        SolverChoice::Dnc(DncOptions::default()),
        SolverChoice::Heuristic(pcqe::core::heuristic::HeuristicOptions::all()),
    ] {
        let mut db = orders_db(EngineConfig {
            solver,
            ..EngineConfig::default()
        });
        let clerk = User::new("carl", "clerk");
        let request = QueryRequest::new("SELECT id FROM Orders", "reporting");
        let resp = db.query_with_improvement(&clerk, &request).unwrap();
        assert_eq!(resp.released.len(), 6, "full release after improvement");
    }
}

#[test]
fn optimizer_toggle_gives_identical_results() {
    let queries = [
        "SELECT id, amount FROM Orders WHERE region = 'west' AND amount > 150.0",
        "SELECT region, COUNT(*) AS n FROM Orders GROUP BY region ORDER BY region",
        "SELECT o.id FROM Orders o JOIN Orders p ON o.region = p.region WHERE o.amount < p.amount",
    ];
    let mut with = orders_db(EngineConfig::default());
    let mut without = orders_db(EngineConfig {
        optimize_plans: false,
        ..EngineConfig::default()
    });
    with.add_policy(ConfidencePolicy::new("clerk", "audit", 0.0).unwrap());
    without.add_policy(ConfidencePolicy::new("clerk", "audit", 0.0).unwrap());
    let clerk = User::new("carl", "clerk");
    for sql in queries {
        let a = with
            .query(&clerk, &QueryRequest::new(sql, "audit"))
            .unwrap();
        let b = without
            .query(&clerk, &QueryRequest::new(sql, "audit"))
            .unwrap();
        let mut ra: Vec<String> = a
            .released
            .iter()
            .map(|r| format!("{} {:.9}", r.tuple, r.confidence))
            .collect();
        let mut rb: Vec<String> = b
            .released
            .iter()
            .map(|r| format!("{} {:.9}", r.tuple, r.confidence))
            .collect();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "{sql}");
        // And the optimised plan visibly differs for the filter query.
        if sql.contains("region = 'west'") {
            assert!(with.explain(sql).unwrap().contains("Select"));
        }
    }
}

#[test]
fn purpose_specialisation_applies_policies() {
    let mut db = orders_db(EngineConfig::default());
    db.add_purpose_specialisation(
        &pcqe::policy::Purpose::new("quarterly-close"),
        &pcqe::policy::Purpose::new("reporting"),
    )
    .unwrap();
    let resp = db
        .query(
            &User::new("carl", "clerk"),
            &QueryRequest::new("SELECT id FROM Orders", "quarterly-close"),
        )
        .unwrap();
    assert_eq!(resp.threshold, 0.5, "specialised purpose found the policy");
}

#[test]
fn role_hierarchy_applies_policies_to_seniors() {
    let mut db = orders_db(EngineConfig::default());
    db.add_role_inheritance(&Role::new("supervisor"), &Role::new("clerk"))
        .unwrap();
    let boss = User::new("beth", "supervisor");
    let resp = db
        .query(
            &boss,
            &QueryRequest::new("SELECT id FROM Orders", "reporting"),
        )
        .unwrap();
    assert_eq!(resp.threshold, 0.5, "inherited the clerk policy");
}

#[test]
fn provenance_assessed_rows_flow_through_policies() {
    let mut db = Database::new(EngineConfig::default());
    db.create_table(
        "Readings",
        Schema::new(vec![Column::new("v", DataType::Int)]).unwrap(),
    )
    .unwrap();
    let strong = Source::new("calibrated-sensor", 0.95).unwrap();
    let weak = Source::new("crowd-report", 0.3).unwrap();
    db.insert_assessed(
        "Readings",
        vec![Value::Int(1)],
        &[ProvenanceRecord::new(strong, CollectionMethod::Automated)],
    )
    .unwrap();
    db.insert_assessed(
        "Readings",
        vec![Value::Int(2)],
        &[ProvenanceRecord::new(
            weak,
            CollectionMethod::ThirdPartyFeed,
        )],
    )
    .unwrap();
    db.add_policy(ConfidencePolicy::new("ops", "alerting", 0.5).unwrap());
    let resp = db
        .query(
            &User::new("olga", "ops"),
            &QueryRequest::new("SELECT v FROM Readings", "alerting").expecting(0.5),
        )
        .unwrap();
    assert_eq!(resp.released.len(), 1);
    assert_eq!(resp.released[0].tuple.get(0), Some(&Value::Int(1)));
}

#[test]
fn union_queries_merge_lineage_across_tables() {
    let mut db = Database::new(EngineConfig::default());
    for t in ["A", "B"] {
        db.create_table(
            t,
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
    }
    db.insert("A", vec![Value::Int(7)], 0.4).unwrap();
    db.insert("B", vec![Value::Int(7)], 0.4).unwrap();
    db.add_policy(ConfidencePolicy::new("r", "p", 0.5).unwrap());
    // Individually each source is below β, but the OR of both reaches
    // 1 − 0.6² = 0.64 > 0.5.
    let resp = db
        .query(
            &User::new("u", "r"),
            &QueryRequest::new("SELECT x FROM A UNION SELECT x FROM B", "p"),
        )
        .unwrap();
    assert_eq!(resp.released.len(), 1);
    assert!((resp.released[0].confidence - 0.64).abs() < 1e-12);
}

#[test]
fn improvement_is_idempotent_once_satisfied() {
    let mut db = orders_db(EngineConfig::default());
    let clerk = User::new("carl", "clerk");
    let request = QueryRequest::new("SELECT id FROM Orders", "reporting");
    let after = db.query_with_improvement(&clerk, &request).unwrap();
    assert_eq!(after.released.len(), 6);
    // A second round finds nothing to do.
    let again = db.query(&clerk, &request).unwrap();
    assert!(again.proposal.is_none());
    assert!(matches!(again.no_proposal, Some(NoProposal::NotNeeded)));
}

#[test]
fn proposal_costs_are_consistent_with_cost_functions() {
    let mut db = orders_db(EngineConfig::default());
    let clerk = User::new("carl", "clerk");
    let resp = db
        .query(
            &clerk,
            &QueryRequest::new("SELECT id FROM Orders", "reporting"),
        )
        .unwrap();
    let proposal = resp.proposal.unwrap();
    let recomputed: f64 = proposal.increments.iter().map(|i| i.cost).sum();
    assert!((recomputed - proposal.cost).abs() < 1e-6);
    for inc in &proposal.increments {
        assert!(inc.to > inc.from);
        assert!(inc.to <= 1.0 + 1e-12);
    }
}

#[test]
fn where_clause_arithmetic_and_strings() {
    let mut db = orders_db(EngineConfig::default());
    db.add_policy(ConfidencePolicy::new("clerk", "audit", 0.0).unwrap());
    let resp = db
        .query(
            &User::new("carl", "clerk"),
            &QueryRequest::new(
                "SELECT id FROM Orders WHERE amount / 100.0 >= 4 AND region = 'east'",
                "audit",
            ),
        )
        .unwrap();
    assert_eq!(resp.released.len(), 3);
}
