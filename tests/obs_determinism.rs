//! Observability acceptance suite.
//!
//! Three contracts from the design of `pcqe-obs`:
//!
//! 1. **Result neutrality** — query answers, confidences (bit-for-bit),
//!    proposals and audit entries are identical with metric recording on
//!    or off, at any worker-thread count.
//! 2. **Byte-stable exports** — the JSON and Prometheus renderings of a
//!    snapshot taken under a [`ManualClock`] match golden files exactly.
//! 3. **Honest profiles** — `EXPLAIN ANALYZE` row counts equal the
//!    operators' actual output sizes on the paper's running example.

use pcqe::core::clock::ManualClock;
use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::obs::{export, Recorder};
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// The paper's Section 3.1 database under an explicit parallelism and
/// recording configuration.
fn paper_db(worker_threads: Option<usize>, record_metrics: bool) -> Database {
    paper_db_config(EngineConfig {
        worker_threads,
        parallel_threshold: 1,
        record_metrics,
        ..EngineConfig::default()
    })
}

/// [`paper_db`] under an arbitrary engine configuration.
fn paper_db_config(config: EngineConfig) -> Database {
    let mut db = Database::new(config);
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    let t02 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
    let t03 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
    let t13 = db
        .insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
    db.set_cost(t02, CostFn::linear(1000.0).unwrap()).unwrap();
    db.set_cost(t03, CostFn::linear(100.0).unwrap()).unwrap();
    db.set_cost(t13, CostFn::linear(10_000.0).unwrap()).unwrap();
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
    db
}

/// A fully comparable trace of one query → apply → query cycle:
/// released values, exact confidence bits, withheld counts, proposal
/// increments, and the rendered audit log.
#[allow(clippy::type_complexity)]
fn run_cycle(worker_threads: Option<usize>, record_metrics: bool) -> (Vec<String>, Vec<String>) {
    let mut db = paper_db(worker_threads, record_metrics);
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(QUERY, "investment");
    let mut trace = Vec::new();
    for round in 0..2 {
        let resp = db.query(&user, &request).unwrap();
        for r in &resp.released {
            trace.push(format!(
                "round={round} row={:?} conf_bits={:016x}",
                r.tuple,
                r.confidence.to_bits()
            ));
        }
        trace.push(format!(
            "round={round} withheld={} threshold_bits={:016x}",
            resp.withheld,
            resp.threshold.to_bits()
        ));
        if let Some(p) = &resp.proposal {
            for inc in &p.increments {
                trace.push(format!(
                    "round={round} inc tuple={:?} from_bits={:016x} to_bits={:016x} cost_bits={:016x}",
                    inc.tuple_id,
                    inc.from.to_bits(),
                    inc.to.to_bits(),
                    inc.cost.to_bits()
                ));
            }
            if round == 0 {
                db.apply(p).unwrap();
            }
        }
    }
    let audit = db.audit_log().iter().map(|e| e.to_string()).collect();
    (trace, audit)
}

#[test]
fn recording_and_thread_count_never_change_results() {
    let (baseline_trace, baseline_audit) = run_cycle(Some(1), true);
    assert!(!baseline_trace.is_empty());
    for (threads, recording) in [
        (Some(1), false),
        (Some(4), true),
        (Some(4), false),
        (None, true),
        (None, false),
    ] {
        let (trace, audit) = run_cycle(threads, recording);
        assert_eq!(
            trace, baseline_trace,
            "results drifted at threads={threads:?} recording={recording}"
        );
        assert_eq!(
            audit, baseline_audit,
            "audit drifted at threads={threads:?} recording={recording}"
        );
    }
}

#[test]
fn metrics_mirror_audit_counts_at_any_thread_count() {
    for threads in [Some(1), Some(4)] {
        let mut db = paper_db(threads, true);
        let user = User::new("mark", "Manager");
        let request = QueryRequest::new(QUERY, "investment");
        let resp = db.query(&user, &request).unwrap();
        db.apply(&resp.proposal.unwrap()).unwrap();
        let after = db.query(&user, &request).unwrap();
        assert!((after.released_fraction() - 1.0).abs() < 1e-12);
        let (mut released, mut withheld) = (0u64, 0u64);
        for e in db.audit_log() {
            if let pcqe::engine::AuditEntry::Query {
                released: r,
                withheld: w,
                ..
            } = e
            {
                released += *r as u64;
                withheld += *w as u64;
            }
        }
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("policy.released"), released);
        assert_eq!(snap.counter("policy.withheld"), withheld);
        assert_eq!(snap.counter("query.total"), 2);
        assert_eq!(snap.counter("improvement.applied"), 1);
    }
}

/// Script a recorder against a manual clock: every value below is fully
/// determined, so the exported documents must match the goldens byte for
/// byte, forever.
fn scripted_recorder() -> Recorder {
    let clock = Arc::new(ManualClock::new());
    let recorder = Recorder::with_clock(clock.clone());
    recorder.counter_add("policy.released", 3);
    recorder.counter_add("policy.withheld", 1);
    recorder.counter_add("solver.greedy.iterations", 17);
    recorder.gauge_set("par.workers", 4.0);
    recorder.gauge_set("estimator.slope", 0.25);
    recorder.histogram_record("solver.greedy.elapsed", 0.002);
    recorder.histogram_record("solver.greedy.elapsed", 0.3);
    recorder.histogram_record("improvement.cost", 10.0);
    {
        let span = recorder.span("query");
        clock.advance(Duration::from_micros(45));
        {
            let child = span.child("execute");
            clock.advance(Duration::from_micros(5));
            drop(child);
        }
    }
    recorder
}

/// Regenerate the golden exports:
/// `PCQE_BLESS=1 cargo test --test obs_determinism bless`.
#[test]
fn bless_goldens_when_requested() {
    if std::env::var_os("PCQE_BLESS").is_none() {
        return;
    }
    let snapshot = scripted_recorder().snapshot();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("metrics.json"), export::to_json(&snapshot)).unwrap();
    std::fs::write(dir.join("metrics.prom"), export::to_prometheus(&snapshot)).unwrap();
}

#[test]
fn json_export_is_byte_stable_under_a_manual_clock() {
    let snapshot = scripted_recorder().snapshot();
    let golden = include_str!("golden/metrics.json");
    assert_eq!(
        export::to_json(&snapshot),
        golden,
        "JSON export drifted from tests/golden/metrics.json"
    );
    // The exporter round-trips through the crate's own parser.
    let doc = pcqe::obs::json::parse(golden).unwrap();
    let obj = doc.as_object().unwrap();
    for key in ["counters", "gauges", "histograms", "spans"] {
        assert!(obj.get(key).is_some(), "missing {key}");
    }
}

#[test]
fn prometheus_export_is_byte_stable_under_a_manual_clock() {
    let snapshot = scripted_recorder().snapshot();
    assert_eq!(
        export::to_prometheus(&snapshot),
        include_str!("golden/metrics.prom"),
        "Prometheus export drifted from tests/golden/metrics.prom"
    );
}

#[test]
fn identical_runs_export_identically() {
    let a = scripted_recorder().snapshot();
    let b = scripted_recorder().snapshot();
    assert_eq!(export::to_json(&a), export::to_json(&b));
    assert_eq!(export::to_prometheus(&a), export::to_prometheus(&b));
}

#[test]
fn explain_analyze_counts_match_actual_operator_sizes() {
    let db = paper_db(Some(1), true);
    let text = db.explain_analyze(QUERY).unwrap();
    // Every plan line is annotated.
    for line in text.lines() {
        assert!(line.contains("(rows_in="), "unannotated line: {line}");
    }
    // The running example's true operator sizes under the physical
    // planner: the funding filter is pushed into the Proposal scan (both
    // rows pass), the tiny join stays nested-loop and pairs them with the
    // one CompanyInfo row, and DISTINCT merges the two derivations into
    // one result.
    assert!(
        text.contains("TableScan Proposal [filter: (#2 < 1000000)] (rows_in=2 rows_out=2"),
        "{text}"
    );
    assert!(
        text.contains("TableScan CompanyInfo (rows_in=1 rows_out=1"),
        "{text}"
    );
    assert!(text.contains("NestedLoopJoin"), "{text}");
    assert!(text.contains("(rows_in=3 rows_out=2"), "{text}");
    assert!(
        text.contains("Project DISTINCT [company, income] (rows_in=2 rows_out=1"),
        "{text}"
    );
}

#[test]
fn logical_explain_analyze_keeps_logical_shape_and_sizes() {
    // With physical planning off, EXPLAIN ANALYZE annotates the logical
    // plan and must keep exactly the shape of plain EXPLAIN.
    let db = paper_db_config(EngineConfig {
        worker_threads: Some(1),
        parallel_threshold: 1,
        record_metrics: true,
        physical_planning: false,
        ..EngineConfig::default()
    });
    let text = db.explain_analyze(QUERY).unwrap();
    for line in text.lines() {
        assert!(line.contains("(rows_in="), "unannotated line: {line}");
    }
    assert!(
        text.contains("Scan Proposal (rows_in=2 rows_out=2"),
        "{text}"
    );
    assert!(
        text.contains("Scan CompanyInfo (rows_in=1 rows_out=1"),
        "{text}"
    );
    assert!(text.contains("Select (rows_in=2 rows_out=2"), "{text}");
    assert!(text.contains("Join (rows_in=3 rows_out=2"), "{text}");
    assert!(
        text.contains("Project DISTINCT [company, income] (rows_in=2 rows_out=1"),
        "{text}"
    );
    // The annotated plan has the same shape as EXPLAIN.
    let plain = db.explain(QUERY).unwrap();
    assert_eq!(plain.lines().count(), text.lines().count());
    for (p, a) in plain.lines().zip(text.lines()) {
        assert!(a.starts_with(p), "line mismatch: {p:?} vs {a:?}");
    }
}
