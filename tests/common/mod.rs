//! Shared support for the seeded property suites.
//!
//! The workspace builds fully offline, so the former `proptest` suites
//! are driven by the in-repo [`Rng64`] generator instead: each test runs
//! a fixed number of cases, each case derived from a per-case seed, so a
//! failure prints the exact seed needed to replay it in isolation.

#![allow(dead_code)]

use pcqe::lineage::{Lineage, Rng64};
use std::panic::AssertUnwindSafe;

/// Run `f` once per case with an independently seeded generator.
///
/// Each case's RNG is seeded from `base_seed` mixed with the case index,
/// so cases are independent and any failure is replayable: the panic
/// message names the case index and exact seed.
pub fn for_each_case(cases: u64, base_seed: u64, mut f: impl FnMut(&mut Rng64)) {
    for case in 0..cases {
        let seed = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng64::seed_from_u64(seed);
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("seeded suite failed at case {case} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A random lineage formula over variables `0..max_vars`, negation and
/// constants included (the shape space of the old proptest strategy).
pub fn random_lineage(rng: &mut Rng64, max_vars: u64, depth: u32) -> Lineage {
    // At depth 0 — or one time in four — emit a leaf.
    if depth == 0 || rng.below_u64(4) == 0 {
        if rng.chance(0.75) {
            Lineage::var(rng.below_u64(max_vars))
        } else {
            Lineage::Const(rng.chance(0.5))
        }
    } else {
        match rng.below_u64(3) {
            0 => Lineage::not(random_lineage(rng, max_vars, depth - 1)),
            1 => Lineage::and(
                (0..rng.range_usize(1, 4))
                    .map(|_| random_lineage(rng, max_vars, depth - 1))
                    .collect(),
            ),
            _ => Lineage::or(
                (0..rng.range_usize(1, 4))
                    .map(|_| random_lineage(rng, max_vars, depth - 1))
                    .collect(),
            ),
        }
    }
}

/// A random negation-free lineage over variables `0..max_vars` (the
/// monotone shape space assumed by the solvers' pruning rules).
pub fn random_positive_lineage(rng: &mut Rng64, max_vars: u64, depth: u32) -> Lineage {
    if depth == 0 || rng.below_u64(4) == 0 {
        Lineage::var(rng.below_u64(max_vars))
    } else if rng.chance(0.5) {
        Lineage::and(
            (0..rng.range_usize(1, 4))
                .map(|_| random_positive_lineage(rng, max_vars, depth - 1))
                .collect(),
        )
    } else {
        Lineage::or(
            (0..rng.range_usize(1, 4))
                .map(|_| random_positive_lineage(rng, max_vars, depth - 1))
                .collect(),
        )
    }
}

/// `n` uniform probabilities in `[0, 1)`.
pub fn random_probs(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.next_f64()).collect()
}

/// A random string of length `0..=max_len` drawn from `alphabet`.
pub fn random_string(rng: &mut Rng64, alphabet: &[char], max_len: usize) -> String {
    let len = rng.below_usize(max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.below_usize(alphabet.len())])
        .collect()
}

/// A random Unicode scalar value (any `char`, surrogates excluded).
pub fn random_char(rng: &mut Rng64) -> char {
    loop {
        if let Some(c) = char::from_u32(rng.below_u64(0x11_0000) as u32) {
            return c;
        }
    }
}
