//! Seeded property tests over the strategy-finding algorithms: on random
//! feasible instances, every solver's answer validates, the exact search
//! is never beaten, phase 2 never hurts, and pruning never changes the
//! optimum.

mod common;

use common::for_each_case;
use pcqe::core::dnc::{self, DncOptions};
use pcqe::core::greedy::{self, GreedyOptions};
use pcqe::core::heuristic::{self, HeuristicOptions};
use pcqe::core::problem::{ProblemBuilder, ProblemInstance};
use pcqe::cost::CostFn;
use pcqe::lineage::{Lineage, Rng64};

const CASES: u64 = 48;

/// OR-of-AND grouping over `vars`: `cuts[i]` starts a new AND-group
/// before `vars[i]` (`cuts[0]` is ignored).
fn group_or_of_and(vars: &[u64], cuts: &[bool]) -> Lineage {
    let mut groups: Vec<Vec<Lineage>> = vec![vec![]];
    for (i, v) in vars.iter().enumerate() {
        if i > 0 && cuts[i] {
            groups.push(vec![]);
        }
        groups.last_mut().expect("non-empty").push(Lineage::var(*v));
    }
    Lineage::or(groups.into_iter().map(Lineage::and).collect())
}

/// A random negation-free lineage over a subset of `n_bases` variables:
/// 2–4 distinct variables in a random OR-of-AND grouping.
fn random_lineage(rng: &mut Rng64, n_bases: u64) -> Lineage {
    let mut all: Vec<u64> = (0..n_bases).collect();
    rng.shuffle(&mut all);
    let k = rng.range_usize(2, (n_bases.min(4) as usize) + 1);
    let vars = &all[..k];
    let cuts: Vec<bool> = (0..k).map(|_| rng.chance(0.5)).collect();
    group_or_of_and(vars, &cuts)
}

/// A random feasible problem: 3–6 bases, 2–4 results, β = 0.5, δ = 0.1.
fn random_problem(rng: &mut Rng64) -> ProblemInstance {
    let n_bases = 3 + rng.below_u64(4);
    let mut b = ProblemBuilder::new(0.5, 0.1);
    for i in 0..n_bases {
        b.base(
            i,
            rng.range_f64(0.05, 0.3),
            CostFn::linear(rng.range_f64(1.0, 100.0)).expect("positive rate"),
        );
    }
    let n_results = rng.range_usize(2, 5);
    for _ in 0..n_results {
        b.result_from_lineage(&random_lineage(rng, n_bases))
            .expect("vars are registered");
    }
    // Negation-free lineage reaches 1.0 at max confidence, so any
    // quota ≤ n_results is feasible.
    let required = rng.range_usize(1, 3);
    b.require(required.min(n_results)).build().expect("valid")
}

#[test]
fn all_solvers_produce_valid_solutions() {
    for_each_case(CASES, 0x501E_0001, |rng| {
        let problem = random_problem(rng);
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        g.solution.validate(&problem).unwrap();
        let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
        d.solution.validate(&problem).unwrap();
        let h = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        h.solution.validate(&problem).unwrap();
    });
}

#[test]
fn exact_search_is_never_beaten() {
    for_each_case(CASES, 0x501E_0002, |rng| {
        let problem = random_problem(rng);
        let h = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
        assert!(
            h.solution.cost <= g.solution.cost + 1e-6,
            "heuristic {} vs greedy {}",
            h.solution.cost,
            g.solution.cost
        );
        assert!(
            h.solution.cost <= d.solution.cost + 1e-6,
            "heuristic {} vs dnc {}",
            h.solution.cost,
            d.solution.cost
        );
    });
}

#[test]
fn pruning_preserves_the_optimum() {
    for_each_case(CASES, 0x501E_0003, |rng| {
        let problem = random_problem(rng);
        check_pruning(&problem);
    });
}

fn check_pruning(problem: &ProblemInstance) {
    let naive = heuristic::solve(problem, &HeuristicOptions::naive()).unwrap();
    for config in [
        HeuristicOptions::only(1),
        HeuristicOptions::only(2),
        HeuristicOptions::only(3),
        HeuristicOptions::only(4),
        HeuristicOptions::all(),
    ] {
        let out = heuristic::solve(problem, &config).unwrap();
        assert!(
            (out.solution.cost - naive.solution.cost).abs() < 1e-6,
            "config {:?}: {} vs naive {}",
            config,
            out.solution.cost,
            naive.solution.cost
        );
    }
    // H2–H4 only cut branches from the *same* tree, so their node
    // counts are monotone. H1 reorders the variables; its node count
    // can go either way on any one instance (it helps on average, as
    // Figure 11(a) shows).
    for config in [
        HeuristicOptions::only(2),
        HeuristicOptions::only(3),
        HeuristicOptions::only(4),
    ] {
        let out = heuristic::solve(problem, &config).unwrap();
        assert!(
            out.stats.nodes <= naive.stats.nodes,
            "config {:?}: {} nodes vs naive {}",
            config,
            out.stats.nodes,
            naive.stats.nodes
        );
    }
}

#[test]
fn two_phase_never_costs_more() {
    for_each_case(CASES, 0x501E_0004, |rng| {
        let problem = random_problem(rng);
        let one = greedy::solve(&problem, &GreedyOptions::one_phase()).unwrap();
        let two = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        assert!(two.solution.cost <= one.solution.cost + 1e-6);
    });
}

#[test]
fn greedy_seed_never_worsens_the_search() {
    for_each_case(CASES, 0x501E_0005, |rng| {
        let problem = random_problem(rng);
        let seed = greedy::solve(&problem, &GreedyOptions::default())
            .unwrap()
            .solution;
        let plain = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        let seeded = heuristic::solve(&problem, &HeuristicOptions::all().with_seed(seed)).unwrap();
        assert!((seeded.solution.cost - plain.solution.cost).abs() < 1e-6);
        assert!(seeded.stats.nodes <= plain.stats.nodes);
    });
}

#[test]
fn solutions_only_raise_confidences() {
    for_each_case(CASES, 0x501E_0006, |rng| {
        let problem = random_problem(rng);
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        for (level, base) in g.solution.levels.iter().zip(&problem.bases) {
            assert!(*level >= base.initial - 1e-12);
            assert!(*level <= base.max + 1e-12);
        }
        // Increments must sum to the declared cost.
        let total: f64 = g.solution.increments(&problem).iter().map(|i| i.cost).sum();
        assert!((total - g.solution.cost).abs() < 1e-6);
    });
}

/// A shrunk counterexample an earlier randomised run produced: six bases
/// with these exact initial confidences and linear rates, two results over
/// bases {1,2,3} and {0,2,4}, β = 0.5, δ = 0.1, quota 2. The original
/// record did not pin the OR-of-AND grouping of each result's lineage, so
/// every combination of groupings over the ordered var lists is replayed.
#[test]
fn regression_shrunk_instance_all_groupings() {
    let bases: [(f64, f64); 6] = [
        (0.21058790371238958, 6.0138480718722676),
        (0.1513061779753609, 77.63458369442124),
        (0.1107439804383791, 90.54694533217547),
        (0.1737898525414536, 71.23342385389901),
        (0.07445945159196375, 46.134860384014125),
        (0.06734828639507517, 13.385502936213554),
    ];
    let result_vars: [&[u64]; 2] = [&[1, 2, 3], &[0, 2, 4]];
    // cuts[0] is ignored, so 3 vars ⇒ 4 groupings per result ⇒ 16 combos.
    for mask_a in 0u8..4 {
        for mask_b in 0u8..4 {
            let mut b = ProblemBuilder::new(0.5, 0.1);
            for (i, &(initial, rate)) in bases.iter().enumerate() {
                b.base(i as u64, initial, CostFn::linear(rate).expect("positive"));
            }
            for (vars, mask) in result_vars.iter().zip([mask_a, mask_b]) {
                let cuts = [false, mask & 1 != 0, mask & 2 != 0];
                b.result_from_lineage(&group_or_of_and(vars, &cuts))
                    .expect("registered vars");
            }
            let problem = b.require(2).build().expect("valid");
            // The full battery the shrunk case was minimised against.
            let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
            g.solution.validate(&problem).unwrap();
            let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
            d.solution.validate(&problem).unwrap();
            let h = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
            h.solution.validate(&problem).unwrap();
            assert!(h.solution.cost <= g.solution.cost + 1e-6);
            assert!(h.solution.cost <= d.solution.cost + 1e-6);
            check_pruning(&problem);
            let one = greedy::solve(&problem, &GreedyOptions::one_phase()).unwrap();
            assert!(g.solution.cost <= one.solution.cost + 1e-6);
        }
    }
}
