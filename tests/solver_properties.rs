//! Property-based tests over the strategy-finding algorithms: on random
//! feasible instances, every solver's answer validates, the exact search
//! is never beaten, phase 2 never hurts, and pruning never changes the
//! optimum.

use pcqe::core::dnc::{self, DncOptions};
use pcqe::core::greedy::{self, GreedyOptions};
use pcqe::core::heuristic::{self, HeuristicOptions};
use pcqe::core::problem::{ProblemBuilder, ProblemInstance};
use pcqe::cost::CostFn;
use pcqe::lineage::Lineage;
use proptest::prelude::*;

/// A random negation-free lineage over a subset of `n_bases` variables.
fn lineage_strategy(n_bases: u64) -> impl Strategy<Value = Lineage> {
    // Pick 2–4 distinct variables and a random OR-of-AND grouping.
    proptest::sample::subsequence((0..n_bases).collect::<Vec<_>>(), 2..=(n_bases.min(4) as usize))
        .prop_flat_map(|vars| {
            let len = vars.len();
            (Just(vars), proptest::collection::vec(any::<bool>(), len))
        })
        .prop_map(|(vars, cuts)| {
            // `cuts[i]` starts a new AND-group before vars[i].
            let mut groups: Vec<Vec<Lineage>> = vec![vec![]];
            for (i, v) in vars.iter().enumerate() {
                if i > 0 && cuts[i] {
                    groups.push(vec![]);
                }
                groups.last_mut().expect("non-empty").push(Lineage::var(*v));
            }
            Lineage::or(groups.into_iter().map(Lineage::and).collect())
        })
}

/// A random feasible problem: 3–6 bases, 2–4 results, β = 0.5, δ = 0.1.
fn problem_strategy() -> impl Strategy<Value = ProblemInstance> {
    (3u64..=6)
        .prop_flat_map(|n_bases| {
            let lineages = proptest::collection::vec(lineage_strategy(n_bases), 2..=4);
            let inits = proptest::collection::vec(0.05f64..0.3, n_bases as usize);
            let rates = proptest::collection::vec(1.0f64..100.0, n_bases as usize);
            (Just(n_bases), lineages, inits, rates, 1usize..=2)
        })
        .prop_map(|(n_bases, lineages, inits, rates, required)| {
            let mut b = ProblemBuilder::new(0.5, 0.1);
            for i in 0..n_bases {
                b.base(
                    i,
                    inits[i as usize],
                    CostFn::linear(rates[i as usize]).expect("positive rate"),
                );
            }
            let n_results = lineages.len();
            for l in lineages {
                b.result_from_lineage(&l).expect("vars are registered");
            }
            // Negation-free lineage reaches 1.0 at max confidence, so any
            // quota ≤ n_results is feasible.
            b.require(required.min(n_results)).build().expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_solvers_produce_valid_solutions(problem in problem_strategy()) {
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        g.solution.validate(&problem).unwrap();
        let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
        d.solution.validate(&problem).unwrap();
        let h = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        h.solution.validate(&problem).unwrap();
    }

    #[test]
    fn exact_search_is_never_beaten(problem in problem_strategy()) {
        let h = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
        prop_assert!(h.solution.cost <= g.solution.cost + 1e-6,
            "heuristic {} vs greedy {}", h.solution.cost, g.solution.cost);
        prop_assert!(h.solution.cost <= d.solution.cost + 1e-6,
            "heuristic {} vs dnc {}", h.solution.cost, d.solution.cost);
    }

    #[test]
    fn pruning_preserves_the_optimum(problem in problem_strategy()) {
        let naive = heuristic::solve(&problem, &HeuristicOptions::naive()).unwrap();
        for config in [
            HeuristicOptions::only(1),
            HeuristicOptions::only(2),
            HeuristicOptions::only(3),
            HeuristicOptions::only(4),
            HeuristicOptions::all(),
        ] {
            let out = heuristic::solve(&problem, &config).unwrap();
            prop_assert!((out.solution.cost - naive.solution.cost).abs() < 1e-6,
                "config {:?}: {} vs naive {}", config, out.solution.cost, naive.solution.cost);
        }
        // H2–H4 only cut branches from the *same* tree, so their node
        // counts are monotone. H1 reorders the variables; its node count
        // can go either way on any one instance (it helps on average, as
        // Figure 11(a) shows).
        for config in [
            HeuristicOptions::only(2),
            HeuristicOptions::only(3),
            HeuristicOptions::only(4),
        ] {
            let out = heuristic::solve(&problem, &config).unwrap();
            prop_assert!(out.stats.nodes <= naive.stats.nodes,
                "config {:?}: {} nodes vs naive {}", config, out.stats.nodes, naive.stats.nodes);
        }
    }

    #[test]
    fn two_phase_never_costs_more(problem in problem_strategy()) {
        let one = greedy::solve(&problem, &GreedyOptions::one_phase()).unwrap();
        let two = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        prop_assert!(two.solution.cost <= one.solution.cost + 1e-6);
    }

    #[test]
    fn greedy_seed_never_worsens_the_search(problem in problem_strategy()) {
        let seed = greedy::solve(&problem, &GreedyOptions::default()).unwrap().solution;
        let plain = heuristic::solve(&problem, &HeuristicOptions::all()).unwrap();
        let seeded = heuristic::solve(
            &problem,
            &HeuristicOptions::all().with_seed(seed),
        )
        .unwrap();
        prop_assert!((seeded.solution.cost - plain.solution.cost).abs() < 1e-6);
        prop_assert!(seeded.stats.nodes <= plain.stats.nodes);
    }

    #[test]
    fn solutions_only_raise_confidences(problem in problem_strategy()) {
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        for (level, base) in g.solution.levels.iter().zip(&problem.bases) {
            prop_assert!(*level >= base.initial - 1e-12);
            prop_assert!(*level <= base.max + 1e-12);
        }
        // Increments must sum to the declared cost.
        let total: f64 = g.solution.increments(&problem).iter().map(|i| i.cost).sum();
        prop_assert!((total - g.solution.cost).abs() < 1e-6);
    }
}
