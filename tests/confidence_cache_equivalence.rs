//! Circuit-cache acceptance suite.
//!
//! The contract of `lineage::cache` (DESIGN.md §10) is that the
//! query-scoped circuit cache is a pure performance decision: for every
//! query in the grid below, over randomised databases, an engine running
//! with `EngineConfig::circuit_cache` on must produce **bit-identical**
//! responses — same released rows in the same order, same lineage, same
//! confidence bits, same withheld counts, same improvement proposals,
//! same audit log — as the uncached engine, at any worker-thread count.
//! Repeated what-if previews (the memo-warming, incrementally-invalidated
//! fast path) must preview the same futures bit for bit.

mod common;

use common::for_each_case;
use pcqe::cost::CostFn;
use pcqe::engine::{Database, EngineConfig, QueryRequest, QueryResponse, User};
use pcqe::lineage::Rng64;
use pcqe::policy::ConfidencePolicy;
use pcqe::storage::{Column, DataType, Schema, Value};

const CASES: u64 = 16;

/// Query shapes whose lineage exercises the pool: conjunctive joins
/// (shared base tuples across result rows), DISTINCT (disjunctive
/// lineage), set operations (negation), aggregation.
const QUERIES: &[&str] = &[
    "SELECT * FROM orders WHERE amount > 2",
    "SELECT DISTINCT cust FROM orders WHERE amount > 1",
    "SELECT o.amount FROM orders o JOIN customers c ON o.cust = c.id",
    "SELECT o.amount, c.score FROM orders o, customers c WHERE o.cust = c.id AND amount > 1",
    "SELECT cust FROM orders WHERE amount > 1 UNION SELECT id FROM customers WHERE id > 0",
    "SELECT cust FROM orders EXCEPT SELECT id FROM customers WHERE id > 1",
    "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING n > 0",
];

fn build_db(
    config: EngineConfig,
    beta: f64,
    orders: &[(i64, i64, f64)],
    customers: &[(i64, f64, f64)],
) -> Database {
    let mut db = Database::new(config);
    db.create_table(
        "orders",
        Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("amount", DataType::Int),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "customers",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    for &(cust, amount, conf) in orders {
        db.insert("orders", vec![Value::Int(cust), Value::Int(amount)], conf)
            .unwrap();
    }
    for &(id, score, conf) in customers {
        db.insert("customers", vec![Value::Int(id), Value::Real(score)], conf)
            .unwrap();
    }
    db.add_policy(ConfidencePolicy::new("analyst", "research", beta).unwrap());
    db
}

fn random_orders(rng: &mut Rng64) -> Vec<(i64, i64, f64)> {
    let n = rng.below_usize(7);
    (0..n)
        .map(|_| {
            (
                rng.below_u64(3) as i64,
                rng.below_u64(6) as i64,
                rng.range_f64(0.05, 0.95),
            )
        })
        .collect()
}

fn random_customers(rng: &mut Rng64) -> Vec<(i64, f64, f64)> {
    let n = rng.below_usize(4);
    (0..n)
        .map(|_| {
            (
                rng.below_u64(3) as i64,
                rng.range_f64(-2.0, 2.0),
                rng.range_f64(0.05, 0.95),
            )
        })
        .collect()
}

/// Assert two responses agree bit for bit: rows, order, lineage,
/// confidence bits, withheld counts, proposals and their absence reasons.
fn assert_responses_identical(a: &QueryResponse, b: &QueryResponse, context: &str) {
    assert_eq!(a.schema, b.schema, "schema diverged for {context}");
    assert_eq!(
        a.threshold.to_bits(),
        b.threshold.to_bits(),
        "threshold diverged for {context}"
    );
    assert_eq!(
        a.withheld, b.withheld,
        "withheld count diverged for {context}"
    );
    assert_eq!(
        a.released.len(),
        b.released.len(),
        "released count diverged for {context}"
    );
    for (i, (x, y)) in a.released.iter().zip(&b.released).enumerate() {
        assert_eq!(x.tuple, y.tuple, "released row {i} diverged for {context}");
        assert_eq!(
            x.lineage, y.lineage,
            "released lineage {i} diverged for {context}"
        );
        assert_eq!(
            x.confidence.to_bits(),
            y.confidence.to_bits(),
            "confidence bits {i} diverged for {context}"
        );
    }
    assert_eq!(a.proposal, b.proposal, "proposal diverged for {context}");
    assert_eq!(
        a.no_proposal, b.no_proposal,
        "no-proposal reason diverged for {context}"
    );
}

/// Cache on vs cache off over the randomised grid, sequential and
/// 4-thread: responses and audit logs must be identical.
#[test]
fn cached_engine_is_bit_identical_to_uncached() {
    for_each_case(CASES, 0x00CA_0001, |rng| {
        let orders = random_orders(rng);
        let customers = random_customers(rng);
        let user = User::new("ada", "analyst");
        for beta in [0.1, 0.45] {
            for threads in [Some(1), Some(4)] {
                let config = EngineConfig {
                    worker_threads: threads,
                    parallel_threshold: 1,
                    ..EngineConfig::default()
                };
                let cached = EngineConfig {
                    circuit_cache: true,
                    ..config.clone()
                };
                let uncached = EngineConfig {
                    circuit_cache: false,
                    ..config
                };
                let mut db_on = build_db(cached, beta, &orders, &customers);
                let mut db_off = build_db(uncached, beta, &orders, &customers);
                for sql in QUERIES {
                    let request = QueryRequest::new(*sql, "research");
                    let a = db_on.query(&user, &request).expect("cached query");
                    let b = db_off.query(&user, &request).expect("uncached query");
                    let context = format!("{sql} (beta={beta}, threads={threads:?})");
                    assert_responses_identical(&a, &b, &context);
                }
                assert_eq!(
                    db_on.audit_log(),
                    db_off.audit_log(),
                    "audit logs diverged (beta={beta}, threads={threads:?})"
                );
            }
        }
    });
}

// ---------------------------------------------------------------------------
// What-if previews: the repeated-probe fast path.

const PAPER_QUERY: &str = "SELECT DISTINCT CompanyInfo.company, income \
    FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
    WHERE funding < 1000000.0";

/// The Section 3.1 database under a given configuration.
fn paper_db(config: EngineConfig) -> Database {
    let mut db = Database::new(config);
    db.create_table(
        "Proposal",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("proposal", DataType::Text),
            Column::new("funding", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "CompanyInfo",
        Schema::new(vec![
            Column::new("company", DataType::Text),
            Column::new("income", DataType::Real),
        ])
        .unwrap(),
    )
    .unwrap();
    let t02 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
    let t03 = db
        .insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
    let t13 = db
        .insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
    db.set_cost(t02, CostFn::linear(1000.0).unwrap()).unwrap();
    db.set_cost(t03, CostFn::linear(100.0).unwrap()).unwrap();
    db.set_cost(t13, CostFn::linear(10_000.0).unwrap()).unwrap();
    db.add_policy(ConfidencePolicy::new("Manager", "investment", 0.06).unwrap());
    db
}

/// Query → proposal → repeated what-if previews, cached vs uncached:
/// every preview must agree bit for bit, and the repeated probes must
/// actually hit the cache's memoised subcircuits.
#[test]
fn what_if_previews_are_bit_identical_and_hit_the_cache() {
    let mut on = EngineConfig::default().sequential();
    on.circuit_cache = true;
    let mut off = EngineConfig::default().sequential();
    off.circuit_cache = false;
    let mut db_on = paper_db(on);
    let mut db_off = paper_db(off);
    let user = User::new("mark", "Manager");
    let request = QueryRequest::new(PAPER_QUERY, "investment");

    let a = db_on.query(&user, &request).expect("cached query");
    let b = db_off.query(&user, &request).expect("uncached query");
    assert_responses_identical(&a, &b, "paper query");
    let proposal = a.proposal.expect("the paper example yields a strategy");

    // Probe the same future repeatedly: the cached engine warms its memo
    // on the first preview and answers the rest from it; the invalidation
    // walk between catalog-backed and override-backed probabilities must
    // not change a single bit.
    for probe in 0..3 {
        let wa = db_on.what_if(&user, &request, &proposal).expect("cached");
        let wb = db_off
            .what_if(&user, &request, &proposal)
            .expect("uncached");
        assert_responses_identical(&wa, &wb, &format!("what-if probe {probe}"));
        assert_eq!(wa.released.len(), 1, "the fixed t03 releases the row");
        assert!((wa.released[0].confidence - 0.065).abs() < 1e-12);
    }
    assert_eq!(db_on.audit_log(), db_off.audit_log());

    let snapshot = db_on.metrics_snapshot();
    let compiled = snapshot.counters.get("lineage.circuit_compiled").copied();
    let hits = snapshot.counters.get("lineage.cache_hit").copied();
    let invalidated = snapshot.counters.get("lineage.cache_invalidated").copied();
    assert!(
        compiled.unwrap_or(0) > 0,
        "cached engine never compiled into the pool: {compiled:?}"
    );
    assert!(
        hits.unwrap_or(0) > 0,
        "repeated what-if probes never hit the cache: {hits:?}"
    );
    assert!(
        invalidated.unwrap_or(0) > 0,
        "override/restore probes never invalidated a memo: {invalidated:?}"
    );
    // The uncached engine must never touch those counters.
    let off_snapshot = db_off.metrics_snapshot();
    assert_eq!(
        off_snapshot.counters.get("lineage.circuit_compiled"),
        None,
        "uncached engine recorded pool activity"
    );
}
