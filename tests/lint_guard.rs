//! Tier-1 gate: the repository must satisfy its own static invariants.
//!
//! Runs `pcqe-lint` in-process over the workspace root with the checked-in
//! `lint-allow.toml`. Any unsuppressed finding — including a stale
//! allowlist entry (PCQE-A001) — fails the build, so a violating pattern
//! cannot merge even if the author never ran the CLI. This is the same
//! analysis `ci.sh` runs as a dedicated step; the test form makes it part
//! of the plain `cargo test` contract.

use std::path::Path;

#[test]
fn workspace_passes_its_own_static_analysis() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = pcqe_lint::analyze(root, None).expect("lint analysis runs");

    // The walk must actually have covered the tree; a silently empty scan
    // would make this guard vacuous.
    assert!(
        analysis.files_scanned >= 100,
        "suspiciously few sources scanned ({})",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_scanned >= 11,
        "suspiciously few manifests scanned ({})",
        analysis.manifests_scanned
    );

    assert!(
        analysis.is_clean(),
        "pcqe-lint found violations:\n{}",
        pcqe_lint::report::human(&analysis)
    );

    // Every suppression must carry a reason (the parser enforces it; this
    // keeps the invariant visible at the gate).
    for (finding, reason) in &analysis.suppressed {
        assert!(
            !reason.trim().is_empty(),
            "unreasoned suppression for {} at {}:{}",
            finding.rule.code(),
            finding.path,
            finding.line
        );
    }
}
