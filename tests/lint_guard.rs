//! Tier-1 gate: the repository must satisfy its own static invariants.
//!
//! Runs `pcqe-lint` in-process over the workspace root with the checked-in
//! `lint-allow.toml`. Any unsuppressed finding — including a stale
//! allowlist entry (PCQE-A001) — fails the build, so a violating pattern
//! cannot merge even if the author never ran the CLI. This is the same
//! analysis `ci.sh` runs as a dedicated step; the test form makes it part
//! of the plain `cargo test` contract.

use pcqe_lint::rules::Rule;
use std::path::Path;

#[test]
fn workspace_passes_its_own_static_analysis() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = pcqe_lint::analyze(root, None).expect("lint analysis runs");

    // The walk must actually have covered the tree; a silently empty scan
    // would make this guard vacuous.
    assert!(
        analysis.files_scanned >= 100,
        "suspiciously few sources scanned ({})",
        analysis.files_scanned
    );
    assert!(
        analysis.manifests_scanned >= 11,
        "suspiciously few manifests scanned ({})",
        analysis.manifests_scanned
    );

    assert!(
        analysis.is_clean(),
        "pcqe-lint found violations:\n{}",
        pcqe_lint::report::human(&analysis)
    );

    // Every suppression must carry a reason (rule PCQE-A002 enforces it;
    // this keeps the invariant visible at the gate).
    for (finding, reason) in &analysis.suppressed {
        assert!(
            !reason.trim().is_empty(),
            "unreasoned suppression for {} at {}:{}",
            finding.rule.code(),
            finding.path,
            finding.line
        );
    }
}

/// The graph-layer rules (P002 panic-reachability, G001 policy-gating),
/// the new token rules (D004 float-determinism, C002 capability
/// coverage — the graph fixture ships a capability manifest, so its
/// concurrency findings report under the manifest-mode id), and the
/// hygiene rule A002 must all be live — i.e. they fire on the fixture
/// trees that plant exactly one violation each. A rule that silently
/// stopped firing would turn the clean workspace gate above into a
/// vacuous check. (Legacy C001 and the layer-3 rules C003–C006 are
/// covered by `tests/concurrency_lint_guard.rs`.)
#[test]
fn reachability_and_hygiene_rules_are_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let graph = pcqe_lint::analyze(&root.join("crates/lint/tests/fixtures/graph"), None)
        .expect("graph fixture analysis runs");
    for rule in [Rule::P002, Rule::D004, Rule::C002, Rule::G001] {
        assert!(
            graph.findings.iter().any(|f| f.rule == rule),
            "{} must fire on the graph fixture:\n{}",
            rule.code(),
            pcqe_lint::report::human(&graph)
        );
    }
    // The planted transitive panic is reported at the site with the full
    // witness call path from the guarded public API.
    let p002 = graph
        .findings
        .iter()
        .find(|f| f.rule == Rule::P002)
        .expect("P002 finding present");
    assert_eq!(p002.path, "crates/core/src/pick.rs");
    assert!(
        p002.message
            .contains("pcqe_engine::run → pcqe_engine::step → pcqe_core::pick"),
        "witness path missing in: {}",
        p002.message
    );

    let noreason = pcqe_lint::analyze(&root.join("crates/lint/tests/fixtures/noreason"), None)
        .expect("noreason fixture analysis runs");
    assert!(
        noreason.findings.iter().any(|f| f.rule == Rule::A002),
        "PCQE-A002 must fire on the unreasoned allowlist entry:\n{}",
        pcqe_lint::report::human(&noreason)
    );
}

/// The JSON report is a CI artifact (`ci.sh` writes `results/lint.json`):
/// it must be byte-identical across runs and parseable by the in-repo
/// JSON reader that `obs-validate` uses, with summary counts that agree
/// with the analysis itself.
#[test]
fn json_report_is_byte_stable_and_round_trips_through_the_obs_parser() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = pcqe_lint::analyze(root, None).expect("first analysis runs");
    let b = pcqe_lint::analyze(root, None).expect("second analysis runs");
    let ja = pcqe_lint::report::json(&a);
    let jb = pcqe_lint::report::json(&b);
    assert_eq!(ja, jb, "JSON report drifted between two identical runs");

    let value = pcqe_obs::json::parse(&ja).expect("report parses with pcqe_obs::json");
    let obj = value.as_object().expect("top level is an object");
    assert_eq!(obj["tool"].as_str(), Some("pcqe-lint"));
    assert_eq!(obj["format_version"].as_u64(), Some(3));
    let findings = obj["findings"].as_array().expect("findings array");
    assert_eq!(findings.len(), a.findings.len());
    let summary = obj["summary"].as_object().expect("summary object");
    assert_eq!(summary["errors"].as_u64(), Some(a.error_count() as u64));
    assert_eq!(summary["files"].as_u64(), Some(a.files_scanned as u64));
    assert_eq!(
        summary["suppressed"].as_u64(),
        Some(a.suppressed.len() as u64)
    );

    // Format version 3: the per-rule section must cover every rule id and
    // its counts must re-add to the summary totals — this is the shape the
    // CI gate (`pcqe-obs-validate --schema lint --gate`) puts ceilings on.
    let rules = obj["rules"].as_object().expect("rules object");
    assert_eq!(rules.len(), Rule::all().len());
    let mut errors = 0;
    let mut suppressed = 0;
    for rule in Rule::all() {
        let entry = rules[rule.code()]
            .as_object()
            .unwrap_or_else(|| panic!("rules section missing {}", rule.code()));
        errors += entry["errors"].as_u64().expect("errors count");
        suppressed += entry["suppressed"].as_u64().expect("suppressed count");
    }
    assert_eq!(errors, a.error_count() as u64);
    assert_eq!(suppressed, a.suppressed.len() as u64);
}
