//! Property-based tests over the lineage substrate: simplification is
//! semantics-preserving, exact probability matches brute-force
//! enumeration, the compiled form matches the interpreter, and Monte-Carlo
//! estimation converges to the exact value.

use pcqe::lineage::{CompiledLineage, Evaluator, Lineage, MonteCarlo, VarId};
use proptest::prelude::*;
use std::collections::HashMap;

const MAX_VARS: u64 = 5;

/// Random lineage formulas, negation included.
fn lineage_strategy() -> impl Strategy<Value = Lineage> {
    let leaf = prop_oneof![
        (0..MAX_VARS).prop_map(Lineage::var),
        any::<bool>().prop_map(Lineage::Const),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Lineage::Not(Box::new(e))),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Lineage::And),
            proptest::collection::vec(inner, 1..4).prop_map(Lineage::Or),
        ]
    })
}

fn probs_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, MAX_VARS as usize)
}

/// Brute-force probability by enumerating all assignments of the formula's
/// variables.
fn brute_force(l: &Lineage, probs: &[f64]) -> f64 {
    let vars = l.vars();
    let mut total = 0.0;
    for bits in 0..(1u32 << vars.len()) {
        let assign = |v: VarId| {
            let slot = vars.iter().position(|&x| x == v).expect("collected var");
            bits & (1 << slot) != 0
        };
        if l.eval(&assign) {
            let mut w = 1.0;
            for (slot, &v) in vars.iter().enumerate() {
                let p = probs[v.0 as usize];
                w *= if bits & (1 << slot) != 0 { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplify_preserves_semantics(l in lineage_strategy(), bits in 0u32..32) {
        let s = l.simplify();
        let assign = |v: VarId| bits & (1 << v.0) != 0;
        prop_assert_eq!(l.eval(&assign), s.eval(&assign));
    }

    #[test]
    fn simplify_is_idempotent(l in lineage_strategy()) {
        let once = l.simplify();
        let twice = once.simplify();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn exact_probability_matches_brute_force(l in lineage_strategy(), probs in probs_strategy()) {
        let map: HashMap<VarId, f64> =
            (0..MAX_VARS).map(|i| (VarId(i), probs[i as usize])).collect();
        let exact = Evaluator::exact_only(1 << 16).probability(&l, &map).unwrap();
        let brute = brute_force(&l, &probs);
        prop_assert!((exact - brute).abs() < 1e-9, "exact {} vs brute {}", exact, brute);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&exact));
    }

    #[test]
    fn compiled_matches_interpreter(l in lineage_strategy(), probs in probs_strategy()) {
        let map: HashMap<VarId, f64> =
            (0..MAX_VARS).map(|i| (VarId(i), probs[i as usize])).collect();
        let exact = Evaluator::exact_only(1 << 16).probability(&l, &map).unwrap();
        let compiled = CompiledLineage::compile(&l, 1 << 16).unwrap();
        let fast = compiled.eval_with(|v| map[&v]);
        prop_assert!((exact - fast).abs() < 1e-9, "exact {} vs compiled {}", exact, fast);
    }

    #[test]
    fn factoring_preserves_semantics_and_never_grows(l in lineage_strategy(), bits in 0u32..32) {
        let f = pcqe::lineage::factor(&l);
        let assign = |v: VarId| bits & (1 << v.0) != 0;
        prop_assert_eq!(l.eval(&assign), f.eval(&assign), "{} vs {}", l, f);
        let before: usize = l.simplify().var_counts().values().sum();
        let after: usize = f.var_counts().values().sum();
        prop_assert!(after <= before, "{} occurrences grew to {} ({} → {})", before, after, l, f);
    }

    #[test]
    fn conditioning_is_consistent_with_probability(
        l in lineage_strategy(),
        probs in probs_strategy(),
        pivot in 0..MAX_VARS,
    ) {
        // P(F) = p·P(F|v=1) + (1−p)·P(F|v=0) for any pivot.
        let map: HashMap<VarId, f64> =
            (0..MAX_VARS).map(|i| (VarId(i), probs[i as usize])).collect();
        let ev = Evaluator::exact_only(1 << 16);
        let full = ev.probability(&l, &map).unwrap();
        let hi = ev.probability(&l.condition(VarId(pivot), true), &map).unwrap();
        let lo = ev.probability(&l.condition(VarId(pivot), false), &map).unwrap();
        let p = probs[pivot as usize];
        prop_assert!((full - (p * hi + (1.0 - p) * lo)).abs() < 1e-9);
    }
}

/// Negation-free lineage strategy (for the monotonicity property).
fn positive_lineage_strategy() -> impl Strategy<Value = Lineage> {
    let leaf = (0..MAX_VARS).prop_map(Lineage::var);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Lineage::And),
            proptest::collection::vec(inner, 1..4).prop_map(Lineage::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The solvers' pruning rules assume raising any base confidence can
    /// only raise a negation-free result's confidence. Verify it.
    #[test]
    fn negation_free_lineage_is_monotone(
        l in positive_lineage_strategy(),
        probs in probs_strategy(),
        bump_var in 0..MAX_VARS,
        bump in 0.0f64..=1.0,
    ) {
        let ev = Evaluator::exact_only(1 << 16);
        let base: HashMap<VarId, f64> =
            (0..MAX_VARS).map(|i| (VarId(i), probs[i as usize])).collect();
        let mut raised = base.clone();
        let e = raised.get_mut(&VarId(bump_var)).expect("var present");
        *e = (*e + bump).min(1.0);
        let p0 = ev.probability(&l, &base).unwrap();
        let p1 = ev.probability(&l, &raised).unwrap();
        prop_assert!(p1 >= p0 - 1e-9, "raising v{bump_var} lowered {p0} to {p1} for {l}");
    }
}

#[test]
fn monte_carlo_converges_to_exact() {
    // Not a proptest (sampling is slow); three representative formulas.
    let formulas = [
        Lineage::or(vec![
            Lineage::and(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::and(vec![Lineage::var(1), Lineage::var(2)]),
        ]),
        Lineage::not(Lineage::and(vec![Lineage::var(0), Lineage::var(3)])),
        Lineage::and(vec![
            Lineage::or(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
        ]),
    ];
    let map: HashMap<VarId, f64> = (0..MAX_VARS).map(|i| (VarId(i), 0.35)).collect();
    for l in &formulas {
        let exact = Evaluator::exact_only(1 << 16).probability(l, &map).unwrap();
        let mc = MonteCarlo::new(300_000, 17).estimate(l, &map).unwrap();
        assert!((exact - mc).abs() < 0.01, "exact {exact} vs mc {mc} for {l}");
    }
}
