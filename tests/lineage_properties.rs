//! Seeded property tests over the lineage substrate: simplification is
//! semantics-preserving, exact probability matches brute-force
//! enumeration, the compiled form matches the interpreter, and Monte-Carlo
//! estimation converges to the exact value.

mod common;

use common::{for_each_case, random_lineage, random_positive_lineage, random_probs};
use pcqe::lineage::{CompiledLineage, Evaluator, Lineage, MonteCarlo, Rng64, VarId};
use std::collections::HashMap;

const MAX_VARS: u64 = 5;
const DEPTH: u32 = 3;
const CASES: u64 = 256;

fn lineage(rng: &mut Rng64) -> Lineage {
    random_lineage(rng, MAX_VARS, DEPTH)
}

fn prob_map(rng: &mut Rng64) -> (Vec<f64>, HashMap<VarId, f64>) {
    let probs = random_probs(rng, MAX_VARS as usize);
    let map = (0..MAX_VARS)
        .map(|i| (VarId(i), probs[i as usize]))
        .collect();
    (probs, map)
}

/// Brute-force probability by enumerating all assignments of the formula's
/// variables.
fn brute_force(l: &Lineage, probs: &[f64]) -> f64 {
    let vars = l.vars();
    let mut total = 0.0;
    for bits in 0..(1u32 << vars.len()) {
        let assign = |v: VarId| {
            let slot = vars.iter().position(|&x| x == v).expect("collected var");
            bits & (1 << slot) != 0
        };
        if l.eval(&assign) {
            let mut w = 1.0;
            for (slot, &v) in vars.iter().enumerate() {
                let p = probs[v.0 as usize];
                w *= if bits & (1 << slot) != 0 { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    total
}

#[test]
fn simplify_preserves_semantics() {
    for_each_case(CASES, 0x11AE_0001, |rng| {
        let l = lineage(rng);
        let bits = rng.below_u64(32) as u32;
        let s = l.simplify();
        let assign = |v: VarId| bits & (1 << v.0) != 0;
        assert_eq!(l.eval(&assign), s.eval(&assign), "{l} vs {s}");
    });
}

#[test]
fn simplify_is_idempotent() {
    for_each_case(CASES, 0x11AE_0002, |rng| {
        let l = lineage(rng);
        let once = l.simplify();
        let twice = once.simplify();
        assert_eq!(once, twice);
    });
}

#[test]
fn exact_probability_matches_brute_force() {
    for_each_case(CASES, 0x11AE_0003, |rng| {
        let l = lineage(rng);
        let (probs, map) = prob_map(rng);
        let exact = Evaluator::exact_only(1 << 16)
            .probability(&l, &map)
            .unwrap();
        let brute = brute_force(&l, &probs);
        assert!(
            (exact - brute).abs() < 1e-9,
            "exact {exact} vs brute {brute} for {l}"
        );
        assert!((-1e-9..=1.0 + 1e-9).contains(&exact));
    });
}

#[test]
fn compiled_matches_interpreter() {
    for_each_case(CASES, 0x11AE_0004, |rng| {
        let l = lineage(rng);
        let (_, map) = prob_map(rng);
        let exact = Evaluator::exact_only(1 << 16)
            .probability(&l, &map)
            .unwrap();
        let compiled = CompiledLineage::compile(&l, 1 << 16).unwrap();
        let fast = compiled.eval_with(|v| map[&v]);
        assert!(
            (exact - fast).abs() < 1e-9,
            "exact {exact} vs compiled {fast} for {l}"
        );
    });
}

#[test]
fn factoring_preserves_semantics_and_never_grows() {
    for_each_case(CASES, 0x11AE_0005, |rng| {
        let l = lineage(rng);
        let bits = rng.below_u64(32) as u32;
        let f = pcqe::lineage::factor(&l);
        let assign = |v: VarId| bits & (1 << v.0) != 0;
        assert_eq!(l.eval(&assign), f.eval(&assign), "{l} vs {f}");
        let before: usize = l.simplify().var_counts().values().sum();
        let after: usize = f.var_counts().values().sum();
        assert!(
            after <= before,
            "{before} occurrences grew to {after} ({l} → {f})"
        );
    });
}

#[test]
fn conditioning_is_consistent_with_probability() {
    for_each_case(CASES, 0x11AE_0006, |rng| {
        // P(F) = p·P(F|v=1) + (1−p)·P(F|v=0) for any pivot.
        let l = lineage(rng);
        let (probs, map) = prob_map(rng);
        let pivot = rng.below_u64(MAX_VARS);
        let ev = Evaluator::exact_only(1 << 16);
        let full = ev.probability(&l, &map).unwrap();
        let hi = ev
            .probability(&l.condition(VarId(pivot), true), &map)
            .unwrap();
        let lo = ev
            .probability(&l.condition(VarId(pivot), false), &map)
            .unwrap();
        let p = probs[pivot as usize];
        assert!((full - (p * hi + (1.0 - p) * lo)).abs() < 1e-9);
    });
}

/// The solvers' pruning rules assume raising any base confidence can
/// only raise a negation-free result's confidence. Verify it.
#[test]
fn negation_free_lineage_is_monotone() {
    for_each_case(CASES, 0x11AE_0007, |rng| {
        let l = random_positive_lineage(rng, MAX_VARS, DEPTH);
        let (_probs, base) = prob_map(rng);
        let bump_var = rng.below_u64(MAX_VARS);
        let bump = rng.next_f64();
        let ev = Evaluator::exact_only(1 << 16);
        let mut raised = base.clone();
        let e = raised.get_mut(&VarId(bump_var)).expect("var present");
        *e = (*e + bump).min(1.0);
        let p0 = ev.probability(&l, &base).unwrap();
        let p1 = ev.probability(&l, &raised).unwrap();
        assert!(
            p1 >= p0 - 1e-9,
            "raising v{bump_var} lowered {p0} to {p1} for {l}"
        );
    });
}

#[test]
fn monte_carlo_converges_to_exact() {
    // Not seeded-random (sampling is slow); three representative formulas.
    let formulas = [
        Lineage::or(vec![
            Lineage::and(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::and(vec![Lineage::var(1), Lineage::var(2)]),
        ]),
        Lineage::not(Lineage::and(vec![Lineage::var(0), Lineage::var(3)])),
        Lineage::and(vec![
            Lineage::or(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
        ]),
    ];
    let map: HashMap<VarId, f64> = (0..MAX_VARS).map(|i| (VarId(i), 0.35)).collect();
    for l in &formulas {
        let exact = Evaluator::exact_only(1 << 16).probability(l, &map).unwrap();
        let mc = MonteCarlo::new(300_000, 17).estimate(l, &map).unwrap();
        assert!(
            (exact - mc).abs() < 0.01,
            "exact {exact} vs mc {mc} for {l}"
        );
    }
}
