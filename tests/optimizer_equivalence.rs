//! The optimiser must never change query semantics: for randomised
//! databases and a grid of query shapes, the optimised plan must return
//! exactly the rows (values, lineage, and confidences) of the naive plan.

mod common;

use common::for_each_case;
use pcqe::algebra::{execute, optimize};
use pcqe::lineage::{Evaluator, Rng64, VarId};
use pcqe::sql::parse_and_plan;
use pcqe::storage::{Catalog, Column, DataType, Schema, TupleId, Value};

const CASES: u64 = 64;

fn build_catalog(orders: &[(i64, i64, f64)], customers: &[(i64, f64)]) -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "orders",
        Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("amount", DataType::Int),
        ])
        .unwrap(),
    )
    .unwrap();
    c.create_table(
        "customers",
        Schema::new(vec![Column::new("id", DataType::Int)]).unwrap(),
    )
    .unwrap();
    for &(cust, amount, conf) in orders {
        c.insert("orders", vec![Value::Int(cust), Value::Int(amount)], conf)
            .unwrap();
    }
    for &(id, conf) in customers {
        c.insert("customers", vec![Value::Int(id)], conf).unwrap();
    }
    c
}

/// Execute a SQL string both ways; compare values, lineage and scores.
fn assert_equivalent(sql: &str, catalog: &Catalog) {
    let plan = parse_and_plan(sql, catalog).expect("plans");
    let optimized = optimize(&plan, catalog).expect("optimises");
    let probs = |v: VarId| catalog.confidence(TupleId(v.0));
    let ev = Evaluator::default();
    let a = execute(&plan, catalog).expect("executes");
    let b = execute(&optimized, catalog).expect("executes");
    let mut sa: Vec<String> = a
        .score(&probs, &ev)
        .expect("scores")
        .into_iter()
        .map(|s| format!("{} {:.12}", s.tuple, s.confidence))
        .collect();
    let mut sb: Vec<String> = b
        .score(&probs, &ev)
        .expect("scores")
        .into_iter()
        .map(|s| format!("{} {:.12}", s.tuple, s.confidence))
        .collect();
    sa.sort();
    sb.sort();
    assert_eq!(sa, sb, "query {sql} diverged after optimisation");
}

const QUERIES: &[&str] = &[
    "SELECT * FROM orders WHERE amount > 2 AND cust = 1",
    "SELECT DISTINCT cust FROM orders WHERE amount > 1",
    "SELECT o.amount FROM orders o JOIN customers c ON o.cust = c.id WHERE o.amount > 2 AND c.id < 3",
    "SELECT o.amount FROM orders o, customers c WHERE o.cust = c.id AND amount > 1",
    "SELECT cust FROM orders WHERE amount > 1 UNION SELECT id FROM customers WHERE id > 0",
    "SELECT cust FROM orders EXCEPT SELECT id FROM customers WHERE id > 1",
    "SELECT cust, amount FROM orders ORDER BY amount DESC LIMIT 2",
    "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING n > 0",
    "SELECT cust FROM orders WHERE amount + 1 > 2 AND NOT (cust = 9)",
];

fn random_orders(rng: &mut Rng64) -> Vec<(i64, i64, f64)> {
    let n = rng.below_usize(8);
    (0..n)
        .map(|_| {
            (
                rng.below_u64(4) as i64,
                rng.below_u64(6) as i64,
                rng.range_f64(0.05, 0.95),
            )
        })
        .collect()
}

fn random_customers(rng: &mut Rng64) -> Vec<(i64, f64)> {
    let n = rng.below_usize(5);
    (0..n)
        .map(|_| (rng.below_u64(4) as i64, rng.range_f64(0.05, 0.95)))
        .collect()
}

#[test]
fn optimized_plans_are_equivalent() {
    for_each_case(CASES, 0x0071_0001, |rng| {
        let catalog = build_catalog(&random_orders(rng), &random_customers(rng));
        for sql in QUERIES {
            assert_equivalent(sql, &catalog);
        }
    });
}

#[test]
fn pushdown_shapes_on_a_fixed_database() {
    let catalog = build_catalog(
        &[(1, 3, 0.5), (2, 1, 0.4), (1, 5, 0.6)],
        &[(1, 0.9), (2, 0.8)],
    );
    // The cross product with a join condition in WHERE must optimise into
    // a Join with the filters below it.
    let plan = parse_and_plan(
        "SELECT o.amount FROM orders o, customers c WHERE o.cust = c.id AND o.amount > 2",
        &catalog,
    )
    .unwrap();
    let optimized = optimize(&plan, &catalog).unwrap();
    let text = optimized.to_string();
    assert!(text.contains("Join"), "{text}");
    assert!(!text.contains("Product"), "{text}");
}
