//! Seeded round-trip tests for the CSV layer: arbitrary values —
//! including quotes, commas, newlines and unicode — must survive
//! write-then-load exactly, both with fresh ids and with preserved ids.

mod common;

use common::{for_each_case, random_string};
use pcqe::lineage::Rng64;
use pcqe::storage::csv::{load_into, load_into_with_ids, write_table, write_table_with_ids};
use pcqe::storage::{Catalog, Column, DataType, Schema, Value};
use std::io::Cursor;

const CASES: u64 = 128;

/// Text alphabet exercising the CSV escaping rules: printable ASCII plus
/// quotes, commas, newlines and multi-byte unicode.
const TEXT_ALPHABET: &[char] = &[
    'a', 'z', 'A', 'Z', '0', '9', ' ', '!', '#', '$', '%', '&', '(', ')', '*', '+', ',', '-', '.',
    '/', ':', ';', '<', '=', '>', '?', '@', '[', '\\', ']', '^', '_', '`', '{', '|', '}', '~', '"',
    '\n', 'é', 'ß', '世',
];

fn random_value(rng: &mut Rng64, ty: DataType) -> Value {
    // One time in four: NULL, matching the old 3:1 strategy weights.
    if rng.below_usize(4) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.next_u64() as i64),
        DataType::Real => Value::Real(rng.range_f64(-1e12, 1e12)),
        DataType::Bool => Value::Bool(rng.chance(0.5)),
        DataType::Text => Value::text(random_string(rng, TEXT_ALPHABET, 24)),
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "t",
        Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("r", DataType::Real),
            Column::new("b", DataType::Bool),
            Column::new("s", DataType::Text),
        ])
        .unwrap(),
    )
    .unwrap();
    c
}

#[test]
fn csv_round_trips_values_and_confidences() {
    for_each_case(CASES, 0xC5F0_0001, |rng| {
        let n_rows = rng.below_usize(12);
        let mut c = catalog();
        for _ in 0..n_rows {
            let i = random_value(rng, DataType::Int);
            let r = random_value(rng, DataType::Real);
            let b = random_value(rng, DataType::Bool);
            // Empty text is indistinguishable from NULL in CSV; normalise.
            let s = match random_value(rng, DataType::Text) {
                Value::Text(t) if t.is_empty() => Value::Null,
                other => other,
            };
            let conf = rng.next_f64();
            c.insert("t", vec![i, r, b, s], conf).unwrap();
        }
        let mut buf = Vec::new();
        write_table(c.table("t").unwrap(), &mut buf).unwrap();
        let mut c2 = catalog();
        load_into(&mut c2, "t", Cursor::new(&buf)).unwrap();
        let (t1, t2) = (c.table("t").unwrap(), c2.table("t").unwrap());
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.rows().iter().zip(t2.rows()) {
            assert_eq!(&a.tuple, &b.tuple);
            // Confidence survives via its shortest round-trippable form.
            assert!((a.confidence - b.confidence).abs() < 1e-15);
        }

        // The id-preserving variant restores identical tuple ids too.
        let mut buf = Vec::new();
        write_table_with_ids(t1, &mut buf).unwrap();
        let mut c3 = catalog();
        load_into_with_ids(&mut c3, "t", Cursor::new(&buf)).unwrap();
        for (a, b) in t1.rows().iter().zip(c3.table("t").unwrap().rows()) {
            assert_eq!(a.id, b.id);
            assert_eq!(&a.tuple, &b.tuple);
        }
    });
}
