//! Property-based round-trip tests for the CSV layer: arbitrary values —
//! including quotes, commas, newlines and unicode — must survive
//! write-then-load exactly, both with fresh ids and with preserved ids.

use pcqe::storage::csv::{load_into, load_into_with_ids, write_table, write_table_with_ids};
use pcqe::storage::{Catalog, Column, DataType, Schema, Value};
use proptest::prelude::*;
use std::io::Cursor;

fn value_strategy(ty: DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Int => prop_oneof![
            3 => proptest::num::i64::ANY.prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Real => prop_oneof![
            3 => (-1e12f64..1e12).prop_map(Value::Real),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Text => prop_oneof![
            3 => "[ -~éß世\n\"]{0,24}".prop_map(Value::text),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "t",
        Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("r", DataType::Real),
            Column::new("b", DataType::Bool),
            Column::new("s", DataType::Text),
        ])
        .unwrap(),
    )
    .unwrap();
    c
}

fn row_strategy() -> impl Strategy<Value = (Value, Value, Value, Value, f64)> {
    (
        value_strategy(DataType::Int),
        value_strategy(DataType::Real),
        value_strategy(DataType::Bool),
        value_strategy(DataType::Text),
        0.0f64..=1.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csv_round_trips_values_and_confidences(
        rows in proptest::collection::vec(row_strategy(), 0..12)
    ) {
        let mut c = catalog();
        for (i, r, b, s, conf) in &rows {
            // Empty text is indistinguishable from NULL in CSV; normalise.
            let s = match s {
                Value::Text(t) if t.is_empty() => Value::Null,
                other => other.clone(),
            };
            c.insert("t", vec![i.clone(), r.clone(), b.clone(), s], *conf).unwrap();
        }
        let mut buf = Vec::new();
        write_table(c.table("t").unwrap(), &mut buf).unwrap();
        let mut c2 = catalog();
        load_into(&mut c2, "t", Cursor::new(&buf)).unwrap();
        let (t1, t2) = (c.table("t").unwrap(), c2.table("t").unwrap());
        prop_assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.rows().iter().zip(t2.rows()) {
            prop_assert_eq!(&a.tuple, &b.tuple);
            // Confidence survives via its shortest round-trippable form.
            prop_assert!((a.confidence - b.confidence).abs() < 1e-15);
        }

        // The id-preserving variant restores identical tuple ids too.
        let mut buf = Vec::new();
        write_table_with_ids(t1, &mut buf).unwrap();
        let mut c3 = catalog();
        load_into_with_ids(&mut c3, "t", Cursor::new(&buf)).unwrap();
        for (a, b) in t1.rows().iter().zip(c3.table("t").unwrap().rows()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.tuple, &b.tuple);
        }
    }
}
