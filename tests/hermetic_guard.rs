//! Hermetic-build guard: every crate in the default workspace must depend
//! only on sibling path crates, never on registry crates. This is what
//! makes `cargo build --offline` succeed with an empty cargo home, and it
//! is the invariant CI's offline build stage relies on.
//!
//! The parser here is deliberately small: it walks each member manifest's
//! `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//! tables and asserts every entry is either `pcqe-*` (a workspace path
//! dependency) or spelled with an explicit `path =`.

use std::fs;
use std::path::{Path, PathBuf};

/// Manifests of the default workspace: the root package plus `crates/*`,
/// minus the `exclude`d bench crate.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let mut entries: Vec<_> = fs::read_dir(&crates)
        .expect("crates/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for dir in entries {
        if dir.file_name().is_some_and(|n| n == "bench") {
            continue; // detached workspace, allowed its own rules
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            manifests.push(manifest);
        }
    }
    manifests
}

/// The dependency names declared in the dependency tables of a manifest.
fn dependency_entries(toml: &str) -> Vec<(String, String)> {
    let mut deps = Vec::new();
    let mut in_dep_table = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_table = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_dep_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, spec)) = line.split_once('=') {
            // `foo.workspace = true` spells the name before the dot.
            let name = name.trim().split('.').next().unwrap_or("").to_owned();
            deps.push((name, spec.trim().to_owned()));
        }
    }
    deps
}

#[test]
fn default_workspace_has_only_path_dependencies() {
    let manifests = workspace_manifests();
    assert!(
        manifests.len() >= 11,
        "expected the root package plus ten crates, found {}",
        manifests.len()
    );
    for manifest in manifests {
        let toml = fs::read_to_string(&manifest).expect("manifest is readable");
        for (name, spec) in dependency_entries(&toml) {
            let is_workspace_crate = name.starts_with("pcqe-") || name.starts_with("pcqe_");
            let is_path_dep = spec.contains("path =") || spec.contains("path=");
            assert!(
                is_workspace_crate || is_path_dep,
                "{}: dependency `{name}` is not a path dependency — registry \
                 crates break the offline build (spec: {spec})",
                manifest.display()
            );
        }
    }
}

#[test]
fn bench_crate_is_detached_from_the_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root_toml = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    assert!(
        root_toml.contains("exclude = [\"crates/bench\"]"),
        "the root workspace must exclude crates/bench"
    );
    let bench_toml =
        fs::read_to_string(root.join("crates/bench/Cargo.toml")).expect("bench manifest");
    assert!(
        bench_toml.contains("[workspace]"),
        "crates/bench must carry its own [workspace] table so it never \
         joins the default workspace"
    );
    // The bench crate, too, must be registry-free.
    for (name, spec) in dependency_entries(&bench_toml) {
        let is_path_dep = spec.contains("path =") || spec.contains("path=");
        assert!(
            is_path_dep,
            "crates/bench: dependency `{name}` is not a path dependency (spec: {spec})"
        );
    }
}

#[test]
fn no_stray_external_crate_names_in_manifests() {
    // Belt and braces: the names this repo historically depended on must
    // never reappear in any default-workspace manifest.
    const BANNED: &[&str] = &["rand", "proptest", "criterion", "serde", "serde_json"];
    for manifest in workspace_manifests() {
        let toml = fs::read_to_string(&manifest).expect("manifest is readable");
        for (name, _) in dependency_entries(&toml) {
            assert!(
                !BANNED.contains(&name.as_str()),
                "{}: banned registry dependency `{name}`",
                manifest.display()
            );
        }
    }
}
