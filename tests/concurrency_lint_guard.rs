//! Tier-1 gate for the concurrency-soundness layer of `pcqe-lint`.
//!
//! Mirrors `tests/lint_guard.rs` for the layer-3 rules: each of the
//! capability and concurrency rules (PCQE-C002 capability coverage,
//! PCQE-C003 lock-order cycles, PCQE-C004 lock held across a
//! result-affecting call, PCQE-C005 shared-state escape, PCQE-C006
//! relaxed-atomic reads on the query path, PCQE-A003 stale grants) must
//! demonstrably fire on the fixture tree that seeds exactly those
//! violations — otherwise the clean-workspace assertions below would be
//! vacuous. The second half is the negative direction: the real
//! workspace, including `pcqe-par`'s scoped-thread / in-order-merge
//! scheduler, must pass the full analysis with no concurrency findings
//! and no unreasoned suppressions.

use pcqe_lint::rules::Rule;
use std::path::Path;

/// Every layer-3 rule fires on the `conc` fixture tree. The fixture
/// plants one seeded violation per rule (see
/// `crates/lint/tests/fixtures/conc/`), so a rule missing here means the
/// analysis silently lost coverage.
#[test]
fn concurrency_rules_are_live_on_the_seeded_fixture() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let conc = pcqe_lint::analyze(&root.join("crates/lint/tests/fixtures/conc"), None)
        .expect("conc fixture analysis runs");
    for rule in [
        Rule::C002,
        Rule::C003,
        Rule::C004,
        Rule::C005,
        Rule::C006,
        Rule::A003,
    ] {
        assert!(
            conc.findings.iter().any(|f| f.rule == rule),
            "{} must fire on the conc fixture:\n{}",
            rule.code(),
            pcqe_lint::report::human(&conc)
        );
    }
    // The deadlock witness is a concrete interprocedural path with both
    // lock sites named — the property ROADMAP item 1 asks for.
    let c003 = conc
        .findings
        .iter()
        .find(|f| f.rule == Rule::C003)
        .expect("C003 finding present");
    assert!(
        c003.message
            .contains("pcqe_par::grab_both → pcqe_par::take_right"),
        "deadlock witness path missing in: {}",
        c003.message
    );
}

/// Legacy mode stays live: a tree *without* a capability manifest still
/// gets the built-in containment table, reported under the original
/// PCQE-C001 id. The real workspace ships `lint-capabilities.toml`, so
/// this only ever fires on fixture trees.
#[test]
fn legacy_containment_rule_is_live_without_a_manifest() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let tree = pcqe_lint::analyze(&root.join("crates/lint/tests/fixtures/tree"), None)
        .expect("tree fixture analysis runs");
    assert!(
        tree.findings.iter().any(|f| f.rule == Rule::C001),
        "PCQE-C001 must fire on the manifest-less tree fixture:\n{}",
        pcqe_lint::report::human(&tree)
    );
    assert!(
        !tree.findings.iter().any(|f| f.rule == Rule::C002),
        "C002 is manifest-mode only; the tree fixture has no manifest"
    );
}

/// The negative direction: the real workspace is concurrency-clean.
/// `pcqe-par`'s scheduler — scoped worker threads, an atomic work
/// cursor, and an index-ordered merge behind a single `Mutex` — must
/// pass the lock-order, escape, and atomics analyses without findings
/// and without suppressions; its capability grant in
/// `lint-capabilities.toml` covers the tokens, and everything past that
/// is proven, not waived.
#[test]
fn real_workspace_concurrency_is_clean_without_suppressions() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = pcqe_lint::analyze(root, None).expect("workspace analysis runs");

    // Manifest mode is active (the root ships lint-capabilities.toml),
    // so legacy C001 must not appear at all — subsumed by C002.
    for rule in [
        Rule::C001,
        Rule::C002,
        Rule::C003,
        Rule::C004,
        Rule::C005,
        Rule::C006,
        Rule::A003,
    ] {
        assert!(
            !analysis.findings.iter().any(|f| f.rule == rule),
            "unexpected {} in the real workspace:\n{}",
            rule.code(),
            pcqe_lint::report::human(&analysis)
        );
        assert!(
            !analysis.suppressed.iter().any(|(f, _)| f.rule == rule),
            "{} must be proven clean, not suppressed, in the real workspace",
            rule.code()
        );
    }

    // pcqe-par is covered by the scan (not skipped) — otherwise the
    // clean result above would say nothing about the scheduler.
    assert!(
        analysis.files_scanned >= 100,
        "suspiciously few sources scanned ({})",
        analysis.files_scanned
    );
}
