//! Tier-1 gate for the confidentiality-dataflow layer of `pcqe-lint`.
//!
//! Mirrors `tests/concurrency_lint_guard.rs` for the layer-4 rules:
//! each flow rule (PCQE-F001 suppressed tuples into error sinks,
//! PCQE-F002 β/θ thresholds into any non-audit sink, PCQE-F003 pre-gate
//! confidence into trace/metrics, PCQE-F004 unexercised sanctions,
//! PCQE-F005 manifest reason hygiene) must demonstrably fire on the
//! fixture tree that seeds exactly those flows — otherwise the
//! clean-workspace assertions below would be vacuous. The second half
//! is the negative direction: the real workspace must carry **no
//! unsanctioned flow**, and every `[[sanction]]` in `lint-flows.toml`
//! must be exercised (a stale one would itself fire F004).

use pcqe_lint::rules::Rule;
use std::path::Path;

/// Every layer-4 rule fires on the `flows` fixture tree — F003 in its
/// sanctioned form, which is the rule's designed negative (Decision
/// records are the canonical channel for confidence values).
#[test]
fn flow_rules_are_live_on_the_seeded_fixture() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let flows = pcqe_lint::analyze(&root.join("crates/lint/tests/fixtures/flows"), None)
        .expect("flows fixture analysis runs");
    for rule in [Rule::F001, Rule::F002, Rule::F004, Rule::F005] {
        assert!(
            flows.findings.iter().any(|f| f.rule == rule),
            "{} must fire on the flows fixture:\n{}",
            rule.code(),
            pcqe_lint::report::human(&flows)
        );
    }
    assert!(
        flows.suppressed.iter().any(|(f, _)| f.rule == Rule::F003),
        "the sanctioned F003 Decision flow must land in the suppressed list:\n{}",
        pcqe_lint::report::human(&flows)
    );

    // The F001 witness is a concrete interprocedural path: the function
    // that bound the suppressed rows, the call edge they crossed, and
    // the error constructor they reached.
    let f001 = flows
        .findings
        .iter()
        .find(|f| f.rule == Rule::F001)
        .expect("F001 finding present");
    assert!(
        f001.message
            .contains("pcqe_engine::gate → pcqe_engine::render"),
        "taint witness path missing in: {}",
        f001.message
    );
    assert!(
        f001.message.contains("GateError::Withheld"),
        "sink constructor missing in: {}",
        f001.message
    );
}

/// The negative direction: the real workspace discloses nothing the
/// manifest does not sanction. Suppressed tuples stay out of error
/// payloads, β/θ values out of shell and trace output, pre-gate
/// confidence out of metrics — and the places that *do* carry them by
/// design (the audit log, Decision records, the solver's cap-reporting
/// errors) are each covered by a reasoned `[[sanction]]`, every one of
/// which is exercised.
#[test]
fn real_workspace_has_no_unsanctioned_flows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = pcqe_lint::analyze(root, None).expect("workspace analysis runs");

    for rule in [Rule::F001, Rule::F002, Rule::F003, Rule::F004, Rule::F005] {
        assert!(
            !analysis.findings.iter().any(|f| f.rule == rule),
            "unexpected {} in the real workspace:\n{}",
            rule.code(),
            pcqe_lint::report::human(&analysis)
        );
    }

    // The sanctions are working declarations, not dead weight: each of
    // the designed channels in lint-flows.toml suppressed at least one
    // real flow this run (an unexercised one would have fired F004).
    for rule in [Rule::F001, Rule::F002, Rule::F003] {
        assert!(
            analysis.suppressed.iter().any(|(f, _)| f.rule == rule),
            "{} sanctions declared in lint-flows.toml but no flow was suppressed — \
             the manifest and the workspace drifted apart",
            rule.code()
        );
    }

    // The scan covered the workspace — otherwise "no flows" is vacuous.
    assert!(
        analysis.files_scanned >= 100,
        "suspiciously few sources scanned ({})",
        analysis.files_scanned
    );
}
