//! Solver checks on realistic generated workloads, plus an independent
//! brute-force optimality oracle for tiny instances.

mod common;

use common::for_each_case;
use pcqe::core::dnc::{self, DncOptions};
use pcqe::core::greedy::{self, GreedyOptions};
use pcqe::core::heuristic::{self, HeuristicOptions};
use pcqe::core::problem::{ProblemBuilder, ProblemInstance};
use pcqe::cost::CostFn;
use pcqe::lineage::{Lineage, Rng64};
use pcqe::workload::{generate, WorkloadParams};

/// Brute force: enumerate *every* grid assignment and return the cheapest
/// cost meeting the quota. Exponential — tiny instances only.
fn brute_force_optimum(problem: &ProblemInstance) -> Option<f64> {
    let k = problem.bases.len();
    let steps: Vec<u32> = (0..k).map(|i| problem.max_steps(i)).collect();
    let mut assignment = vec![0u32; k];
    let mut best: Option<f64> = None;
    loop {
        // Evaluate this assignment.
        let levels: Vec<f64> = (0..k).map(|i| problem.level_at(i, assignment[i])).collect();
        let mut satisfied = 0;
        for r in &problem.results {
            let probs: Vec<f64> = r.bases.iter().map(|&b| levels[b]).collect();
            if r.conf.eval(&probs) > problem.beta {
                satisfied += 1;
            }
        }
        if satisfied >= problem.required {
            let cost: f64 = (0..k).map(|i| problem.cost_at(i, assignment[i])).sum();
            if best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == k {
                return best;
            }
            if assignment[d] < steps[d] {
                assignment[d] += 1;
                break;
            }
            assignment[d] = 0;
            d += 1;
        }
    }
}

/// Tiny random instances with a coarse grid (δ = 0.25 keeps the
/// brute-force space around 4^k).
fn tiny_instance(rng: &mut Rng64) -> ProblemInstance {
    let k = 2 + rng.below_u64(3);
    let required = rng.range_usize(1, 3);
    let mut b = ProblemBuilder::new(0.5, 0.25);
    for i in 0..k {
        b.base(
            i,
            rng.range_f64(0.0, 0.4),
            CostFn::linear(rng.range_f64(1.0, 50.0)).expect("positive"),
        );
    }
    let vars: Vec<Lineage> = (0..k).map(Lineage::var).collect();
    for _ in 0..2 {
        let l = match rng.below_usize(3) {
            0 => Lineage::or(vars.clone()),
            1 => Lineage::and(vars[..2.min(vars.len())].to_vec()),
            _ => Lineage::or(vec![vars[0].clone(), Lineage::and(vars[1..].to_vec())]),
        };
        b.result_from_lineage(&l).expect("registered vars");
    }
    b.require(required.min(2)).build().expect("valid")
}

#[test]
fn branch_and_bound_matches_brute_force() {
    for_each_case(32, 0x3011_0001, |rng| {
        let problem = tiny_instance(rng);
        let brute = brute_force_optimum(&problem);
        match heuristic::solve(&problem, &HeuristicOptions::all()) {
            Ok(out) => {
                let brute = brute.expect("solver found a solution, oracle must too");
                assert!(
                    (out.solution.cost - brute).abs() < 1e-6,
                    "B&B {} vs brute force {}",
                    out.solution.cost,
                    brute
                );
            }
            Err(pcqe::core::CoreError::Infeasible { .. }) => {
                assert!(
                    brute.is_none(),
                    "oracle found {brute:?} but solver said infeasible"
                );
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

#[test]
fn all_solvers_handle_generated_workloads() {
    for seed in [1u64, 7, 42] {
        let params = WorkloadParams {
            data_size: 300,
            ..WorkloadParams::default()
        }
        .with_seed(seed);
        let problem = generate(&params).unwrap();
        let g = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
        g.solution.validate(&problem).unwrap();
        let gi = greedy::solve(&problem, &GreedyOptions::incremental()).unwrap();
        gi.solution.validate(&problem).unwrap();
        assert!(
            (g.solution.cost - gi.solution.cost).abs() < 1e-6,
            "seed {seed}: faithful {} vs incremental {}",
            g.solution.cost,
            gi.solution.cost
        );
        let d = dnc::solve(&problem, &DncOptions::default()).unwrap();
        d.solution.validate(&problem).unwrap();
        // Quotas met exactly or above, never below.
        assert!(g.solution.satisfied.len() >= problem.required);
        assert!(d.solution.satisfied.len() >= problem.required);
    }
}

#[test]
fn two_phase_saves_cost_on_generated_workloads() {
    // The Figure 11(e) effect must be visible on a small workload too.
    let problem = generate(
        &WorkloadParams {
            data_size: 500,
            ..WorkloadParams::default()
        }
        .with_seed(5),
    )
    .unwrap();
    let one = greedy::solve(&problem, &GreedyOptions::one_phase()).unwrap();
    let two = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
    assert!(
        two.solution.cost < one.solution.cost,
        "phase 2 saved nothing: {} vs {}",
        two.solution.cost,
        one.solution.cost
    );
}
