//! End-to-end determinism of the parallel engine: the SAME database
//! queried with one worker thread and with eight must produce
//! byte-identical answers — released rows, withheld counts, confidence
//! bits, and improvement proposals. Threads may only change speed, never
//! results.

mod common;

use pcqe::engine::{Database, EngineConfig, QueryRequest, User};
use pcqe::lineage::Rng64;
use pcqe::storage::{Column, DataType, Schema, Value};

/// Populate a database identically regardless of configuration: 10,000
/// rows whose values and confidences come from a fixed seeded stream.
fn populated(config: EngineConfig, rows: usize) -> Database {
    let mut db = Database::new(config);
    db.create_table(
        "readings",
        Schema::new(vec![
            Column::new("sensor", DataType::Int),
            Column::new("value", DataType::Int),
        ])
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "sensors",
        Schema::new(vec![Column::new("id", DataType::Int)]).unwrap(),
    )
    .unwrap();
    let mut rng = Rng64::seed_from_u64(20_240_806);
    for _ in 0..rows {
        let sensor = rng.below_u64(64) as i64;
        let value = rng.below_u64(1000) as i64;
        let conf = rng.range_f64(0.05, 0.99);
        db.insert(
            "readings",
            vec![Value::Int(sensor), Value::Int(value)],
            conf,
        )
        .unwrap();
    }
    for id in 0..64i64 {
        let conf = rng.range_f64(0.5, 0.99);
        db.insert("sensors", vec![Value::Int(id)], conf).unwrap();
    }
    db.add_policy(pcqe::policy::ConfidencePolicy::new("analyst", "report", 0.55).unwrap());
    db
}

/// A config that *forces* the parallel code paths even for small
/// batches, with the given worker count.
fn config(workers: usize) -> EngineConfig {
    EngineConfig {
        worker_threads: Some(workers),
        parallel_threshold: 1,
        ..EngineConfig::default()
    }
}

/// Render a response into a canonical, bit-exact transcript.
fn transcript(resp: &pcqe::engine::QueryResponse) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "released {} withheld {}",
        resp.released.len(),
        resp.withheld
    );
    for r in &resp.released {
        let _ = writeln!(
            s,
            "{} | {} | {:016x}",
            r.tuple,
            r.lineage,
            r.confidence.to_bits()
        );
    }
    if let Some(p) = &resp.proposal {
        let _ = writeln!(s, "proposal cost {:016x}", p.cost.to_bits());
        for inc in &p.increments {
            let _ = writeln!(
                s,
                "raise {} {:016x} -> {:016x} ({:016x})",
                inc.tuple_id,
                inc.from.to_bits(),
                inc.to.to_bits(),
                inc.cost.to_bits()
            );
        }
    }
    s
}

#[test]
fn ten_thousand_rows_identical_across_thread_counts() {
    // DISTINCT over a 10k-row table merges duplicate sensor ids into OR
    // lineage; the join multiplies in a second confidence source.
    let sql = "SELECT DISTINCT r.sensor FROM readings r JOIN sensors s \
               ON r.sensor = s.id WHERE r.value < 800";
    let user = User::new("ana", "analyst");
    // Expect a modest fraction so the run stops at policy evaluation
    // (the solver path is exercised separately below).
    let request = QueryRequest::new(sql, "report").expecting(0.2);

    let mut sequential = populated(config(1), 10_000);
    let reference = sequential.query(&user, &request).unwrap();
    assert!(
        !reference.released.is_empty(),
        "workload must release something for the comparison to be meaningful"
    );

    for workers in [2usize, 8] {
        let mut parallel = populated(config(workers), 10_000);
        let got = parallel.query(&user, &request).unwrap();
        assert_eq!(
            transcript(&reference),
            transcript(&got),
            "{workers}-worker run diverged from sequential"
        );
    }
}

#[test]
fn improvement_proposals_identical_across_thread_counts() {
    // A smaller instance where some results are withheld and the full
    // strategy-finding path (parallel greedy rescans included) runs.
    let sql = "SELECT DISTINCT r.sensor FROM readings r JOIN sensors s \
               ON r.sensor = s.id WHERE r.value < 500";
    let user = User::new("ana", "analyst");
    let request = QueryRequest::new(sql, "report");

    let mut sequential = populated(config(1), 600);
    let reference = sequential.query(&user, &request).unwrap();
    assert!(reference.withheld > 0, "some results must be withheld");

    for workers in [2usize, 8] {
        let mut parallel = populated(config(workers), 600);
        let got = parallel.query(&user, &request).unwrap();
        assert_eq!(
            transcript(&reference),
            transcript(&got),
            "{workers}-worker proposal diverged from sequential"
        );
        assert_eq!(reference.proposal.is_some(), got.proposal.is_some());
    }
}

#[test]
fn sequential_config_helper_pins_one_worker() {
    let c = EngineConfig::default().sequential();
    assert_eq!(c.worker_threads, Some(1));
}

/// Vectorized execution is a pure performance switch: the released set,
/// confidence bits, proposals and the rendered audit log are identical
/// with it on or off, at one worker and at eight.
#[test]
fn vectorized_execution_identical_to_tuple_at_a_time() {
    let sql = "SELECT DISTINCT r.sensor FROM readings r JOIN sensors s \
               ON r.sensor = s.id WHERE r.value < 500";
    let user = User::new("ana", "analyst");
    let request = QueryRequest::new(sql, "report");

    let run = |vectorized: bool, workers: usize| {
        let cfg = EngineConfig {
            vectorized_execution: vectorized,
            ..config(workers)
        };
        let mut db = populated(cfg, 600);
        let resp = db.query(&user, &request).unwrap();
        let audit: Vec<String> = db.audit_log().iter().map(|e| e.to_string()).collect();
        (transcript(&resp), audit)
    };

    let (ref_transcript, ref_audit) = run(false, 1);
    for workers in [1usize, 8] {
        let (t, audit) = run(true, workers);
        assert_eq!(
            ref_transcript, t,
            "vectorized run diverged from tuple-at-a-time at {workers} workers"
        );
        assert_eq!(
            ref_audit, audit,
            "audit log diverged with vectorized execution at {workers} workers"
        );
    }
}
